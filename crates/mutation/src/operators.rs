//! The interface mutation operators (paper Table 1).
//!
//! The paper evaluates its test selection strategy with a subset of the
//! *essential interface mutation operators* (Delamaro's interface mutation,
//! restricted by Vincenzi et al.): faults affecting the interaction between
//! methods through the points where non-interface variables — locals and
//! externally-unused globals — are *used*.

use concat_runtime::Value;
use std::fmt;

/// The five interface mutation operators applied in the paper's
/// experiments (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutationOperator {
    /// Inserts bitwise negation at a non-interface variable use.
    IndVarBitNeg,
    /// Replaces a non-interface variable by a member of `G(R2)` — the
    /// globals (class attributes) *used* in the method.
    IndVarRepGlob,
    /// Replaces a non-interface variable by a member of `L(R2)` — the
    /// locals defined in the method.
    IndVarRepLoc,
    /// Replaces a non-interface variable by a member of `E(R2)` — globals
    /// *not* used in the method.
    IndVarRepExt,
    /// Replaces a non-interface variable by a required constant from `RC`
    /// (`NULL`, `MAXINT`, `MININT`, …).
    IndVarRepReq,
}

impl MutationOperator {
    /// All operators, in the paper's Table 1 column order.
    pub const ALL: [MutationOperator; 5] = [
        MutationOperator::IndVarBitNeg,
        MutationOperator::IndVarRepGlob,
        MutationOperator::IndVarRepLoc,
        MutationOperator::IndVarRepExt,
        MutationOperator::IndVarRepReq,
    ];

    /// The operator's name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            MutationOperator::IndVarBitNeg => "IndVarBitNeg",
            MutationOperator::IndVarRepGlob => "IndVarRepGlob",
            MutationOperator::IndVarRepLoc => "IndVarRepLoc",
            MutationOperator::IndVarRepExt => "IndVarRepExt",
            MutationOperator::IndVarRepReq => "IndVarRepReq",
        }
    }

    /// The operator's description as printed in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            MutationOperator::IndVarBitNeg => {
                "Inserts bitwise negation at non-interface variable use"
            }
            MutationOperator::IndVarRepGlob => "Replaces non-interface variable by G(R2)",
            MutationOperator::IndVarRepLoc => "Replaces non-interface variable by L(R2)",
            MutationOperator::IndVarRepExt => "Replaces non-interface variable by E(R2)",
            MutationOperator::IndVarRepReq => "Replaces non-interface variable by RC",
        }
    }
}

impl fmt::Display for MutationOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The required constants `RC` of `IndVarRepReq` (Table 1): "some special
/// values such as NULL, MAXINT (greatest positive integer), MININT (least
/// negative integer), and so on".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReqConst {
    /// `NULL` — coerces to `0` in integer contexts.
    Null,
    /// The greatest positive integer.
    MaxInt,
    /// The least negative integer.
    MinInt,
    /// Zero.
    Zero,
    /// One.
    One,
    /// Minus one.
    MinusOne,
}

impl ReqConst {
    /// All required constants, in a stable order.
    pub const ALL: [ReqConst; 6] = [
        ReqConst::Null,
        ReqConst::MaxInt,
        ReqConst::MinInt,
        ReqConst::Zero,
        ReqConst::One,
        ReqConst::MinusOne,
    ];

    /// The constant as a dynamic [`Value`].
    pub fn as_value(self) -> Value {
        match self {
            ReqConst::Null => Value::Null,
            ReqConst::MaxInt => Value::Int(i64::MAX),
            ReqConst::MinInt => Value::Int(i64::MIN),
            ReqConst::Zero => Value::Int(0),
            ReqConst::One => Value::Int(1),
            ReqConst::MinusOne => Value::Int(-1),
        }
    }

    /// The constant coerced to an integer (the type of most instrumented
    /// use sites); `NULL` coerces to `0` as in C.
    pub fn as_int(self) -> i64 {
        match self {
            ReqConst::Null | ReqConst::Zero => 0,
            ReqConst::MaxInt => i64::MAX,
            ReqConst::MinInt => i64::MIN,
            ReqConst::One => 1,
            ReqConst::MinusOne => -1,
        }
    }

    /// The constant's conventional spelling.
    pub fn name(self) -> &'static str {
        match self {
            ReqConst::Null => "NULL",
            ReqConst::MaxInt => "MAXINT",
            ReqConst::MinInt => "MININT",
            ReqConst::Zero => "0",
            ReqConst::One => "1",
            ReqConst::MinusOne => "-1",
        }
    }
}

impl fmt::Display for ReqConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_operators_in_table_order() {
        let names: Vec<&str> = MutationOperator::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "IndVarBitNeg",
                "IndVarRepGlob",
                "IndVarRepLoc",
                "IndVarRepExt",
                "IndVarRepReq"
            ]
        );
    }

    #[test]
    fn descriptions_match_table1() {
        assert!(MutationOperator::IndVarBitNeg
            .description()
            .contains("bitwise negation"));
        assert!(MutationOperator::IndVarRepGlob
            .description()
            .contains("G(R2)"));
        assert!(MutationOperator::IndVarRepLoc
            .description()
            .contains("L(R2)"));
        assert!(MutationOperator::IndVarRepExt
            .description()
            .contains("E(R2)"));
        assert!(MutationOperator::IndVarRepReq.description().contains("RC"));
    }

    #[test]
    fn req_const_values() {
        assert_eq!(ReqConst::Null.as_value(), Value::Null);
        assert_eq!(ReqConst::MaxInt.as_int(), i64::MAX);
        assert_eq!(ReqConst::MinInt.as_int(), i64::MIN);
        assert_eq!(ReqConst::Zero.as_int(), 0);
        assert_eq!(ReqConst::Null.as_int(), 0);
        assert_eq!(ReqConst::MinusOne.as_int(), -1);
        assert_eq!(ReqConst::One.as_value(), Value::Int(1));
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(MutationOperator::IndVarRepReq.to_string(), "IndVarRepReq");
        assert_eq!(ReqConst::MaxInt.to_string(), "MAXINT");
    }

    #[test]
    fn operators_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = MutationOperator::ALL.into_iter().collect();
        assert_eq!(set.len(), 5);
        let consts: BTreeSet<_> = ReqConst::ALL.into_iter().collect();
        assert_eq!(consts.len(), 6);
    }
}
