//! Process-isolated mutant shards: the supervisor and the worker halves
//! of [`IsolationMode::Process`].
//!
//! Thread shards contain everything that *unwinds*; they cannot contain a
//! mutant that calls `std::process::abort()`, overflows the stack, or
//! spins in a loop with no cooperative checkpoint. Process shards put a
//! kernel-enforced boundary around each slice of the mutant queue:
//!
//! * The **supervisor** ([`run_process_shards`]) self-execs the current
//!   binary once per shard ([`ProcessIsolation::worker_args`] names the
//!   hidden entry point), hands each child a slice of the queue via
//!   `CONCAT_SHARD_*` environment variables, and reads verdicts off the
//!   child's stdout through the runtime's checksummed frame codec —
//!   a SIGKILL mid-frame tears at a frame boundary, detected and dropped
//!   exactly like a torn journal tail.
//! * The **worker** ([`run_shard_worker`]) rebuilds the identical
//!   campaign (the fingerprint is verified before any mutant runs),
//!   computes its own golden baseline, and classifies its assigned
//!   mutants with the same [`Engine`] the thread pool uses, framing each
//!   verdict with [`encode_verdict`].
//!
//! Liveness is heartbeat-based: every frame is proof of life, and a
//! `shard-begin` frame additionally names the in-flight mutant, so when a
//! shard dies — abort, signal, or a missed heartbeat deadline answered
//! with the SIGTERM→SIGKILL ladder — the supervisor knows exactly which
//! mutant to blame. Blame is charged on the *second* death (the mutant is
//! retried once first), so an innocent mutant whose shard was killed from
//! outside re-executes and the campaign stays byte-identical to an
//! uninterrupted one; a mutant that reproducibly kills its host is
//! quarantined with a process-level [`QuarantineReason`] and the campaign
//! completes without it.

use crate::analysis::{
    build_runner, campaign_heartbeat, collect_slots, finish_run, flag_restart_exhaustion,
    persist_coverage, record_status, replay_slots, DrainEnd, Engine, JournalState, MutantResult,
    MutantStatus, MutationConfig, MutationRun, PanicSilencer, ProcessIsolation, QuarantineReason,
    HEARTBEAT_INTERVAL, SUPERVISOR_POLL,
};
use crate::enumerate::Mutant;
use crate::fault::{ClonableFactory, MutationSwitch};
use crate::journal::{campaign_fingerprint, decode_verdict, encode_verdict};
use concat_driver::TestSuite;
use concat_obs::Telemetry;
use concat_runtime::{
    classify_exit, encode_frame, terminate_child, wait_with_deadline, ExitClass, FrameDecoder,
    Liveness, Rng,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Instant;

/// Environment variable carrying a shard's assigned mutant indices
/// (comma-separated enumeration indices).
pub const SHARD_INDICES_ENV: &str = "CONCAT_SHARD_INDICES";

/// Environment variable carrying the supervisor's campaign fingerprint
/// (8 hex digits); the worker recomputes and must match before running
/// anything.
pub const SHARD_FINGERPRINT_ENV: &str = "CONCAT_SHARD_FINGERPRINT";

/// Worker exit codes (all nonzero codes are supervision failures, not
/// mutant verdicts).
const EXIT_OK: i32 = 0;
const EXIT_BAD_ENV: i32 = 2;
const EXIT_FINGERPRINT_MISMATCH: i32 = 3;
const EXIT_PIPE_CLOSED: i32 = 4;

/// True when the current process was launched as a shard worker (the
/// protocol environment variables are present). Entry points call this
/// to decide between normal operation and [`run_shard_worker`].
pub fn shard_worker_requested() -> bool {
    std::env::var_os(SHARD_INDICES_ENV).is_some()
}

/// One frame from worker to supervisor, parsed.
pub(crate) enum ShardFrame {
    /// First frame: the worker's recomputed campaign fingerprint.
    Hello(u32),
    /// The worker is about to execute this mutant index (doubles as the
    /// heartbeat between mutants).
    Begin(usize),
    /// One classified mutant.
    Verdict(usize, MutantStatus),
    /// The worker finished its slice and is exiting cleanly.
    Done,
    /// A verified frame that is none of ours (ignored).
    Foreign,
}

pub(crate) fn parse_frame(payload: &str) -> ShardFrame {
    if let Some(rest) = payload.strip_prefix("shard-hello ") {
        if let Ok(fp) = u32::from_str_radix(rest, 16) {
            return ShardFrame::Hello(fp);
        }
    }
    if let Some(rest) = payload.strip_prefix("shard-begin ") {
        if let Ok(index) = rest.parse() {
            return ShardFrame::Begin(index);
        }
    }
    if let Some((index, status)) = decode_verdict(payload) {
        return ShardFrame::Verdict(index, status);
    }
    if payload == "shard-done" {
        return ShardFrame::Done;
    }
    ShardFrame::Foreign
}

/// Writes protocol frames straight to the process's stdout (bypassing
/// any capture the host harness installed) and flushes per frame, so a
/// kill between frames never tears one.
struct FrameWriter {
    out: std::io::Stdout,
}

impl FrameWriter {
    fn new() -> Self {
        FrameWriter {
            out: std::io::stdout(),
        }
    }

    /// Emits one frame; `false` when the pipe is gone (supervisor died —
    /// the worker should exit, there is nobody left to report to).
    fn emit(&mut self, payload: &str) -> bool {
        let Ok(frame) = encode_frame(payload) else {
            return false;
        };
        let mut lock = self.out.lock();
        lock.write_all(frame.as_bytes()).is_ok() && lock.flush().is_ok()
    }
}

/// The worker half: rebuilds the campaign, runs the assigned slice, and
/// streams frames to stdout. Returns the process exit code — callers
/// (hidden `shard-worker` entry points) pass it to [`std::process::exit`].
///
/// The caller must rebuild `suite`, `mutants` and `config` **exactly** as
/// the supervising campaign did (same seeds, budget, probes); the
/// fingerprint handshake aborts the shard before any mutant runs if they
/// diverge. Telemetry and the journal are supervisor concerns: the worker
/// runs with telemetry detached and never touches the journal file (two
/// writers would corrupt it) regardless of `config`.
pub fn run_shard_worker(
    shards: &dyn ClonableFactory,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> i32 {
    let _hook_guard = config.silence_panics.then(PanicSilencer::install);
    let Ok(indices_var) = std::env::var(SHARD_INDICES_ENV) else {
        return EXIT_BAD_ENV;
    };
    let Ok(expected_var) = std::env::var(SHARD_FINGERPRINT_ENV) else {
        return EXIT_BAD_ENV;
    };
    let Ok(expected) = u32::from_str_radix(&expected_var, 16) else {
        return EXIT_BAD_ENV;
    };
    let indices: Vec<usize> = indices_var
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();

    let mut out = FrameWriter::new();
    let fingerprint = campaign_fingerprint(shards.class_name(), suite, mutants, config);
    if !out.emit(&format!("shard-hello {fingerprint:08x}")) {
        return EXIT_PIPE_CLOSED;
    }
    if fingerprint != expected {
        return EXIT_FINGERPRINT_MISMATCH;
    }

    let telemetry = Telemetry::disabled();
    let switch = MutationSwitch::new();
    let factory = shards.build_factory(&switch);
    let runner = build_runner(config, &telemetry);
    switch.set_cancel_token(runner.cancel_token().clone());
    switch.disarm();
    let baseline = crate::analysis::run_golden(
        &runner,
        factory.as_ref(),
        suite,
        mutants,
        config,
        &telemetry,
    );
    let engine = Engine::new(
        suite,
        mutants,
        config,
        &baseline,
        vec![false; mutants.len()],
    );

    for index in indices {
        let Some(mutant) = mutants.get(index) else {
            continue;
        };
        if !out.emit(&format!("shard-begin {index}")) {
            return EXIT_PIPE_CLOSED;
        }
        // The same two containment layers as a thread worker: the runner
        // catches case panics, and this catch contains engine-adjacent
        // ones. What neither can catch — abort, stack overflow, a loop
        // with no checkpoint — is exactly what the process boundary and
        // the supervisor's heartbeat deadline exist for.
        let status = match catch_unwind(AssertUnwindSafe(|| {
            engine.classify(factory.as_ref(), &switch, &runner, &telemetry, mutant)
        })) {
            Ok(status) => status,
            Err(_panic) => MutantStatus::Quarantined {
                reason: QuarantineReason::WorkerCrash,
            },
        };
        if !out.emit(&encode_verdict(index, &status)) {
            return EXIT_PIPE_CLOSED;
        }
    }
    switch.disarm();
    switch.clear_cancel_token();
    if !out.emit("shard-done") {
        return EXIT_PIPE_CLOSED;
    }
    EXIT_OK
}

/// What a reader thread reports about its shard's stdout.
enum ShardEvent {
    /// One verified frame payload.
    Frame(String),
    /// The pipe closed: complete-but-invalid lines dropped by the
    /// decoder, plus whether a torn (unterminated) tail was left behind.
    Eof { dropped: u64, torn: bool },
}

/// One live shard from the supervisor's side.
struct LiveShard {
    /// Respawn generation; events tagged with an older generation belong
    /// to a corpse that has already been fully handled.
    generation: u64,
    child: Child,
    reader: Option<std::thread::JoinHandle<()>>,
    liveness: Liveness,
    /// The mutant named by the last `shard-begin` without a matching
    /// verdict — the one a death gets blamed on.
    in_flight: Option<usize>,
    /// Set when the supervisor killed this shard for a missed heartbeat;
    /// overrides exit classification (the corpse shows our SIGKILL, but
    /// the story is the unresponsive mutant).
    killed_unresponsive: bool,
    /// True once the hello fingerprint failed: the worker rebuilt a
    /// different campaign, so respawning it would fail forever.
    poisoned: bool,
}

/// Maps how a shard died to the quarantine reason its in-flight mutant
/// earns on repeated deaths.
pub(crate) fn death_reason(class: ExitClass, killed_unresponsive: bool) -> QuarantineReason {
    if killed_unresponsive {
        return QuarantineReason::ShardUnresponsive;
    }
    match class {
        ExitClass::Abort => QuarantineReason::ShardAbort,
        _ => QuarantineReason::ShardSignal,
    }
}

/// The supervisor half of [`IsolationMode::Process`]; reached through
/// [`crate::run_mutation_analysis_parallel`] when the config carries a
/// process isolation spec.
///
/// The golden baseline, journal, coverage artefact and all telemetry stay
/// in this process; shards compute their own baseline (they share nothing
/// but the deterministic campaign inputs) and stream verdicts back. The
/// merge is by enumeration index into the same slot vector the thread
/// pool uses, so verdicts, score and tables are byte-identical across
/// isolation modes and shard counts.
pub(crate) fn run_process_shards(
    shards: &dyn ClonableFactory,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
    spec: &ProcessIsolation,
) -> MutationRun {
    let _hook_guard = config.silence_panics.then(PanicSilencer::install);
    let run_span = config.telemetry.span("mutation", shards.class_name());
    let scoped = config.telemetry.at(run_span.id());
    let telemetry = &scoped;
    let (mut journal, replayed) =
        JournalState::open(shards.class_name(), suite, mutants, config, telemetry);

    // The supervisor runs its own golden baseline: the final
    // `MutationRun` carries it, degraded inline completion executes
    // against it, and it costs one suite pass — the price of sharing
    // nothing mutable with the children.
    let golden_switch = MutationSwitch::new();
    let golden_factory = shards.build_factory(&golden_switch);
    let runner = build_runner(config, telemetry);
    golden_switch.set_cancel_token(runner.cancel_token().clone());
    let baseline = crate::analysis::run_golden(
        &runner,
        golden_factory.as_ref(),
        suite,
        mutants,
        config,
        telemetry,
    );
    golden_switch.clear_cancel_token();
    persist_coverage(config, &baseline, journal.fingerprint(), telemetry);

    let (mut slots, _) = replay_slots(mutants, replayed, telemetry);
    let unfinished: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(index, _)| index)
        .collect();
    let shard_count = config.workers.clamp(1, unfinished.len().max(1));
    telemetry.gauge("mutation.workers", shard_count as i64);
    let fingerprint = campaign_fingerprint(shards.class_name(), suite, mutants, config);

    // Static round-robin assignment: shard k owns every k-th unfinished
    // index. Respawns re-receive their slot's remainder, so ownership
    // never migrates and blame stays unambiguous.
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (position, index) in unfinished.iter().enumerate() {
        assigned[position % shard_count].push(*index);
    }

    let mut live: Vec<Option<LiveShard>> = Vec::with_capacity(shard_count);
    let mut done_by_shard: Vec<u64> = vec![0; shard_count];
    // Deaths per mutant index, and the reason recorded at blame time —
    // a once-blamed mutant is never run in the supervisor process.
    let mut death_count: HashMap<usize, u32> = HashMap::new();
    let mut blamed_reason: HashMap<usize, QuarantineReason> = HashMap::new();
    let mut restarts_left = config.worker_restarts;
    let mut exhaustion_flagged = false;
    let mut respawns = 0u32;
    let mut backoff_rng = Rng::seed_from_u64(spec.backoff_seed);
    let (tx, rx) = mpsc::channel::<(usize, u64, ShardEvent)>();

    let remaining_of = |assigned: &[Vec<usize>], slots: &[Option<MutantResult>], slot: usize| {
        assigned[slot]
            .iter()
            .filter(|index| slots[**index].is_none())
            .copied()
            .collect::<Vec<usize>>()
    };

    let spawn_shard = |slot: usize,
                       generation: u64,
                       indices: &[usize],
                       tx: &mpsc::Sender<(usize, u64, ShardEvent)>|
     -> Option<LiveShard> {
        let exe = std::env::current_exe().ok()?;
        let csv = indices
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut command = Command::new(exe);
        command
            .args(&spec.worker_args)
            .env(SHARD_INDICES_ENV, csv)
            .env(SHARD_FINGERPRINT_ENV, format!("{fingerprint:08x}"))
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &spec.worker_env {
            command.env(key, value);
        }
        let mut child = command.spawn().ok()?;
        let stdout = child.stdout.take()?;
        let tx = tx.clone();
        let reader = std::thread::spawn(move || {
            let mut stdout = stdout;
            let mut decoder = FrameDecoder::new();
            let mut chunk = [0u8; 4096];
            loop {
                match stdout.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        for payload in decoder.push(&chunk[..n]) {
                            if tx
                                .send((slot, generation, ShardEvent::Frame(payload)))
                                .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
            }
            let _ = tx.send((
                slot,
                generation,
                ShardEvent::Eof {
                    dropped: decoder.dropped(),
                    torn: decoder.pending_bytes() > 0,
                },
            ));
        });
        Some(LiveShard {
            generation,
            child,
            reader: Some(reader),
            liveness: Liveness::new(spec.startup_grace, spec.heartbeat_timeout),
            in_flight: None,
            killed_unresponsive: false,
            poisoned: false,
        })
    };

    let mut active = 0usize;
    for (slot, indices) in assigned.iter().enumerate() {
        if indices.is_empty() {
            live.push(None);
            continue;
        }
        match spawn_shard(slot, 0, indices, &tx) {
            Some(shard) => {
                live.push(Some(shard));
                active += 1;
            }
            None => {
                // Spawn failed outright (exe unavailable?): the slot's
                // work falls through to inline completion.
                telemetry.incr("harden.degraded");
                live.push(None);
            }
        }
    }

    let mut last_beat = Instant::now();
    while active > 0 {
        match rx.recv_timeout(SUPERVISOR_POLL) {
            Ok((slot, generation, event)) => {
                let stale = live[slot]
                    .as_ref()
                    .is_none_or(|shard| shard.generation != generation);
                if stale {
                    // A corpse's queued frames: its death was already
                    // handled (verdicts merged before the respawn), so
                    // anything left is noise.
                    continue;
                }
                match event {
                    ShardEvent::Frame(payload) => {
                        let Some(shard) = live[slot].as_mut() else {
                            continue;
                        };
                        shard.liveness.beat();
                        match parse_frame(&payload) {
                            ShardFrame::Hello(fp) if fp == fingerprint => {}
                            ShardFrame::Hello(_) => {
                                // The worker rebuilt a different campaign:
                                // a config bug, deterministic on respawn.
                                // Kill the shard and leave its slice to
                                // inline completion.
                                shard.poisoned = true;
                                telemetry.incr("harden.degraded");
                                let _ = terminate_child(&mut shard.child, spec.term_grace);
                            }
                            ShardFrame::Begin(index) => {
                                shard.in_flight = Some(index);
                            }
                            ShardFrame::Verdict(index, status) => {
                                if index < slots.len() && slots[index].is_none() {
                                    journal.record(index, &status);
                                    record_status(telemetry, &status);
                                    slots[index] = Some(MutantResult {
                                        mutant: mutants[index].clone(),
                                        status,
                                    });
                                    done_by_shard[slot] += 1;
                                }
                                if shard.in_flight == Some(index) {
                                    shard.in_flight = None;
                                }
                            }
                            ShardFrame::Done | ShardFrame::Foreign => {}
                        }
                    }
                    ShardEvent::Eof { dropped, torn } => {
                        let Some(mut shard) = live[slot].take() else {
                            continue;
                        };
                        active -= 1;
                        let torn_frames = dropped + u64::from(torn);
                        if torn_frames > 0 {
                            telemetry.incr_by("mutation.frames_dropped", torn_frames);
                        }
                        if let Some(reader) = shard.reader.take() {
                            let _ = reader.join();
                        }
                        let class = match wait_with_deadline(&mut shard.child, spec.term_grace) {
                            Ok(status) => classify_exit(status),
                            Err(_) => ExitClass::Signal(-1),
                        };
                        let remaining = remaining_of(&assigned, &slots, slot);
                        if remaining.is_empty() || shard.poisoned {
                            // Retired: slice complete (or unfixable).
                            continue;
                        }
                        // Death with work left. Blame the in-flight
                        // mutant: first death returns it to the slice
                        // (an innocent mutant killed from outside must
                        // re-execute for byte-identical reports); the
                        // second death quarantines it with the reason
                        // derived from how the shard died.
                        if let Some(index) = shard.in_flight {
                            let deaths = death_count.entry(index).or_insert(0);
                            *deaths += 1;
                            let reason = death_reason(class, shard.killed_unresponsive);
                            blamed_reason.insert(index, reason);
                            if *deaths >= 2 && slots[index].is_none() {
                                let status = MutantStatus::Quarantined { reason };
                                journal.record(index, &status);
                                record_status(telemetry, &status);
                                slots[index] = Some(MutantResult {
                                    mutant: mutants[index].clone(),
                                    status,
                                });
                                done_by_shard[slot] += 1;
                            }
                        }
                        let remaining = remaining_of(&assigned, &slots, slot);
                        if remaining.is_empty() {
                            continue;
                        }
                        if restarts_left == 0 {
                            if !exhaustion_flagged {
                                exhaustion_flagged = true;
                                flag_restart_exhaustion(
                                    telemetry,
                                    config.worker_restarts,
                                    slots.iter().filter(|s| s.is_none()).count(),
                                );
                            }
                            continue;
                        }
                        restarts_left -= 1;
                        respawns += 1;
                        telemetry.incr("mutation.shard_respawn");
                        std::thread::sleep(
                            spec.respawn_backoff
                                .jittered_delay(respawns, &mut backoff_rng),
                        );
                        let generation = shard.generation + 1;
                        if let Some(replacement) = spawn_shard(slot, generation, &remaining, &tx) {
                            live[slot] = Some(replacement);
                            active += 1;
                        } else {
                            telemetry.incr("harden.degraded");
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        // Heartbeat sweep: any live shard past its deadline gets the
        // escalation ladder. Death bookkeeping then arrives through the
        // shard's Eof event (its pipe closes when it dies), keeping one
        // death path for kills and crashes alike.
        for shard in live.iter_mut().flatten() {
            if !shard.killed_unresponsive && shard.liveness.expired() {
                shard.killed_unresponsive = true;
                telemetry.incr("mutation.shard_kill");
                let _ = terminate_child(&mut shard.child, spec.term_grace);
            }
        }
        if telemetry.is_enabled() && last_beat.elapsed() >= HEARTBEAT_INTERVAL {
            last_beat = Instant::now();
            campaign_heartbeat(telemetry, &slots, &done_by_shard);
        }
    }

    // Leftovers (spawn failures, fingerprint poisoning, restart
    // exhaustion). A mutant ever blamed for a shard death is quarantined
    // with its recorded reason — known process-killers must never run in
    // the supervisor. The rest complete inline, exactly like the thread
    // pool's degraded path.
    for index in 0..slots.len() {
        if slots[index].is_some() {
            continue;
        }
        if let Some(reason) = blamed_reason.get(&index).copied() {
            let status = MutantStatus::Quarantined { reason };
            journal.record(index, &status);
            record_status(telemetry, &status);
            slots[index] = Some(MutantResult {
                mutant: mutants[index].clone(),
                status,
            });
        }
    }
    if slots.iter().any(|slot| slot.is_none()) {
        let done: Vec<bool> = slots.iter().map(|slot| slot.is_some()).collect();
        let engine = Engine::new(suite, mutants, config, &baseline, done);
        while engine.has_unclaimed_work() {
            let switch = MutationSwitch::new();
            let factory = shards.build_factory(&switch);
            let inline_runner = build_runner(config, telemetry);
            switch.set_cancel_token(inline_runner.cancel_token().clone());
            let mut emit = |index: usize, result: MutantResult| {
                journal.record(index, &result.status);
                slots[index] = Some(result);
            };
            let end = engine.drain(
                factory.as_ref(),
                &switch,
                &inline_runner,
                telemetry,
                &mut emit,
            );
            switch.disarm();
            switch.clear_cancel_token();
            if let DrainEnd::Drained = end {
                break;
            }
        }
    }
    campaign_heartbeat(telemetry, &slots, &done_by_shard);
    let results = collect_slots(mutants, slots);
    finish_run(telemetry, results, baseline.golden)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_parse_and_reject() {
        assert!(matches!(
            parse_frame("shard-hello 00ffaa12"),
            ShardFrame::Hello(0x00FF_AA12)
        ));
        assert!(matches!(parse_frame("shard-begin 7"), ShardFrame::Begin(7)));
        assert!(matches!(parse_frame("shard-done"), ShardFrame::Done));
        assert!(matches!(
            parse_frame("verdict 3 survived"),
            ShardFrame::Verdict(3, MutantStatus::Survived)
        ));
        assert!(matches!(
            parse_frame("verdict 9 quarantined shard-abort"),
            ShardFrame::Verdict(
                9,
                MutantStatus::Quarantined {
                    reason: QuarantineReason::ShardAbort
                }
            )
        ));
        for foreign in [
            "",
            "shard-hello xx",
            "shard-begin -1",
            "running 2 tests",
            "verdict nine survived",
        ] {
            assert!(
                matches!(parse_frame(foreign), ShardFrame::Foreign),
                "{foreign:?}"
            );
        }
    }

    #[test]
    fn death_reasons_map_exit_classes() {
        assert_eq!(
            death_reason(ExitClass::Abort, false),
            QuarantineReason::ShardAbort
        );
        assert_eq!(
            death_reason(ExitClass::Signal(9), false),
            QuarantineReason::ShardSignal
        );
        assert_eq!(
            death_reason(ExitClass::Exit(1), false),
            QuarantineReason::ShardSignal
        );
        // A supervisor kill for a missed heartbeat outranks the corpse's
        // signal (which would just be our own SIGTERM/SIGKILL).
        assert_eq!(
            death_reason(ExitClass::Signal(9), true),
            QuarantineReason::ShardUnresponsive
        );
        assert_eq!(
            death_reason(ExitClass::Abort, true),
            QuarantineReason::ShardUnresponsive
        );
    }
}
