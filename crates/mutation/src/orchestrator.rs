//! Fault-tolerant campaign orchestration: many campaigns, one supervised
//! scheduler.
//!
//! [`run_mutation_analysis_parallel`](crate::run_mutation_analysis_parallel)
//! runs *one* campaign to completion and returns. A component vendor
//! qualifying a family of self-testable components runs many campaigns at
//! once, and must not let one pathological subject starve, corrupt, or
//! take down the rest. The [`Orchestrator`] is the layer above the
//! per-campaign machinery: a long-running service owning a global fleet
//! of slot workers that multiplexes mutants from every active campaign.
//!
//! * **Queue** — [`Orchestrator::submit`] / [`Orchestrator::status`] /
//!   [`Orchestrator::cancel`] / [`Orchestrator::list`]. Each submitted
//!   [`CampaignRequest`] carries its own [`MutationConfig`] (budget,
//!   journal path, isolation), a priority, and an optional campaign-level
//!   mutant budget. Admission is bounded: a full queue rejects with
//!   [`SubmitError::QueueFull`] instead of growing without limit.
//! * **Scheduler** — work-stealing over fleet slots: any free slot takes
//!   a lease of mutants from any runnable campaign. Fairness is
//!   starvation-free by aging (a campaign passed over gains effective
//!   priority each round), so a low-priority campaign always progresses.
//! * **Isolation of failure** — a crashed or hung lease costs its owning
//!   campaign exactly the in-flight mutant (the retry-once-then-quarantine
//!   ladder of the process shards), a cancelled campaign tears down
//!   cleanly with its journal flushed (resumable via the incremental
//!   path), budget exhaustion degrades only its own campaign to
//!   [`DegradeReason::BudgetExhausted`], and cancelling the service-level
//!   [`CancelToken`] (see [`Orchestrator::service_token`]) checkpoints
//!   every campaign's journal — every verdict is write-ahead fsynced, so
//!   resubmitting after a crash replays finished verdicts and re-executes
//!   only unfinished mutants.
//!
//! The non-negotiable invariant: every campaign's verdicts, score, and
//! report are **byte-identical** to running that campaign alone, for any
//! interleaving, fleet size, and cancel/crash schedule of its neighbors.
//! The mechanism is the same as the worker pool's: verdicts are
//! deterministic per mutant, merged by enumeration index, and a verdict
//! is only merged while its campaign is healthy — a draining campaign
//! discards late verdicts so its journal holds exactly the verified
//! prefix a resume replays.

use crate::analysis::{
    build_runner, campaign_heartbeat, collect_slots, finish_run, flag_restart_exhaustion,
    persist_coverage, record_status, replay_slots, Engine, GoldenBaseline, JournalState,
    MutantResult, MutantStatus, MutationConfig, MutationRun, PanicSilencer, ProcessIsolation,
    QuarantineReason, HEARTBEAT_INTERVAL, SUPERVISOR_POLL,
};
use crate::enumerate::Mutant;
use crate::fault::{ClonableFactory, MutationSwitch};
use crate::journal::campaign_fingerprint;
use crate::shard::{
    death_reason, parse_frame, ShardFrame, SHARD_FINGERPRINT_ENV, SHARD_INDICES_ENV,
};
use concat_driver::{SuiteResult, TestSuite};
use concat_obs::{Event, MemorySink, Span, Telemetry};
use concat_runtime::{
    classify_exit, terminate_child, wait_with_deadline, CancelToken, ExitClass, FrameDecoder,
    Liveness, Rng,
};
use std::collections::HashMap;
use std::fmt;
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Stdio;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-slot supervision deadlines, configurable per campaign so one
/// slow-starting subject is not falsely convicted `ShardUnresponsive` by
/// deadlines tuned for its faster neighbors. Defaults mirror
/// [`ProcessIsolation::new`]; a campaign whose config carries a process
/// isolation spec inherits that spec's deadlines unless
/// [`CampaignRequest::slot`] overrides them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotConfig {
    /// First-frame deadline for a process lease: spawn plus the shard's
    /// own golden run.
    pub startup_grace: Duration,
    /// Steady-state heartbeat deadline: a shard silent for this long gets
    /// the SIGTERM→SIGKILL ladder.
    pub heartbeat_timeout: Duration,
    /// How long the SIGTERM rung waits before SIGKILL.
    pub term_grace: Duration,
}

impl Default for SlotConfig {
    fn default() -> Self {
        SlotConfig {
            startup_grace: Duration::from_secs(30),
            heartbeat_timeout: Duration::from_secs(10),
            term_grace: Duration::from_millis(500),
        }
    }
}

impl SlotConfig {
    /// The effective per-campaign deadlines: an explicit override wins,
    /// else a process-isolated campaign inherits its spec's deadlines,
    /// else the defaults.
    fn effective(explicit: Option<SlotConfig>, config: &MutationConfig) -> SlotConfig {
        if let Some(cfg) = explicit {
            return cfg;
        }
        match &config.isolation {
            crate::analysis::IsolationMode::Process(spec) => SlotConfig {
                startup_grace: spec.startup_grace,
                heartbeat_timeout: spec.heartbeat_timeout,
                term_grace: spec.term_grace,
            },
            crate::analysis::IsolationMode::InThread => SlotConfig::default(),
        }
    }
}

/// Configuration of the orchestration service.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Fleet size: how many slot workers lease mutants concurrently.
    pub slots: usize,
    /// Admission bound: the maximum number of non-terminal campaigns;
    /// submits past it are rejected with [`SubmitError::QueueFull`].
    pub capacity: usize,
    /// Mutants handed out per lease. Small leases interleave campaigns
    /// finely (better fairness); large leases amortize per-lease setup —
    /// in particular a process lease pays one shard golden run.
    pub lease_size: usize,
    /// Fleet-level telemetry: `orchestrator.*` counters and the
    /// `orchestrator.progress` snapshot. Per-campaign telemetry lives on
    /// each request's [`MutationConfig::telemetry`]. Disabled by default.
    pub telemetry: Telemetry,
    /// Install a process-global silent panic hook for the service's
    /// lifetime (mutant panics are expected kill signals, not noise).
    pub silence_panics: bool,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            slots: 2,
            capacity: 16,
            lease_size: 8,
            telemetry: Telemetry::disabled(),
            silence_panics: true,
        }
    }
}

/// Opaque campaign handle returned by [`Orchestrator::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(u64);

impl CampaignId {
    /// The numeric id (stable within one service instance, in submit
    /// order).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One campaign submitted to the service: the same inputs
/// [`run_mutation_analysis_parallel`](crate::run_mutation_analysis_parallel)
/// takes, plus scheduling metadata.
pub struct CampaignRequest {
    /// Human-readable campaign name (status listings, the demo server's
    /// manifest). Not required to be unique — [`CampaignId`] is.
    pub name: String,
    /// The factory seam the per-lease workers build their components
    /// through.
    pub shards: Arc<dyn ClonableFactory>,
    /// The generated test suite under measurement.
    pub suite: TestSuite,
    /// The enumerated mutants.
    pub mutants: Vec<Mutant>,
    /// Per-campaign configuration: budget, journal path, probe suites,
    /// isolation mode (thread or process leases), incremental resume.
    /// `config.workers` is ignored — the fleet owns parallelism.
    pub config: MutationConfig,
    /// Scheduling priority (higher runs first); aging guarantees lower
    /// priorities still progress.
    pub priority: u8,
    /// Campaign-level execution budget: at most this many mutants are
    /// *executed* (journal-replayed verdicts are free). Exhaustion
    /// degrades this campaign — and only this campaign — to
    /// [`DegradeReason::BudgetExhausted`]; unfinished mutants stay
    /// unfinished in the journal, so a resubmit with a bigger budget
    /// resumes where it stopped.
    pub mutant_budget: Option<u64>,
    /// Per-campaign slot deadlines; `None` derives them from the config
    /// (see [`SlotConfig::effective`]).
    pub slot: Option<SlotConfig>,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded campaign queue is full; retry after a campaign
    /// finishes.
    QueueFull {
        /// The configured admission bound.
        capacity: usize,
    },
    /// The service has shut down (or its supervisor died).
    ServiceStopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "campaign queue full (capacity {capacity})")
            }
            SubmitError::ServiceStopped => write!(f, "orchestrator stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a campaign degraded instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The campaign's own [`CampaignRequest::mutant_budget`] ran out with
    /// unfinished mutants left.
    BudgetExhausted,
    /// The campaign's harness is unusable: its golden baseline panicked,
    /// its shard workers rebuild a different campaign (fingerprint
    /// mismatch), or its leases die repeatedly without any progress.
    HarnessFailure,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::BudgetExhausted => write!(f, "budget-exhausted"),
            DegradeReason::HarnessFailure => write!(f, "harness-failure"),
        }
    }
}

/// Lifecycle of a campaign inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Admitted, waiting for a slot to run its golden baseline.
    Queued,
    /// A slot is computing the golden baseline.
    Preparing,
    /// Leases are being scheduled.
    Running,
    /// A terminal decision was made (cancel, budget, degrade); waiting
    /// for in-flight leases to stand down. Verdicts arriving now are
    /// discarded — the journal keeps exactly the verified prefix.
    Draining,
    /// All mutants have verdicts; the final [`MutationRun`] is available
    /// through [`Orchestrator::wait`].
    Completed,
    /// Cancelled (explicitly or by service shutdown). The journal is
    /// flushed; resubmitting the same campaign resumes it.
    Cancelled,
    /// Degraded: see [`DegradeReason`].
    Degraded(DegradeReason),
}

impl CampaignPhase {
    /// True once the campaign reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignPhase::Completed | CampaignPhase::Cancelled | CampaignPhase::Degraded(_)
        )
    }
}

impl fmt::Display for CampaignPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignPhase::Queued => write!(f, "queued"),
            CampaignPhase::Preparing => write!(f, "preparing"),
            CampaignPhase::Running => write!(f, "running"),
            CampaignPhase::Draining => write!(f, "draining"),
            CampaignPhase::Completed => write!(f, "completed"),
            CampaignPhase::Cancelled => write!(f, "cancelled"),
            CampaignPhase::Degraded(reason) => write!(f, "degraded({reason})"),
        }
    }
}

/// A point-in-time view of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The campaign's id.
    pub id: CampaignId,
    /// The submitted name.
    pub name: String,
    /// Current lifecycle phase.
    pub phase: CampaignPhase,
    /// Mutants with a merged verdict (executed, replayed, or convicted).
    pub done: usize,
    /// Total mutants in the campaign.
    pub total: usize,
    /// Verdicts obtained by execution in this service instance.
    pub executed: u64,
    /// Verdicts replayed from the journal at admission.
    pub replayed: u64,
    /// The submitted priority.
    pub priority: u8,
    /// The effective per-slot deadlines this campaign's leases run under
    /// (surfaced in the fleet harness-health table).
    pub slot: SlotConfig,
}

/// How a campaign ended.
#[derive(Debug, Clone)]
pub enum CampaignEnd {
    /// Every mutant has a verdict; the run is byte-identical to a solo
    /// run of the same campaign.
    Completed(Box<MutationRun>),
    /// Cancelled; the journal holds the verified prefix for a resume.
    Cancelled,
    /// Degraded; `partial` holds the verdicts obtained so far (unfinished
    /// mutants appear as `WorkerCrash` quarantines, the fail-safe the
    /// slot merge uses).
    Degraded {
        /// Why the campaign degraded.
        reason: DegradeReason,
        /// Verdicts merged before the degrade decision.
        partial: Box<MutationRun>,
    },
}

/// Terminal report for one campaign, returned by [`Orchestrator::wait`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign's id.
    pub id: CampaignId,
    /// The submitted name.
    pub name: String,
    /// How it ended.
    pub end: CampaignEnd,
}

// ---------------------------------------------------------------------
// Internal wiring
// ---------------------------------------------------------------------

/// Immutable campaign inputs shared with lease threads.
struct CampaignData {
    id: CampaignId,
    shards: Arc<dyn ClonableFactory>,
    suite: TestSuite,
    mutants: Vec<Mutant>,
    config: MutationConfig,
    /// Child of the service token: cancelling the service cancels every
    /// campaign; cancelling this campaign never touches the fleet.
    token: CancelToken,
}

/// Campaign inputs plus the prepared golden baseline, shared read-only
/// with every subsequent lease.
struct CampaignRuntime {
    data: Arc<CampaignData>,
    baseline: GoldenBaseline,
    fingerprint: u32,
}

/// Client → supervisor commands.
enum Command {
    Submit(
        Box<CampaignRequest>,
        mpsc::Sender<Result<CampaignId, SubmitError>>,
    ),
    Cancel(CampaignId, mpsc::Sender<bool>),
    Status(CampaignId, mpsc::Sender<Option<CampaignStatus>>),
    List(mpsc::Sender<Vec<CampaignStatus>>),
    Wait(CampaignId, mpsc::Sender<Option<CampaignOutcome>>),
    Shutdown(mpsc::Sender<Vec<CampaignStatus>>),
}

/// How one lease ended, from the slot's point of view.
enum LeaseOutcome {
    /// Every leased mutant got a verdict.
    Drained,
    /// The campaign (or service) token cancelled the lease; unemitted
    /// verdicts were discarded.
    Aborted,
    /// The lease died: a thread lease's harness panicked, or a process
    /// lease's shard exited with work left.
    Crashed {
        /// The mutant named by the last `shard-begin` without a verdict —
        /// the one the death is blamed on (process leases only; thread
        /// leases emit the quarantine verdict themselves).
        in_flight: Option<usize>,
        /// The quarantine reason a repeated death convicts with.
        reason: QuarantineReason,
        /// The shard rebuilt a different campaign (hello fingerprint
        /// mismatch) — deterministic on retry, so the campaign degrades.
        poisoned: bool,
        /// Verdicts emitted before the death (progress signal for the
        /// futility guard).
        emitted: u64,
    },
}

/// Everything the supervisor receives: commands and slot events, one
/// channel so per-slot FIFO ordering (verdicts before lease end) holds.
enum Msg {
    Cmd(Command),
    Prepared {
        slot: usize,
        id: CampaignId,
        baseline: Option<Box<GoldenBaseline>>,
        events: Vec<Event>,
    },
    Verdict {
        slot: usize,
        id: CampaignId,
        index: usize,
        status: MutantStatus,
    },
    LeaseEnded {
        slot: usize,
        id: CampaignId,
        outcome: LeaseOutcome,
        events: Vec<Event>,
    },
}

/// Supervisor → slot worker commands.
enum SlotCmd {
    Prepare {
        data: Arc<CampaignData>,
    },
    ThreadLease {
        rt: Arc<CampaignRuntime>,
        indices: Vec<usize>,
    },
    ProcessLease {
        rt: Arc<CampaignRuntime>,
        indices: Vec<usize>,
        spec: ProcessIsolation,
        slot_cfg: SlotConfig,
    },
    Shutdown,
}

/// Supervisor-side state of one campaign.
struct Campaign {
    data: Arc<CampaignData>,
    name: String,
    priority: u8,
    mutant_budget: Option<u64>,
    slot_cfg: SlotConfig,
    spec: Option<ProcessIsolation>,
    phase: CampaignPhase,
    rt: Option<Arc<CampaignRuntime>>,
    journal: Option<JournalState>,
    slots: Vec<Option<MutantResult>>,
    leased: Vec<bool>,
    deaths: HashMap<usize, u32>,
    executed: u64,
    replayed: u64,
    crashes: u64,
    /// Consecutive leases that died without emitting a verdict or
    /// charging an in-flight mutant — the signature of a harness that
    /// will never progress.
    futile: u32,
    exhaustion_flagged: bool,
    active_leases: usize,
    /// Crash backoff: no new lease for this campaign before this instant.
    next_lease_at: Instant,
    backoff_rng: Rng,
    respawns: u32,
    /// Scheduling rounds this campaign was runnable but passed over;
    /// added to priority so nobody starves.
    starved: u32,
    /// The terminal phase to enter once in-flight leases stand down.
    pending_end: Option<CampaignPhase>,
    outcome: Option<CampaignOutcome>,
    waiters: Vec<mpsc::Sender<Option<CampaignOutcome>>>,
    /// Campaign root span on the campaign's own telemetry; lease event
    /// streams are grafted under it.
    root: Option<Span>,
    /// Campaign telemetry scoped at the root span.
    telemetry: Telemetry,
    done_by_slot: Vec<u64>,
    last_beat: Instant,
}

impl Campaign {
    fn done(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn unfinished(&self) -> usize {
        self.slots.len() - self.done()
    }

    fn status(&self) -> CampaignStatus {
        CampaignStatus {
            id: self.data.id,
            name: self.name.clone(),
            phase: self.phase,
            done: self.done(),
            total: self.slots.len(),
            executed: self.executed,
            replayed: self.replayed,
            priority: self.priority,
            slot: self.slot_cfg,
        }
    }

    /// True when the scheduler may hand this campaign a lease now.
    fn runnable(&self, now: Instant) -> bool {
        self.phase == CampaignPhase::Running
            && !self.data.token.is_cancelled()
            && now >= self.next_lease_at
            && self
                .slots
                .iter()
                .zip(self.leased.iter())
                .any(|(slot, leased)| slot.is_none() && !leased)
    }

    /// The next `lease_size` unfinished, unleased mutant indices.
    fn take_lease(&mut self, lease_size: usize) -> Vec<usize> {
        let mut indices = Vec::with_capacity(lease_size);
        for index in 0..self.slots.len() {
            if self.slots[index].is_none() && !self.leased[index] {
                self.leased[index] = true;
                indices.push(index);
                if indices.len() == lease_size {
                    break;
                }
            }
        }
        indices
    }
}

// ---------------------------------------------------------------------
// Slot workers
// ---------------------------------------------------------------------

/// A slot worker's main loop: block for a command, run it, report back.
/// The worker thread is persistent — lease bodies run under
/// `catch_unwind`, so no campaign can cost the fleet a slot.
fn slot_main(slot: usize, rx: mpsc::Receiver<SlotCmd>, tx: mpsc::Sender<Msg>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            SlotCmd::Prepare { data } => {
                let (sink, telemetry) = lease_telemetry(&data.config.telemetry);
                let id = data.id;
                let baseline = catch_unwind(AssertUnwindSafe(|| {
                    let switch = MutationSwitch::new();
                    let factory = data.shards.build_factory(&switch);
                    let runner = build_runner(&data.config, &telemetry)
                        .with_cancel_token(data.token.child());
                    switch.set_cancel_token(runner.cancel_token().clone());
                    let baseline = crate::analysis::run_golden(
                        &runner,
                        factory.as_ref(),
                        &data.suite,
                        &data.mutants,
                        &data.config,
                        &telemetry,
                    );
                    switch.clear_cancel_token();
                    baseline
                }))
                .ok()
                .map(Box::new);
                let events = sink.map(|s| s.events()).unwrap_or_default();
                if tx
                    .send(Msg::Prepared {
                        slot,
                        id,
                        baseline,
                        events,
                    })
                    .is_err()
                {
                    return;
                }
            }
            SlotCmd::ThreadLease { rt, indices } => {
                let (sink, telemetry) = lease_telemetry(&rt.data.config.telemetry);
                let id = rt.data.id;
                let outcome = thread_lease(slot, &rt, &indices, &telemetry, &tx);
                let events = sink.map(|s| s.events()).unwrap_or_default();
                if tx
                    .send(Msg::LeaseEnded {
                        slot,
                        id,
                        outcome,
                        events,
                    })
                    .is_err()
                {
                    return;
                }
            }
            SlotCmd::ProcessLease {
                rt,
                indices,
                spec,
                slot_cfg,
            } => {
                let (sink, telemetry) = lease_telemetry(&rt.data.config.telemetry);
                let id = rt.data.id;
                let outcome = process_lease(slot, &rt, &indices, &spec, slot_cfg, &telemetry, &tx);
                let events = sink.map(|s| s.events()).unwrap_or_default();
                if tx
                    .send(Msg::LeaseEnded {
                        slot,
                        id,
                        outcome,
                        events,
                    })
                    .is_err()
                {
                    return;
                }
            }
            SlotCmd::Shutdown => return,
        }
    }
}

/// A private event buffer for one lease, absorbed under the campaign
/// root after the lease ends — disabled campaigns pay nothing.
fn lease_telemetry(campaign: &Telemetry) -> (Option<Arc<MemorySink>>, Telemetry) {
    if campaign.is_enabled() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        (Some(sink), telemetry)
    } else {
        (None, Telemetry::disabled())
    }
}

/// One in-thread lease: build a private factory/switch/runner (the same
/// trio a pool worker owns), classify each leased mutant, stream verdicts
/// to the supervisor. The runner's token is a child of the campaign
/// token, so campaign or service cancellation interrupts the in-flight
/// case like a watchdog deadline — and a verdict finished *after* the
/// cancellation is discarded, never merged, because a case interrupted
/// mid-flight classifies differently than a solo run would.
fn thread_lease(
    slot: usize,
    rt: &Arc<CampaignRuntime>,
    indices: &[usize],
    telemetry: &Telemetry,
    tx: &mpsc::Sender<Msg>,
) -> LeaseOutcome {
    let data = &rt.data;
    let token = &data.token;
    let lease_span = telemetry.span_with("lease", || format!("{} thread", data.id));
    let scoped = telemetry.at(lease_span.id());
    let setup = catch_unwind(AssertUnwindSafe(|| {
        let switch = MutationSwitch::new();
        let factory = data.shards.build_factory(&switch);
        let runner = build_runner(&data.config, &scoped).with_cancel_token(token.child());
        switch.set_cancel_token(runner.cancel_token().clone());
        (switch, factory, runner)
    }));
    let Ok((switch, factory, runner)) = setup else {
        scoped.incr("mutation.worker_crash");
        return LeaseOutcome::Crashed {
            in_flight: None,
            reason: QuarantineReason::WorkerCrash,
            poisoned: false,
            emitted: 0,
        };
    };
    let engine = Engine::new(
        &data.suite,
        &data.mutants,
        &data.config,
        &rt.baseline,
        vec![false; data.mutants.len()],
    );
    let mut emitted = 0u64;
    for &index in indices {
        if token.is_cancelled() {
            return LeaseOutcome::Aborted;
        }
        let Some(mutant) = data.mutants.get(index) else {
            continue;
        };
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            engine.classify(factory.as_ref(), &switch, &runner, &scoped, mutant)
        }));
        match verdict {
            Ok(status) => {
                if token.is_cancelled() {
                    // The cancellation raced the classification: the
                    // verdict may reflect an interrupted case. Discard it
                    // — the mutant stays unfinished and re-executes on
                    // resume, keeping the journal byte-identical to a
                    // solo run's prefix.
                    return LeaseOutcome::Aborted;
                }
                let _ = tx.send(Msg::Verdict {
                    slot,
                    id: data.id,
                    index,
                    status,
                });
                emitted += 1;
            }
            Err(_panic) => {
                // Same contract as the pool worker's drain: the panicking
                // mutant is quarantined as WorkerCrash (its verdict in a
                // solo run too), and the lease retires so the supervisor
                // can decide what the crash cost.
                scoped.incr("mutation.worker_crash");
                let _ = tx.send(Msg::Verdict {
                    slot,
                    id: data.id,
                    index,
                    status: MutantStatus::Quarantined {
                        reason: QuarantineReason::WorkerCrash,
                    },
                });
                return LeaseOutcome::Crashed {
                    in_flight: None,
                    reason: QuarantineReason::WorkerCrash,
                    poisoned: false,
                    emitted: emitted + 1,
                };
            }
        }
    }
    switch.disarm();
    switch.clear_cancel_token();
    LeaseOutcome::Drained
}

/// What a process lease's reader thread reports.
enum PipeEvent {
    Frame(String),
    Eof { dropped: u64, torn: bool },
}

/// One process-isolated lease: spawn a shard worker (a self-exec of the
/// current binary, exactly like [`crate::run_shard_worker`]'s supervisor
/// half), hand it the leased indices, and relay its verdict frames.
/// Liveness runs under the *campaign's* [`SlotConfig`] deadlines, so a
/// slow-starting subject is judged by its own grace, not its neighbors'.
fn process_lease(
    slot: usize,
    rt: &Arc<CampaignRuntime>,
    indices: &[usize],
    spec: &ProcessIsolation,
    slot_cfg: SlotConfig,
    telemetry: &Telemetry,
    tx: &mpsc::Sender<Msg>,
) -> LeaseOutcome {
    let data = &rt.data;
    let token = &data.token;
    let lease_span = telemetry.span_with("lease", || format!("{} process", data.id));
    let scoped = telemetry.at(lease_span.id());
    let crash = |reason| LeaseOutcome::Crashed {
        in_flight: None,
        reason,
        poisoned: false,
        emitted: 0,
    };
    let Ok(exe) = std::env::current_exe() else {
        scoped.incr("harden.degraded");
        return crash(QuarantineReason::WorkerCrash);
    };
    let csv = indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut command = std::process::Command::new(exe);
    command
        .args(&spec.worker_args)
        .env(SHARD_INDICES_ENV, csv)
        .env(SHARD_FINGERPRINT_ENV, format!("{:08x}", rt.fingerprint))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (key, value) in &spec.worker_env {
        command.env(key, value);
    }
    let Ok(mut child) = command.spawn() else {
        scoped.incr("harden.degraded");
        return crash(QuarantineReason::WorkerCrash);
    };
    let Some(stdout) = child.stdout.take() else {
        let _ = terminate_child(&mut child, slot_cfg.term_grace);
        scoped.incr("harden.degraded");
        return crash(QuarantineReason::WorkerCrash);
    };
    let (ptx, prx) = mpsc::channel::<PipeEvent>();
    let reader = std::thread::spawn(move || {
        let mut stdout = stdout;
        let mut decoder = FrameDecoder::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stdout.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    for payload in decoder.push(&chunk[..n]) {
                        if ptx.send(PipeEvent::Frame(payload)).is_err() {
                            return;
                        }
                    }
                }
            }
        }
        let _ = ptx.send(PipeEvent::Eof {
            dropped: decoder.dropped(),
            torn: decoder.pending_bytes() > 0,
        });
    });

    let mut liveness = Liveness::new(slot_cfg.startup_grace, slot_cfg.heartbeat_timeout);
    let mut in_flight: Option<usize> = None;
    let mut killed_unresponsive = false;
    let mut poisoned = false;
    let mut aborted = false;
    let mut emitted = 0u64;
    loop {
        match prx.recv_timeout(Duration::from_millis(50)) {
            Ok(PipeEvent::Frame(payload)) => {
                liveness.beat();
                match parse_frame(&payload) {
                    ShardFrame::Hello(fp) if fp == rt.fingerprint => {}
                    ShardFrame::Hello(_) => {
                        // The worker rebuilt a different campaign — a
                        // config bug, deterministic on retry. Degrade
                        // this campaign; the fleet is unaffected.
                        poisoned = true;
                        scoped.incr("harden.degraded");
                        let _ = terminate_child(&mut child, slot_cfg.term_grace);
                    }
                    ShardFrame::Begin(index) => in_flight = Some(index),
                    ShardFrame::Verdict(index, status) => {
                        if !token.is_cancelled() {
                            let _ = tx.send(Msg::Verdict {
                                slot,
                                id: data.id,
                                index,
                                status,
                            });
                            emitted += 1;
                        }
                        if in_flight == Some(index) {
                            in_flight = None;
                        }
                    }
                    ShardFrame::Done | ShardFrame::Foreign => {}
                }
            }
            Ok(PipeEvent::Eof { dropped, torn }) => {
                let torn_frames = dropped + u64::from(torn);
                if torn_frames > 0 {
                    scoped.incr_by("mutation.frames_dropped", torn_frames);
                }
                break;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if token.is_cancelled() && !aborted {
            aborted = true;
            let _ = terminate_child(&mut child, slot_cfg.term_grace);
        }
        if !killed_unresponsive && !aborted && liveness.expired() {
            killed_unresponsive = true;
            scoped.incr("mutation.shard_kill");
            let _ = terminate_child(&mut child, slot_cfg.term_grace);
        }
    }
    let _ = reader.join();
    let class = match wait_with_deadline(&mut child, slot_cfg.term_grace) {
        Ok(status) => classify_exit(status),
        Err(_) => ExitClass::Signal(-1),
    };
    if aborted || token.is_cancelled() {
        return LeaseOutcome::Aborted;
    }
    if emitted as usize == indices.len() && !poisoned {
        return LeaseOutcome::Drained;
    }
    LeaseOutcome::Crashed {
        in_flight,
        reason: death_reason(class, killed_unresponsive),
        poisoned,
        emitted,
    }
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// How many consecutive zero-progress lease deaths degrade a campaign to
/// [`DegradeReason::HarnessFailure`].
const FUTILE_LEASES: u32 = 3;

struct Supervisor {
    config: OrchestratorConfig,
    service_token: CancelToken,
    rx: mpsc::Receiver<Msg>,
    slot_tx: Vec<mpsc::Sender<SlotCmd>>,
    slot_handles: Vec<std::thread::JoinHandle<()>>,
    /// Per slot: the campaign and indices of the lease it is running.
    slot_lease: Vec<Option<(CampaignId, Vec<usize>)>>,
    campaigns: HashMap<CampaignId, Campaign>,
    next_id: u64,
    shutting_down: bool,
    shutdown_reply: Option<mpsc::Sender<Vec<CampaignStatus>>>,
    last_fleet_beat: Instant,
}

impl Supervisor {
    fn run(mut self) {
        let _hook_guard = self.config.silence_panics.then(PanicSilencer::install);
        loop {
            match self.rx.recv_timeout(SUPERVISOR_POLL) {
                Ok(msg) => self.handle(msg),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            // Drain bursts without blocking so verdict floods never
            // outpace the scheduler.
            while let Ok(msg) = self.rx.try_recv() {
                self.handle(msg);
            }
            self.schedule();
            self.heartbeats();
            if self.shutting_down && self.slot_lease.iter().all(|l| l.is_none()) {
                self.finish_shutdown();
                return;
            }
        }
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Cmd(cmd) => self.handle_cmd(cmd),
            Msg::Prepared {
                slot,
                id,
                baseline,
                events,
            } => self.handle_prepared(slot, id, baseline, events),
            Msg::Verdict {
                slot,
                id,
                index,
                status,
            } => self.handle_verdict(slot, id, index, status),
            Msg::LeaseEnded {
                slot,
                id,
                outcome,
                events,
            } => self.handle_lease_ended(slot, id, outcome, events),
        }
    }

    fn handle_cmd(&mut self, cmd: Command) {
        match cmd {
            Command::Submit(request, reply) => {
                let _ = reply.send(self.admit(*request));
            }
            Command::Cancel(id, reply) => {
                let _ = reply.send(self.cancel(id));
            }
            Command::Status(id, reply) => {
                let _ = reply.send(self.campaigns.get(&id).map(Campaign::status));
            }
            Command::List(reply) => {
                let mut statuses: Vec<CampaignStatus> =
                    self.campaigns.values().map(Campaign::status).collect();
                statuses.sort_by_key(|s| s.id);
                let _ = reply.send(statuses);
            }
            Command::Wait(id, reply) => match self.campaigns.get_mut(&id) {
                Some(campaign) => match &campaign.outcome {
                    Some(outcome) => {
                        let _ = reply.send(Some(outcome.clone()));
                    }
                    None => campaign.waiters.push(reply),
                },
                None => {
                    let _ = reply.send(None);
                }
            },
            Command::Shutdown(reply) => {
                self.shutting_down = true;
                self.shutdown_reply = Some(reply);
                self.service_token.cancel();
                let ids: Vec<CampaignId> = self.campaigns.keys().copied().collect();
                for id in ids {
                    let campaign = match self.campaigns.get_mut(&id) {
                        Some(c) if !c.phase.is_terminal() => c,
                        _ => continue,
                    };
                    if campaign.pending_end.is_none() {
                        campaign.pending_end = Some(CampaignPhase::Cancelled);
                    }
                    if campaign.active_leases == 0 {
                        self.finalize(id);
                    } else {
                        campaign.phase = CampaignPhase::Draining;
                    }
                }
            }
        }
    }

    fn admit(&mut self, request: CampaignRequest) -> Result<CampaignId, SubmitError> {
        if self.shutting_down {
            return Err(SubmitError::ServiceStopped);
        }
        let live = self
            .campaigns
            .values()
            .filter(|c| !c.phase.is_terminal())
            .count();
        if live >= self.config.capacity {
            self.config.telemetry.incr("orchestrator.rejected");
            return Err(SubmitError::QueueFull {
                capacity: self.config.capacity,
            });
        }
        let id = CampaignId(self.next_id);
        self.next_id += 1;
        let slot_cfg = SlotConfig::effective(request.slot, &request.config);
        let spec = match &request.config.isolation {
            crate::analysis::IsolationMode::Process(spec) => Some(spec.clone()),
            crate::analysis::IsolationMode::InThread => None,
        };
        let backoff_seed = spec.as_ref().map(|s| s.backoff_seed).unwrap_or(0) ^ id.0;
        let total = request.mutants.len();
        let campaign_telemetry = request.config.telemetry.clone();
        let root = campaign_telemetry.span_with("campaign", || format!("{id} {}", request.name));
        let scoped = campaign_telemetry.at(root.id());
        let data = Arc::new(CampaignData {
            id,
            shards: request.shards,
            suite: request.suite,
            mutants: request.mutants,
            config: request.config,
            token: self.service_token.child(),
        });
        let campaign = Campaign {
            data,
            name: request.name,
            priority: request.priority,
            mutant_budget: request.mutant_budget,
            slot_cfg,
            spec,
            phase: CampaignPhase::Queued,
            rt: None,
            journal: None,
            slots: {
                let mut v = Vec::new();
                v.resize_with(total, || None);
                v
            },
            leased: vec![false; total],
            deaths: HashMap::new(),
            executed: 0,
            replayed: 0,
            crashes: 0,
            futile: 0,
            exhaustion_flagged: false,
            active_leases: 0,
            next_lease_at: Instant::now(),
            backoff_rng: Rng::seed_from_u64(backoff_seed),
            respawns: 0,
            starved: 0,
            pending_end: None,
            outcome: None,
            waiters: Vec::new(),
            root: Some(root),
            telemetry: scoped,
            done_by_slot: vec![0; self.config.slots],
            last_beat: Instant::now(),
        };
        self.campaigns.insert(id, campaign);
        self.config.telemetry.incr("orchestrator.admitted");
        Ok(id)
    }

    fn cancel(&mut self, id: CampaignId) -> bool {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return false;
        };
        if campaign.phase.is_terminal() {
            return false;
        }
        self.config.telemetry.incr("orchestrator.cancelled");
        campaign.data.token.cancel();
        if campaign.pending_end.is_none() {
            campaign.pending_end = Some(CampaignPhase::Cancelled);
        }
        if campaign.active_leases == 0 {
            self.finalize(id);
        } else {
            campaign.phase = CampaignPhase::Draining;
        }
        true
    }

    fn handle_prepared(
        &mut self,
        slot: usize,
        id: CampaignId,
        baseline: Option<Box<GoldenBaseline>>,
        events: Vec<Event>,
    ) {
        self.slot_lease[slot] = None;
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        campaign.active_leases -= 1;
        absorb_lease(campaign, &events);
        if campaign.phase == CampaignPhase::Draining || campaign.data.token.is_cancelled() {
            if campaign.pending_end.is_none() {
                campaign.pending_end = Some(CampaignPhase::Cancelled);
            }
            if campaign.active_leases == 0 {
                self.finalize(id);
            }
            return;
        }
        let Some(baseline) = baseline else {
            // The golden run panicked: the subject's harness is broken
            // and every lease would fail the same way.
            campaign.telemetry.incr("mutation.worker_crash");
            campaign.pending_end = Some(CampaignPhase::Degraded(DegradeReason::HarnessFailure));
            self.finalize(id);
            return;
        };
        let data = campaign.data.clone();
        let scoped = campaign.telemetry.clone();
        let (journal, replayed) = JournalState::open(
            data.shards.class_name(),
            &data.suite,
            &data.mutants,
            &data.config,
            &scoped,
        );
        persist_coverage(&data.config, &baseline, journal.fingerprint(), &scoped);
        let fingerprint = campaign_fingerprint(
            data.shards.class_name(),
            &data.suite,
            &data.mutants,
            &data.config,
        );
        let (slots, _done) = replay_slots(&data.mutants, replayed, &scoped);
        campaign.replayed = slots.iter().filter(|s| s.is_some()).count() as u64;
        if campaign.replayed > 0 {
            self.config.telemetry.incr("orchestrator.resumed");
        }
        campaign.slots = slots;
        campaign.journal = Some(journal);
        campaign.rt = Some(Arc::new(CampaignRuntime {
            data,
            baseline: *baseline,
            fingerprint,
        }));
        campaign.phase = CampaignPhase::Running;
        campaign
            .telemetry
            .gauge("mutation.workers", self.config.slots as i64);
        if campaign.unfinished() == 0 {
            campaign.pending_end = Some(CampaignPhase::Completed);
            self.finalize(id);
            return;
        }
        // A zero budget with work left degrades immediately.
        self.check_budget(id);
    }

    fn handle_verdict(&mut self, slot: usize, id: CampaignId, index: usize, status: MutantStatus) {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        // Merges happen only while the campaign is healthy: a draining
        // campaign's late verdicts are discarded so its journal (and so a
        // resumed run) stays byte-identical to a solo run's prefix.
        if campaign.phase != CampaignPhase::Running || campaign.data.token.is_cancelled() {
            return;
        }
        if index >= campaign.slots.len() || campaign.slots[index].is_some() {
            return;
        }
        if let Some(journal) = &mut campaign.journal {
            journal.record(index, &status);
        }
        record_status(&campaign.telemetry, &status);
        campaign.slots[index] = Some(MutantResult {
            mutant: campaign.data.mutants[index].clone(),
            status,
        });
        if let Some(counter) = campaign.done_by_slot.get_mut(slot) {
            *counter += 1;
        }
        campaign.executed += 1;
        if campaign.unfinished() == 0 {
            // Completion is finalized when the owning lease ends (its
            // remaining events still need grafting), but the phase no
            // longer accepts verdicts-after-complete.
            return;
        }
        self.check_budget(id);
    }

    /// Degrades `id` to `BudgetExhausted` when its campaign-level mutant
    /// budget is spent with unfinished mutants left.
    fn check_budget(&mut self, id: CampaignId) {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        let Some(budget) = campaign.mutant_budget else {
            return;
        };
        if campaign.phase != CampaignPhase::Running
            || campaign.executed < budget
            || campaign.unfinished() == 0
        {
            return;
        }
        campaign.data.token.cancel();
        campaign.pending_end = Some(CampaignPhase::Degraded(DegradeReason::BudgetExhausted));
        let executed = campaign.executed;
        let queued = campaign.unfinished();
        campaign.telemetry.snapshot("campaign.degraded", || {
            vec![
                ("executed".to_owned(), executed as i64),
                ("queued".to_owned(), queued as i64),
            ]
        });
        if campaign.active_leases == 0 {
            self.finalize(id);
        } else {
            campaign.phase = CampaignPhase::Draining;
        }
    }

    fn handle_lease_ended(
        &mut self,
        slot: usize,
        id: CampaignId,
        outcome: LeaseOutcome,
        events: Vec<Event>,
    ) {
        let lease = self.slot_lease[slot].take();
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        campaign.active_leases -= 1;
        absorb_lease(campaign, &events);
        // Return unmerged leased indices to the pool.
        if let Some((lease_id, indices)) = lease {
            if lease_id == id {
                for index in indices {
                    if campaign.slots[index].is_none() {
                        campaign.leased[index] = false;
                    }
                }
            }
        }
        if campaign.phase == CampaignPhase::Running {
            match outcome {
                LeaseOutcome::Drained => campaign.futile = 0,
                LeaseOutcome::Aborted => {}
                LeaseOutcome::Crashed {
                    in_flight,
                    reason,
                    poisoned,
                    emitted,
                } => self.handle_crash(id, slot, in_flight, reason, poisoned, emitted),
            }
        }
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        if campaign.phase == CampaignPhase::Running && campaign.unfinished() == 0 {
            campaign.pending_end = Some(CampaignPhase::Completed);
        }
        if campaign.pending_end.is_some() && campaign.active_leases == 0 {
            self.finalize(id);
        } else if campaign.pending_end.is_some() {
            campaign.phase = CampaignPhase::Draining;
        }
    }

    /// The death ladder, shared with the solo process supervisor: a first
    /// death returns the in-flight mutant to the queue (an innocent
    /// mutant killed from outside must re-execute for byte-identical
    /// reports); a second death convicts it with the reason derived from
    /// how the shard died. Leases that die repeatedly with no progress at
    /// all degrade the campaign instead of spinning forever.
    fn handle_crash(
        &mut self,
        id: CampaignId,
        slot: usize,
        in_flight: Option<usize>,
        reason: QuarantineReason,
        poisoned: bool,
        emitted: u64,
    ) {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        campaign.crashes += 1;
        if poisoned {
            campaign.data.token.cancel();
            campaign.pending_end = Some(CampaignPhase::Degraded(DegradeReason::HarnessFailure));
            return;
        }
        let mut progress = emitted > 0;
        if let Some(index) = in_flight {
            if index < campaign.slots.len() && campaign.slots[index].is_none() {
                let deaths = campaign.deaths.entry(index).or_insert(0);
                *deaths += 1;
                if *deaths >= 2 {
                    let status = MutantStatus::Quarantined { reason };
                    if let Some(journal) = &mut campaign.journal {
                        journal.record(index, &status);
                    }
                    record_status(&campaign.telemetry, &status);
                    campaign.slots[index] = Some(MutantResult {
                        mutant: campaign.data.mutants[index].clone(),
                        status,
                    });
                    if let Some(counter) = campaign.done_by_slot.get_mut(slot) {
                        *counter += 1;
                    }
                }
                progress = true;
            }
        }
        if progress {
            campaign.futile = 0;
        } else {
            campaign.futile += 1;
            if campaign.futile >= FUTILE_LEASES {
                campaign.data.token.cancel();
                campaign.pending_end = Some(CampaignPhase::Degraded(DegradeReason::HarnessFailure));
                return;
            }
        }
        // Process campaigns back off before their next lease, on the
        // same jittered envelope the solo supervisor respawns under.
        if let Some(spec) = campaign.spec.clone() {
            campaign.respawns += 1;
            campaign.telemetry.incr("mutation.shard_respawn");
            let delay = spec
                .respawn_backoff
                .jittered_delay(campaign.respawns, &mut campaign.backoff_rng);
            campaign.next_lease_at = Instant::now() + delay;
        }
        if campaign.crashes > campaign.data.config.worker_restarts as u64
            && !campaign.exhaustion_flagged
        {
            campaign.exhaustion_flagged = true;
            flag_restart_exhaustion(
                &campaign.telemetry,
                campaign.data.config.worker_restarts,
                campaign.unfinished(),
            );
        }
    }

    /// Moves a campaign into its pending terminal phase, builds its
    /// outcome, wakes waiters, and releases its runtime.
    fn finalize(&mut self, id: CampaignId) {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return;
        };
        let end_phase = campaign
            .pending_end
            .take()
            .unwrap_or(CampaignPhase::Cancelled);
        campaign.phase = end_phase;
        campaign_heartbeat(&campaign.telemetry, &campaign.slots, &campaign.done_by_slot);
        let golden = campaign
            .rt
            .as_ref()
            .map(|rt| rt.baseline.golden.clone())
            .unwrap_or_else(|| SuiteResult {
                class_name: campaign.data.shards.class_name().to_owned(),
                cases: Vec::new(),
                notes: Vec::new(),
            });
        let end = match end_phase {
            CampaignPhase::Completed => {
                self.config.telemetry.incr("orchestrator.completed");
                let results = collect_slots(&campaign.data.mutants, campaign.slots.clone());
                CampaignEnd::Completed(Box::new(finish_run(&campaign.telemetry, results, golden)))
            }
            CampaignPhase::Degraded(reason) => {
                self.config.telemetry.incr("orchestrator.degraded");
                let results = collect_slots(&campaign.data.mutants, campaign.slots.clone());
                CampaignEnd::Degraded {
                    reason,
                    partial: Box::new(MutationRun { results, golden }),
                }
            }
            _ => CampaignEnd::Cancelled,
        };
        let outcome = CampaignOutcome {
            id,
            name: campaign.name.clone(),
            end,
        };
        for waiter in campaign.waiters.drain(..) {
            let _ = waiter.send(Some(outcome.clone()));
        }
        campaign.outcome = Some(outcome);
        // Release the heavyweight state; the journal (dropped here) was
        // fsynced per append, so the campaign is already checkpointed.
        campaign.rt = None;
        campaign.journal = None;
        if let Some(root) = campaign.root.take() {
            root.finish();
        }
    }

    /// Hands free slots leases: queued campaigns prepare first (FIFO),
    /// then the runnable campaign with the highest aged priority wins.
    fn schedule(&mut self) {
        if self.shutting_down {
            return;
        }
        let now = Instant::now();
        for slot in 0..self.slot_tx.len() {
            if self.slot_lease[slot].is_some() {
                continue;
            }
            // Queued campaigns prepare in submit order.
            let queued = self
                .campaigns
                .values()
                .filter(|c| c.phase == CampaignPhase::Queued)
                .map(|c| c.data.id)
                .min();
            if let Some(id) = queued {
                if let Some(campaign) = self.campaigns.get_mut(&id) {
                    campaign.phase = CampaignPhase::Preparing;
                    campaign.active_leases += 1;
                    self.slot_lease[slot] = Some((id, Vec::new()));
                    let data = campaign.data.clone();
                    let _ = self.slot_tx[slot].send(SlotCmd::Prepare { data });
                }
                continue;
            }
            // Work stealing with aged priorities: highest effective
            // priority wins; ties go to the campaign with fewer leases in
            // flight, then to the older campaign.
            let winner = self
                .campaigns
                .values()
                .filter(|c| c.runnable(now))
                .max_by_key(|c| {
                    (
                        u64::from(c.priority) + u64::from(c.starved),
                        std::cmp::Reverse(c.active_leases),
                        std::cmp::Reverse(c.data.id),
                    )
                })
                .map(|c| c.data.id);
            let Some(id) = winner else {
                continue;
            };
            // Aging: everyone else runnable gains a round.
            for campaign in self.campaigns.values_mut() {
                if campaign.data.id != id && campaign.runnable(now) {
                    campaign.starved = campaign.starved.saturating_add(1);
                }
            }
            let lease_size = self.config.lease_size.max(1);
            let Some(campaign) = self.campaigns.get_mut(&id) else {
                continue;
            };
            campaign.starved = 0;
            let indices = campaign.take_lease(lease_size);
            if indices.is_empty() {
                continue;
            }
            campaign.active_leases += 1;
            self.slot_lease[slot] = Some((id, indices.clone()));
            self.config.telemetry.incr("orchestrator.leases");
            let Some(rt) = campaign.rt.clone() else {
                continue;
            };
            let cmd = match campaign.spec.clone() {
                Some(spec) => SlotCmd::ProcessLease {
                    rt,
                    indices,
                    spec,
                    slot_cfg: campaign.slot_cfg,
                },
                None => SlotCmd::ThreadLease { rt, indices },
            };
            let _ = self.slot_tx[slot].send(cmd);
        }
    }

    fn heartbeats(&mut self) {
        let now = Instant::now();
        for campaign in self.campaigns.values_mut() {
            if campaign.phase == CampaignPhase::Running
                && campaign.telemetry.is_enabled()
                && now.duration_since(campaign.last_beat) >= HEARTBEAT_INTERVAL
            {
                campaign.last_beat = now;
                campaign_heartbeat(&campaign.telemetry, &campaign.slots, &campaign.done_by_slot);
            }
        }
        if self.config.telemetry.is_enabled()
            && now.duration_since(self.last_fleet_beat) >= HEARTBEAT_INTERVAL
        {
            self.last_fleet_beat = now;
            let active = self
                .campaigns
                .values()
                .filter(|c| !c.phase.is_terminal())
                .count() as i64;
            let queued = self
                .campaigns
                .values()
                .filter(|c| c.phase == CampaignPhase::Queued)
                .count() as i64;
            let busy = self.slot_lease.iter().filter(|l| l.is_some()).count() as i64;
            self.config.telemetry.snapshot("orchestrator.progress", || {
                vec![
                    ("active".to_owned(), active),
                    ("queued".to_owned(), queued),
                    ("busy_slots".to_owned(), busy),
                ]
            });
        }
    }

    /// Every slot is idle and the service is stopping: finalize what's
    /// left, answer the shutdown caller, and retire the fleet.
    fn finish_shutdown(&mut self) {
        let ids: Vec<CampaignId> = self.campaigns.keys().copied().collect();
        for id in ids {
            let terminal = self
                .campaigns
                .get(&id)
                .map(|c| c.phase.is_terminal())
                .unwrap_or(true);
            if !terminal {
                self.finalize(id);
            }
        }
        let mut statuses: Vec<CampaignStatus> =
            self.campaigns.values().map(Campaign::status).collect();
        statuses.sort_by_key(|s| s.id);
        if let Some(reply) = self.shutdown_reply.take() {
            let _ = reply.send(statuses);
        }
        for tx in &self.slot_tx {
            let _ = tx.send(SlotCmd::Shutdown);
        }
        for handle in self.slot_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Grafts one lease's private event stream under the campaign root span.
fn absorb_lease(campaign: &Campaign, events: &[Event]) {
    if events.is_empty() {
        return;
    }
    if let Some(root) = &campaign.root {
        campaign
            .data
            .config
            .telemetry
            .absorb_under(events, root.id());
    }
}

// ---------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------

/// A running campaign-orchestration service; see the [module docs](self).
///
/// # Examples
///
/// ```no_run
/// use concat_mutation::{Orchestrator, OrchestratorConfig};
///
/// let service = Orchestrator::start(OrchestratorConfig::default());
/// // let id = service.submit(request)?;
/// // let outcome = service.wait(id);
/// let _statuses = service.shutdown();
/// ```
pub struct Orchestrator {
    tx: mpsc::Sender<Msg>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    service_token: CancelToken,
}

impl Orchestrator {
    /// Starts the service: one supervisor thread plus `config.slots`
    /// persistent slot workers.
    pub fn start(config: OrchestratorConfig) -> Orchestrator {
        let slots = config.slots.max(1);
        let service_token = CancelToken::new();
        let (tx, rx) = mpsc::channel::<Msg>();
        let mut slot_tx = Vec::with_capacity(slots);
        let mut slot_handles = Vec::with_capacity(slots);
        for slot in 0..slots {
            let (cmd_tx, cmd_rx) = mpsc::channel::<SlotCmd>();
            let msg_tx = tx.clone();
            slot_tx.push(cmd_tx);
            slot_handles.push(std::thread::spawn(move || {
                slot_main(slot, cmd_rx, msg_tx);
            }));
        }
        config.telemetry.gauge("orchestrator.slots", slots as i64);
        let supervisor = Supervisor {
            config,
            service_token: service_token.clone(),
            rx,
            slot_tx,
            slot_handles,
            slot_lease: {
                let mut v = Vec::new();
                v.resize_with(slots, || None);
                v
            },
            campaigns: HashMap::new(),
            next_id: 1,
            shutting_down: false,
            shutdown_reply: None,
            last_fleet_beat: Instant::now(),
        };
        let handle = std::thread::spawn(move || supervisor.run());
        Orchestrator {
            tx,
            supervisor: Some(handle),
            service_token,
        }
    }

    /// Submits a campaign.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] past the admission bound,
    /// [`SubmitError::ServiceStopped`] after shutdown.
    pub fn submit(&self, request: CampaignRequest) -> Result<CampaignId, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self
            .tx
            .send(Msg::Cmd(Command::Submit(Box::new(request), reply_tx)))
            .is_err()
        {
            return Err(SubmitError::ServiceStopped);
        }
        reply_rx.recv().unwrap_or(Err(SubmitError::ServiceStopped))
    }

    /// Cancels a campaign. Returns `true` when the campaign existed and
    /// was not already terminal. The campaign's journal keeps its
    /// verified verdicts; resubmitting the same campaign resumes it.
    pub fn cancel(&self, id: CampaignId) -> bool {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self
            .tx
            .send(Msg::Cmd(Command::Cancel(id, reply_tx)))
            .is_err()
        {
            return false;
        }
        reply_rx.recv().unwrap_or(false)
    }

    /// A point-in-time status of one campaign (`None` for unknown ids).
    pub fn status(&self, id: CampaignId) -> Option<CampaignStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self
            .tx
            .send(Msg::Cmd(Command::Status(id, reply_tx)))
            .is_err()
        {
            return None;
        }
        reply_rx.recv().unwrap_or(None)
    }

    /// Statuses of every campaign this service instance has seen, in
    /// submit order.
    pub fn list(&self) -> Vec<CampaignStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Msg::Cmd(Command::List(reply_tx))).is_err() {
            return Vec::new();
        }
        reply_rx.recv().unwrap_or_default()
    }

    /// Blocks until `id` reaches a terminal phase and returns its
    /// outcome (`None` for unknown ids or a stopped service).
    pub fn wait(&self, id: CampaignId) -> Option<CampaignOutcome> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Msg::Cmd(Command::Wait(id, reply_tx))).is_err() {
            return None;
        }
        reply_rx.recv().unwrap_or(None)
    }

    /// The service-level cancellation token. Campaign tokens are
    /// children of it: cancelling it (a SIGTERM handler, a test harness)
    /// aborts every in-flight lease, while each campaign's journal
    /// already holds its verified verdicts — the durable checkpoint a
    /// `--resume` replays.
    pub fn service_token(&self) -> &CancelToken {
        &self.service_token
    }

    /// Stops the service: cancels every campaign, waits for in-flight
    /// leases to stand down, finalizes all campaigns (non-terminal ones
    /// as [`CampaignPhase::Cancelled`], journals flushed), and returns
    /// the final statuses.
    pub fn shutdown(mut self) -> Vec<CampaignStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Msg::Cmd(Command::Shutdown(reply_tx))).is_err() {
            return Vec::new();
        }
        let statuses = reply_rx.recv().unwrap_or_default();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        statuses
    }
}

impl Drop for Orchestrator {
    fn drop(&mut self) {
        if let Some(handle) = self.supervisor.take() {
            let (reply_tx, reply_rx) = mpsc::channel();
            if self.tx.send(Msg::Cmd(Command::Shutdown(reply_tx))).is_ok() {
                let _ = reply_rx.recv();
            }
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::IsolationMode;

    #[test]
    fn slot_config_defaults_match_process_isolation_defaults() {
        let default = SlotConfig::default();
        let spec = ProcessIsolation::new(["x"]);
        assert_eq!(default.startup_grace, spec.startup_grace);
        assert_eq!(default.heartbeat_timeout, spec.heartbeat_timeout);
        assert_eq!(default.term_grace, spec.term_grace);
    }

    #[test]
    fn slot_config_inherits_campaign_isolation_spec() {
        let mut spec = ProcessIsolation::new(["worker"]);
        spec.startup_grace = Duration::from_secs(120);
        spec.heartbeat_timeout = Duration::from_secs(60);
        spec.term_grace = Duration::from_millis(50);
        let config = MutationConfig {
            isolation: IsolationMode::Process(spec),
            ..MutationConfig::default()
        };
        let effective = SlotConfig::effective(None, &config);
        assert_eq!(effective.startup_grace, Duration::from_secs(120));
        assert_eq!(effective.heartbeat_timeout, Duration::from_secs(60));
        assert_eq!(effective.term_grace, Duration::from_millis(50));
        // An explicit override always wins.
        let explicit = SlotConfig {
            startup_grace: Duration::from_secs(1),
            ..SlotConfig::default()
        };
        let overridden = SlotConfig::effective(Some(explicit), &config);
        assert_eq!(overridden.startup_grace, Duration::from_secs(1));
    }

    #[test]
    fn phase_and_error_displays_are_stable() {
        assert_eq!(CampaignPhase::Queued.to_string(), "queued");
        assert_eq!(
            CampaignPhase::Degraded(DegradeReason::BudgetExhausted).to_string(),
            "degraded(budget-exhausted)"
        );
        assert_eq!(
            CampaignPhase::Degraded(DegradeReason::HarnessFailure).to_string(),
            "degraded(harness-failure)"
        );
        assert!(SubmitError::QueueFull { capacity: 3 }
            .to_string()
            .contains("capacity 3"));
        assert_eq!(CampaignId(7).to_string(), "c7");
        assert!(CampaignPhase::Completed.is_terminal());
        assert!(!CampaignPhase::Draining.is_terminal());
    }

    #[test]
    fn unknown_ids_are_handled() {
        let service = Orchestrator::start(OrchestratorConfig {
            slots: 1,
            ..OrchestratorConfig::default()
        });
        let ghost = CampaignId(999);
        assert!(service.status(ghost).is_none());
        assert!(!service.cancel(ghost));
        assert!(service.wait(ghost).is_none());
        assert!(service.list().is_empty());
        let statuses = service.shutdown();
        assert!(statuses.is_empty());
    }
}
