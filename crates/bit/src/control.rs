//! BIT access control: the test-mode switch.
//!
//! "The BIT features can only be accessed if the class is in test mode,
//! which is set by the user through BIT access control capability. This
//! control capability prevents the misuse of BIT services" (paper §3.3).
//! The paper implements the control as a compile-time directive; here it is
//! a runtime switch shared between the test harness and the component
//! instance, which additionally lets experiments measure the assertions-on
//! vs assertions-off ablation without rebuilding.

use concat_obs::Telemetry;
use concat_runtime::AssertionKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shared test-mode switch plus assertion-activity counters.
///
/// Cloning is cheap (`Arc` internally); the harness keeps one clone, the
/// component instance another.
///
/// # Examples
///
/// ```
/// use concat_bit::BitControl;
///
/// let ctl = BitControl::new_enabled();
/// assert!(ctl.enabled());
/// ctl.set_enabled(false);
/// assert!(!ctl.enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitControl {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: AtomicBool,
    checks: AtomicU64,
    violations: AtomicU64,
    /// Fast-path flag mirroring `telemetry.is_enabled()`; checked before
    /// taking the lock so assertion-heavy components pay one relaxed
    /// atomic load when nobody is watching.
    telemetry_on: AtomicBool,
    telemetry: RwLock<Telemetry>,
}

impl BitControl {
    /// Creates a control with BIT capabilities *disabled* (deployment mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a control with BIT capabilities *enabled* (test mode).
    pub fn new_enabled() -> Self {
        let ctl = Self::default();
        ctl.set_enabled(true);
        ctl
    }

    /// Whether BIT capabilities (assertions, reporter detail) are active.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Switches test mode on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one evaluated assertion. Called by the assertion macros.
    pub fn record_check(&self) {
        self.inner.checks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one violated assertion. Called by the assertion macros.
    pub fn record_violation(&self) {
        self.inner.violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of assertions evaluated since construction (or last reset).
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Number of assertion violations since construction (or last reset).
    pub fn violations(&self) -> u64 {
        self.inner.violations.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero (test mode is unchanged).
    pub fn reset_counters(&self) {
        self.inner.checks.store(0, Ordering::Relaxed);
        self.inner.violations.store(0, Ordering::Relaxed);
    }

    /// Attaches a telemetry handle: every assertion evaluated in test mode
    /// increments `bit.<kind>.checks` (and `bit.<kind>.violations` when it
    /// fails). Shared by all clones of this control — components built
    /// under an instrumented harness report automatically.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        self.inner
            .telemetry_on
            .store(telemetry.is_enabled(), Ordering::Relaxed);
        // Recover a poisoned lock: the handle is a plain value, so a
        // writer that panicked mid-assignment left it usable.
        *self
            .inner
            .telemetry
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = telemetry;
    }

    /// A clone of the attached telemetry handle — disabled when none was
    /// set, so callers can capture it once and emit unconditionally.
    pub fn telemetry(&self) -> Telemetry {
        if !self.inner.telemetry_on.load(Ordering::Relaxed) {
            return Telemetry::disabled();
        }
        self.inner
            .telemetry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Emits per-kind assertion telemetry; called by [`crate::check`]
    /// after the test-mode gate, so deployment-mode components emit
    /// nothing.
    pub(crate) fn emit_assertion(&self, kind: AssertionKind, holds: bool) {
        if !self.inner.telemetry_on.load(Ordering::Relaxed) {
            return;
        }
        let telemetry = self
            .inner
            .telemetry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (checks, violations) = match kind {
            AssertionKind::Invariant => ("bit.invariant.checks", "bit.invariant.violations"),
            AssertionKind::Precondition => {
                ("bit.precondition.checks", "bit.precondition.violations")
            }
            AssertionKind::Postcondition => {
                ("bit.postcondition.checks", "bit.postcondition.violations")
            }
        };
        telemetry.incr(checks);
        if !holds {
            telemetry.incr(violations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(!BitControl::new().enabled());
    }

    #[test]
    fn enabled_constructor_and_toggle() {
        let ctl = BitControl::new_enabled();
        assert!(ctl.enabled());
        ctl.set_enabled(false);
        assert!(!ctl.enabled());
        ctl.set_enabled(true);
        assert!(ctl.enabled());
    }

    #[test]
    fn clones_share_state() {
        let a = BitControl::new();
        let b = a.clone();
        a.set_enabled(true);
        assert!(b.enabled());
        b.record_check();
        assert_eq!(a.checks(), 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let ctl = BitControl::new_enabled();
        ctl.record_check();
        ctl.record_check();
        ctl.record_violation();
        assert_eq!(ctl.checks(), 2);
        assert_eq!(ctl.violations(), 1);
        ctl.reset_counters();
        assert_eq!(ctl.checks(), 0);
        assert_eq!(ctl.violations(), 0);
        assert!(ctl.enabled(), "reset does not change mode");
    }

    #[test]
    fn control_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitControl>();
    }
}
