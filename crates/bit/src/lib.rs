//! # concat-bit
//!
//! Built-in test (BIT) capabilities for self-testable components.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). The paper's
//! instrumentation (§3.3) adds to a class:
//!
//! * **assertions** — class invariant, pre- and post-conditions, used as a
//!   *partial oracle* during testing: the [`class_invariant!`],
//!   [`pre_condition!`] and [`post_condition!`] macros (Figure 5);
//! * **a reporter method** — dumps internal state: [`StateReport`] and
//!   [`BuiltInTest::reporter`] (Figure 4);
//! * **BIT access control** — a test-mode switch gating the capabilities:
//!   [`BitControl`].
//!
//! The [`BuiltInTest`] trait is the paper's Figure-4 abstract superclass;
//! [`TestableComponent`] combines it with the dynamic dispatch interface of
//! `concat-runtime`, and [`ComponentFactory`] is how drivers create
//! instances per test case.
//!
//! # Examples
//!
//! ```
//! use concat_bit::{pre_condition, BitControl};
//! use concat_runtime::TestException;
//!
//! struct Product { qty: i64, ctl: BitControl }
//!
//! impl Product {
//!     fn update_qty(&mut self, q: i64) -> Result<(), TestException> {
//!         pre_condition!(&self.ctl, "Product", "UpdateQty", q >= 1);
//!         self.qty = q;
//!         Ok(())
//!     }
//! }
//!
//! let mut p = Product { qty: 1, ctl: BitControl::new_enabled() };
//! assert!(p.update_qty(10).is_ok());
//! assert!(p.update_qty(0).is_err()); // caught by the partial oracle
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assertions;
mod built_in_test;
mod control;
mod report;

pub use assertions::{check, violation};
pub use built_in_test::{BuiltInTest, ComponentFactory, TestableComponent};
pub use control::BitControl;
pub use report::StateReport;
