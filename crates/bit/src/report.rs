//! The reporter capability: observable internal state.
//!
//! The paper's `Reporter` method "stores the object's internal state" into
//! the log file (Figure 6). Here a reporter produces a [`StateReport`] — an
//! ordered attribute→value map — that the driver appends to the test log
//! and the mutation oracle compares against the golden run.

use concat_runtime::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A snapshot of a component's internal state.
///
/// Keys are attribute names (or synthetic observables such as `"count"`);
/// iteration order is deterministic (sorted), which makes reports directly
/// comparable across runs.
///
/// # Examples
///
/// ```
/// use concat_bit::StateReport;
/// use concat_runtime::Value;
///
/// let mut r = StateReport::new();
/// r.set("qty", Value::Int(3));
/// r.set("name", Value::Str("Soap".into()));
/// assert_eq!(r.get("qty"), Some(&Value::Int(3)));
/// assert!(r.render().contains("qty = 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateReport {
    entries: BTreeMap<String, Value>,
}

impl StateReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observable. Overwrites any previous value for the key.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Reads an observable back.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of recorded observables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the report the way the paper's `Reporter` writes state into
    /// `Result.txt`: one `key = value` line per observable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v.to_literal());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for StateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromIterator<(String, Value)> for StateReport {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        StateReport {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for StateReport {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut r = StateReport::new();
        r.set("a", Value::Int(1));
        r.set("a", Value::Int(2));
        assert_eq!(r.get("a"), Some(&Value::Int(2)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut r = StateReport::new();
        r.set("zz", Value::Int(1));
        r.set("aa", Value::Str("x".into()));
        assert_eq!(r.render(), "aa = \"x\"\nzz = 1\n");
        assert_eq!(r.to_string(), r.render());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = StateReport::new();
        a.set("x", Value::Int(1));
        a.set("y", Value::Int(2));
        let mut b = StateReport::new();
        b.set("y", Value::Int(2));
        b.set("x", Value::Int(1));
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut r: StateReport = vec![("k".to_owned(), Value::Int(9))].into_iter().collect();
        r.extend(vec![("l".to_owned(), Value::Null)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["k", "l"]);
    }

    #[test]
    fn empty_report_renders_empty() {
        assert!(StateReport::new().render().is_empty());
        assert!(StateReport::new().is_empty());
    }
}
