//! The `BuiltInTest` interface (paper Figure 4) and the testable-component
//! factory used by drivers.
//!
//! The paper defines an abstract class `BuiltInTest` with two methods —
//! `InvariantTest` and `Reporter` — "created to guarantee a built-in test
//! interface independent from the target class interface". The target class
//! inherits and redefines them. In Rust the same contract is a trait.

use crate::control::BitControl;
use crate::report::StateReport;
use concat_runtime::{AssertionViolation, Component, TestException, Value};

/// Built-in test capabilities a self-testable component must provide.
///
/// Mirrors the paper's Figure 4: `InvariantTest` (drivers call it before and
/// after every method of a transaction) and `Reporter` (state dump at the
/// end of a test case), plus access to the BIT control switch.
pub trait BuiltInTest {
    /// The shared test-mode switch of this instance.
    fn bit_control(&self) -> &BitControl;

    /// Evaluates the class invariant against the current state.
    ///
    /// # Errors
    ///
    /// Returns the violated assertion when the invariant does not hold.
    /// Implementations should return `Ok(())` when BIT is disabled (the
    /// [`crate::class_invariant!`] macro does this automatically).
    fn invariant_test(&self) -> Result<(), AssertionViolation>;

    /// Captures the object's internal state for the log and the oracle.
    fn reporter(&self) -> StateReport;
}

/// A component under test with built-in test capabilities.
///
/// Blanket-implemented for every `Component + BuiltInTest` type; drivers
/// hold `Box<dyn TestableComponent>`.
pub trait TestableComponent: Component + BuiltInTest {}

impl<T: Component + BuiltInTest> TestableComponent for T {}

/// Constructs fresh component instances for the driver.
///
/// Each test case begins by creating the object through one of its
/// constructors (a birth-node method) and ends by destroying it, so the
/// driver needs a way to make instances on demand — with BIT already wired
/// to the harness's [`BitControl`].
pub trait ComponentFactory {
    /// Class name of the produced components.
    fn class_name(&self) -> &str;

    /// Creates an instance via the named constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TestException::UnknownMethod`] for an unknown constructor
    /// name, or any exception the constructor itself raises (e.g. a
    /// precondition violation on constructor arguments).
    fn construct(
        &self,
        constructor: &str,
        args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::{args, unknown_method, InvokeResult};

    struct Gauge {
        level: i64,
        ctl: BitControl,
    }

    impl Component for Gauge {
        fn class_name(&self) -> &'static str {
            "Gauge"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Set", "Level"]
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            match m {
                "Set" => {
                    self.level = args::int(m, a, 0)?;
                    Ok(Value::Null)
                }
                "Level" => Ok(Value::Int(self.level)),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for Gauge {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            crate::check(
                &self.ctl,
                concat_runtime::AssertionKind::Invariant,
                "Gauge",
                "",
                "0 <= level <= 10",
                (0..=10).contains(&self.level),
            )
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            r.set("level", Value::Int(self.level));
            r
        }
    }

    struct GaugeFactory;
    impl ComponentFactory for GaugeFactory {
        fn class_name(&self) -> &str {
            "Gauge"
        }
        fn construct(
            &self,
            constructor: &str,
            args_: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Gauge" => {
                    let level = if args_.is_empty() {
                        0
                    } else {
                        args::int(constructor, args_, 0)?
                    };
                    Ok(Box::new(Gauge { level, ctl }))
                }
                other => Err(unknown_method("Gauge", other)),
            }
        }
    }

    #[test]
    fn factory_builds_testable_instances() {
        let ctl = BitControl::new_enabled();
        let mut g = GaugeFactory
            .construct("Gauge", &[Value::Int(3)], ctl)
            .unwrap();
        assert_eq!(g.invoke("Level", &[]).unwrap(), Value::Int(3));
        assert!(g.invariant_test().is_ok());
        assert_eq!(g.reporter().get("level"), Some(&Value::Int(3)));
    }

    #[test]
    fn invariant_detects_corrupt_state() {
        let ctl = BitControl::new_enabled();
        let mut g = GaugeFactory.construct("Gauge", &[], ctl.clone()).unwrap();
        g.invoke("Set", &[Value::Int(99)]).unwrap();
        let v = g.invariant_test().unwrap_err();
        assert_eq!(v.kind, concat_runtime::AssertionKind::Invariant);
        assert_eq!(ctl.violations(), 1);
    }

    #[test]
    fn invariant_silent_when_bit_disabled() {
        let ctl = BitControl::new(); // disabled
        let mut g = GaugeFactory.construct("Gauge", &[], ctl).unwrap();
        g.invoke("Set", &[Value::Int(99)]).unwrap();
        assert!(g.invariant_test().is_ok());
    }

    #[test]
    fn unknown_constructor_rejected() {
        let err = GaugeFactory
            .construct("NotACtor", &[], BitControl::new_enabled())
            .err()
            .unwrap();
        assert_eq!(err.tag(), "UNKNOWN_METHOD");
    }

    #[test]
    fn trait_objects_compose() {
        // TestableComponent is object-safe and blanket-implemented.
        let ctl = BitControl::new_enabled();
        let boxed: Box<dyn TestableComponent> = GaugeFactory.construct("Gauge", &[], ctl).unwrap();
        assert_eq!(boxed.class_name(), "Gauge");
    }
}
