//! Contract assertion support: the macros of the paper's Figure 5.
//!
//! The paper wraps `ClassInvariant`, `PreCondition` and `PostCondition`
//! predicates in C++ macros that throw when violated. The Rust macros below
//! return an `Err(TestException::Assertion(..))` from the enclosing method
//! instead (no unwinding), consulting the [`BitControl`] first so that
//! deployment-mode components skip the checks — the runtime analogue of the
//! paper's compiler directive.

use crate::control::BitControl;
use concat_runtime::{AssertionKind, AssertionViolation};

/// Builds an [`AssertionViolation`]; used by the macros, public for custom
/// assertion helpers.
pub fn violation(
    kind: AssertionKind,
    class_name: &str,
    method: &str,
    message: &str,
) -> AssertionViolation {
    AssertionViolation {
        kind,
        class_name: class_name.to_owned(),
        method: method.to_owned(),
        message: message.to_owned(),
    }
}

/// Evaluates one assertion predicate under a [`BitControl`].
///
/// Returns `Ok(())` when BIT is disabled or the predicate holds;
/// `Err(violation)` otherwise. The macros delegate here so the counting
/// logic lives in one place.
///
/// # Errors
///
/// Returns the constructed [`AssertionViolation`] when test mode is on and
/// `holds` is false.
pub fn check(
    ctl: &BitControl,
    kind: AssertionKind,
    class_name: &str,
    method: &str,
    message: &str,
    holds: bool,
) -> Result<(), AssertionViolation> {
    if !ctl.enabled() {
        return Ok(());
    }
    ctl.record_check();
    ctl.emit_assertion(kind, holds);
    if holds {
        Ok(())
    } else {
        ctl.record_violation();
        Err(violation(kind, class_name, method, message))
    }
}

/// Checks a class invariant predicate (paper's `ClassInvariant` macro).
///
/// Expands to an early `return Err(..)` from a function whose error type
/// implements `From<AssertionViolation>` (both `AssertionViolation` itself
/// and `TestException` do).
///
/// ```
/// use concat_bit::{class_invariant, BitControl};
/// use concat_runtime::TestException;
///
/// fn step(ctl: &BitControl, qty: i64) -> Result<(), TestException> {
///     class_invariant!(ctl, "Product", "UpdateQty", qty >= 1);
///     Ok(())
/// }
///
/// let ctl = BitControl::new_enabled();
/// assert!(step(&ctl, 5).is_ok());
/// assert!(step(&ctl, 0).is_err());
/// ```
#[macro_export]
macro_rules! class_invariant {
    ($ctl:expr, $class:expr, $method:expr, $pred:expr) => {
        if let Err(v) = $crate::check(
            $ctl,
            concat_runtime::AssertionKind::Invariant,
            $class,
            $method,
            stringify!($pred),
            $pred,
        ) {
            return Err(v.into());
        }
    };
}

/// Checks a method precondition (paper's `PreCondition` macro).
///
/// See [`class_invariant!`] for expansion details.
#[macro_export]
macro_rules! pre_condition {
    ($ctl:expr, $class:expr, $method:expr, $pred:expr) => {
        if let Err(v) = $crate::check(
            $ctl,
            concat_runtime::AssertionKind::Precondition,
            $class,
            $method,
            stringify!($pred),
            $pred,
        ) {
            return Err(v.into());
        }
    };
}

/// Checks a method postcondition (paper's `PostCondition` macro).
///
/// See [`class_invariant!`] for expansion details.
#[macro_export]
macro_rules! post_condition {
    ($ctl:expr, $class:expr, $method:expr, $pred:expr) => {
        if let Err(v) = $crate::check(
            $ctl,
            concat_runtime::AssertionKind::Postcondition,
            $class,
            $method,
            stringify!($pred),
            $pred,
        ) {
            return Err(v.into());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::TestException;

    fn guarded(ctl: &BitControl, ok: bool) -> Result<i64, TestException> {
        pre_condition!(ctl, "C", "m", ok);
        Ok(7)
    }

    #[test]
    fn disabled_control_skips_checks() {
        let ctl = BitControl::new();
        assert_eq!(guarded(&ctl, false).unwrap(), 7);
        assert_eq!(ctl.checks(), 0);
    }

    #[test]
    fn enabled_control_enforces() {
        let ctl = BitControl::new_enabled();
        assert_eq!(guarded(&ctl, true).unwrap(), 7);
        let err = guarded(&ctl, false).unwrap_err();
        assert_eq!(err.tag(), "PRECONDITION");
        assert_eq!(ctl.checks(), 2);
        assert_eq!(ctl.violations(), 1);
    }

    #[test]
    fn macros_capture_predicate_text() {
        fn inv(ctl: &BitControl, n: i64) -> Result<(), TestException> {
            class_invariant!(ctl, "Product", "UpdateQty", n >= 1);
            Ok(())
        }
        let ctl = BitControl::new_enabled();
        let err = inv(&ctl, 0).unwrap_err();
        let v = err.as_assertion().unwrap();
        assert_eq!(v.message, "n >= 1");
        assert_eq!(v.class_name, "Product");
        assert_eq!(v.method, "UpdateQty");
    }

    #[test]
    fn post_condition_macro_kind() {
        fn post(ctl: &BitControl, ok: bool) -> Result<(), TestException> {
            post_condition!(ctl, "C", "m", ok);
            Ok(())
        }
        let ctl = BitControl::new_enabled();
        let err = post(&ctl, false).unwrap_err();
        assert_eq!(err.tag(), "POSTCONDITION");
    }

    #[test]
    fn check_function_direct_use() {
        let ctl = BitControl::new_enabled();
        assert!(check(&ctl, AssertionKind::Invariant, "C", "m", "x", true).is_ok());
        let v = check(&ctl, AssertionKind::Invariant, "C", "m", "x", false).unwrap_err();
        assert_eq!(v.kind, AssertionKind::Invariant);
        assert_eq!(v.message, "x");
    }

    #[test]
    fn violation_builder_fills_fields() {
        let v = violation(AssertionKind::Postcondition, "A", "b", "c");
        assert_eq!(v.class_name, "A");
        assert_eq!(v.method, "b");
        assert_eq!(v.message, "c");
    }
}
