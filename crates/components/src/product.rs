//! The `Product` component: the paper's running example (Figures 1–3).
//!
//! A product in the stock control system of a warehouse: attributes
//! `qty`, `name`, `price`, `prov` (a `Provider*`); update methods, an
//! access method, and database insert/remove — exactly the Figure-1
//! interface, backed by the [`StockDb`] substrate. Its t-spec
//! ([`product_spec`]) regenerates the Figure-3 record text and its TFM
//! regenerates Figure 2, including the example use-case path (create →
//! obtain data → remove from database → destroy).

use crate::stockdb::{ProductRow, StockDb, StockDbError};
use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, ObjRef, TestException, Value,
};
use concat_tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};

fn db_err(method: &str, e: StockDbError) -> TestException {
    TestException::domain(method, e.to_string())
}

/// The `Product` component of Figure 1.
#[derive(Debug)]
pub struct Product {
    qty: i64,
    name: String,
    price: f64,
    prov: Option<ObjRef>,
    db: StockDb,
    ctl: BitControl,
}

impl Product {
    /// Class name used in specs and dispatch.
    pub const CLASS: &'static str = "Product";

    /// `Product()` — the default constructor.
    pub fn new(db: StockDb, ctl: BitControl) -> Self {
        Product {
            qty: 1,
            name: "unnamed".into(),
            price: 0.0,
            prov: None,
            db,
            ctl,
        }
    }

    /// `Product(char* n)`.
    pub fn with_name(name: impl Into<String>, db: StockDb, ctl: BitControl) -> Self {
        Product {
            name: name.into(),
            ..Self::new(db, ctl)
        }
    }

    /// `Product(int q, char* n, float p, Provider* prv)`.
    pub fn with_attributes(
        qty: i64,
        name: impl Into<String>,
        price: f64,
        prov: Option<ObjRef>,
        db: StockDb,
        ctl: BitControl,
    ) -> Self {
        Product {
            qty,
            name: name.into(),
            price,
            prov,
            db,
            ctl,
        }
    }

    /// `UpdateQty(q)`.
    ///
    /// # Errors
    ///
    /// A precondition violation when `q` is outside `[1, 99999]`.
    pub fn update_qty(&mut self, q: i64) -> Result<(), TestException> {
        concat_bit::pre_condition!(
            &self.ctl,
            Self::CLASS,
            "UpdateQty",
            (1..=99_999).contains(&q)
        );
        self.qty = q;
        Ok(())
    }

    /// `UpdateName(n)`.
    ///
    /// # Errors
    ///
    /// A precondition violation when `n` is empty.
    pub fn update_name(&mut self, n: &str) -> Result<(), TestException> {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "UpdateName", !n.is_empty());
        self.name = n.to_owned();
        Ok(())
    }

    /// `UpdatePrice(p)`.
    ///
    /// # Errors
    ///
    /// A precondition violation when `p` is negative.
    pub fn update_price(&mut self, p: f64) -> Result<(), TestException> {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "UpdatePrice", p >= 0.0);
        self.price = p;
        Ok(())
    }

    /// `UpdateProv(prv)` — `NULL` clears the provider.
    pub fn update_prov(&mut self, prv: Option<ObjRef>) {
        self.prov = prv;
    }

    /// `ShowAttributes()` — the access method; returns the attribute tuple.
    pub fn show_attributes(&self) -> Value {
        Value::List(vec![
            Value::Str(self.name.clone()),
            Value::Int(self.qty),
            Value::Float(self.price),
            self.prov.clone().map_or(Value::Null, Value::Obj),
        ])
    }

    /// `InsertProduct()` — writes the current attributes into the stock
    /// database; returns 1 (the Figure-1 `int` convention).
    ///
    /// # Errors
    ///
    /// A domain error when the product already exists.
    pub fn insert_product(&mut self) -> InvokeResult {
        const M: &str = "InsertProduct";
        self.db
            .insert(ProductRow {
                name: self.name.clone(),
                qty: self.qty,
                price: self.price,
                provider: self.prov.clone(),
            })
            .map_err(|e| db_err(M, e))?;
        Ok(Value::Int(1))
    }

    /// `GetProductData()` — reloads the attributes from the database row
    /// (step 2 of the paper's use-case scenario).
    ///
    /// # Errors
    ///
    /// A precondition violation when the product is not in the database.
    pub fn get_product_data(&mut self) -> Result<(), TestException> {
        const M: &str = "GetProductData";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, self.db.contains(&self.name));
        let row = self.db.get(&self.name).map_err(|e| db_err(M, e))?;
        self.qty = row.qty;
        self.price = row.price;
        self.prov = row.provider;
        Ok(())
    }

    /// `RemoveProduct()` — removes the row from the database and returns
    /// the removed product's name.
    ///
    /// # Errors
    ///
    /// A precondition violation when the product is not in the database.
    pub fn remove_product(&mut self) -> InvokeResult {
        const M: &str = "RemoveProduct";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, self.db.contains(&self.name));
        let row = self.db.remove(&self.name).map_err(|e| db_err(M, e))?;
        Ok(Value::Str(row.name))
    }
}

impl Component for Product {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec![
            "UpdateName",
            "UpdateQty",
            "UpdatePrice",
            "UpdateProv",
            "ShowAttributes",
            "InsertProduct",
            "GetProductData",
            "RemoveProduct",
            "~Product",
        ]
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "UpdateName" => {
                self.update_name(args::str(method, a, 0)?.to_owned().as_str())?;
                Ok(Value::Null)
            }
            "UpdateQty" => {
                self.update_qty(args::int(method, a, 0)?)?;
                Ok(Value::Null)
            }
            "UpdatePrice" => {
                self.update_price(args::float(method, a, 0)?)?;
                Ok(Value::Null)
            }
            "UpdateProv" => {
                let prv = args::obj_opt(method, a, 0)?.cloned();
                self.update_prov(prv);
                Ok(Value::Null)
            }
            "ShowAttributes" => {
                args::expect_arity(method, a, 0)?;
                Ok(self.show_attributes())
            }
            "InsertProduct" => {
                args::expect_arity(method, a, 0)?;
                self.insert_product()
            }
            "GetProductData" => {
                args::expect_arity(method, a, 0)?;
                self.get_product_data()?;
                Ok(Value::Null)
            }
            "RemoveProduct" => {
                args::expect_arity(method, a, 0)?;
                self.remove_product()
            }
            "~Product" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Product {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            Self::CLASS,
            "",
            "1 <= qty <= 99999 && price >= 0 && !name.empty()",
            (1..=99_999).contains(&self.qty) && self.price >= 0.0 && !self.name.is_empty(),
        )
    }

    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("qty", Value::Int(self.qty));
        r.set("name", Value::Str(self.name.clone()));
        r.set("price", Value::Float(self.price));
        r.set("prov", self.prov.clone().map_or(Value::Null, Value::Obj));
        r.set("db", self.db.snapshot());
        r
    }
}

/// Factory for [`Product`] instances.
///
/// By default each constructed product gets a *fresh* [`StockDb`] so test
/// cases stay independent; [`ProductFactory::with_shared_db`] makes every
/// instance share one store (the application configuration).
#[derive(Debug, Clone, Default)]
pub struct ProductFactory {
    shared_db: Option<StockDb>,
}

impl ProductFactory {
    /// Factory with per-instance fresh databases (test configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Factory whose products all share `db`.
    pub fn with_shared_db(db: StockDb) -> Self {
        ProductFactory {
            shared_db: Some(db),
        }
    }

    fn db(&self) -> StockDb {
        self.shared_db.clone().unwrap_or_default()
    }
}

impl ComponentFactory for ProductFactory {
    fn class_name(&self) -> &str {
        Product::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        if constructor != "Product" {
            return Err(unknown_method(Product::CLASS, constructor));
        }
        match a.len() {
            0 => Ok(Box::new(Product::new(self.db(), ctl))),
            1 => Ok(Box::new(Product::with_name(
                args::str(constructor, a, 0)?.to_owned(),
                self.db(),
                ctl,
            ))),
            4 => {
                let qty = args::int(constructor, a, 0)?;
                let name = args::str(constructor, a, 1)?.to_owned();
                let price = args::float(constructor, a, 2)?;
                let prov = args::obj_opt(constructor, a, 3)?.cloned();
                Ok(Box::new(Product::with_attributes(
                    qty,
                    name,
                    price,
                    prov,
                    self.db(),
                    ctl,
                )))
            }
            got => Err(TestException::ArityMismatch {
                method: constructor.to_owned(),
                expected: 4,
                got,
            }),
        }
    }
}

/// The t-spec of `Product`, mirroring Figure 3: the three constructors,
/// the update/access/database methods, attribute domains (`qty` in
/// `[1, 99999]`, `name` a 30-char string, …) and the Figure-2 TFM.
pub fn product_spec() -> ClassSpec {
    ClassSpecBuilder::new(Product::CLASS)
        .source_file("product.cpp")
        .attribute("qty", Domain::int_range(1, 99_999))
        .attribute("name", Domain::string(30))
        .attribute("price", Domain::float_range(0.0, 10_000.0))
        .attribute(
            "prov",
            Domain::Pointer {
                class_name: "Provider".into(),
            },
        )
        .constructor("m1", "Product")
        .constructor("m2", "Product")
        .param("q", Domain::int_range(1, 99_999))
        .param("n", Domain::string(30))
        .param("p", Domain::float_range(0.0, 10_000.0))
        .param(
            "prv",
            Domain::Pointer {
                class_name: "Provider".into(),
            },
        )
        .constructor("m3", "Product")
        .param("n", Domain::string(30))
        .method("m4", "UpdateName", MethodCategory::Update)
        .param("n", Domain::string(30))
        .method("m5", "UpdateQty", MethodCategory::Update)
        .param("q", Domain::int_range(1, 99_999))
        .method("m6", "UpdatePrice", MethodCategory::Update)
        .param("p", Domain::float_range(0.0, 10_000.0))
        .method("m7", "UpdateProv", MethodCategory::Update)
        .param(
            "prv",
            Domain::Pointer {
                class_name: "Provider".into(),
            },
        )
        .method("m8", "ShowAttributes", MethodCategory::Access)
        .returns("AttributeTuple")
        .method("m9", "InsertProduct", MethodCategory::Database)
        .returns("int")
        .method("m10", "GetProductData", MethodCategory::Database)
        .method("m11", "RemoveProduct", MethodCategory::Database)
        .returns("Product*")
        .destructor("m12", "~Product")
        .birth_node("n1", ["m1", "m2", "m3"])
        .task_node("n2", ["m4", "m5", "m6", "m7"])
        .task_node("n3", ["m8"])
        .task_node("n4", ["m9"])
        .task_node("n5", ["m10"])
        .task_node("n6", ["m11"])
        .death_node("n7", ["m12"])
        .edge("n1", "n2")
        .edge("n1", "n4")
        .edge("n1", "n7")
        .edge("n2", "n3")
        .edge("n2", "n4")
        .edge("n3", "n4")
        .edge("n3", "n7")
        .edge("n4", "n5")
        .edge("n4", "n6")
        .edge("n5", "n6")
        .edge("n5", "n7")
        .edge("n6", "n7")
        .build()
        .expect("Product spec is valid")
}

/// The use-case scenario of the paper's Figure 2, as node labels:
/// create → obtain data from the database → remove from the database →
/// destroy. (Insertion happened in an earlier session; our TFM reaches the
/// data-access node through `InsertProduct`, so the highlighted path runs
/// n1 → n4 → n5 → n6 → n7.)
pub const FIGURE2_SCENARIO: [&str; 5] = ["n1", "n4", "n5", "n6", "n7"];

/// Registers the standard provider pool (`p1`–`p3`) on an input generator,
/// standing in for the tester's manual completion of `Provider*`
/// parameters.
pub fn register_provider_pool(inputs: &mut concat_driver::InputGenerator) {
    inputs.register_provider(
        "Provider",
        Box::new(|rng| {
            let id = rng.int_in(1, 3);
            Value::Obj(ObjRef::new("Provider", format!("p{id}")))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product() -> Product {
        Product::new(StockDb::new(), BitControl::new_enabled())
    }

    #[test]
    fn constructors_set_attributes() {
        let p = product();
        assert_eq!(
            p.show_attributes().as_list().unwrap()[0],
            Value::Str("unnamed".into())
        );
        let p = Product::with_name("Soap", StockDb::new(), BitControl::new_enabled());
        assert_eq!(
            p.show_attributes().as_list().unwrap()[0],
            Value::Str("Soap".into())
        );
        let p = Product::with_attributes(
            5,
            "Towel",
            2.5,
            Some(ObjRef::new("Provider", "p1")),
            StockDb::new(),
            BitControl::new_enabled(),
        );
        let attrs = p.show_attributes();
        let attrs = attrs.as_list().unwrap();
        assert_eq!(attrs[1], Value::Int(5));
        assert_eq!(attrs[3], Value::Obj(ObjRef::new("Provider", "p1")));
        assert!(p.invariant_test().is_ok());
    }

    #[test]
    fn update_methods_enforce_preconditions() {
        let mut p = product();
        assert!(p.update_qty(10).is_ok());
        assert_eq!(p.update_qty(0).unwrap_err().tag(), "PRECONDITION");
        assert_eq!(p.update_qty(100_000).unwrap_err().tag(), "PRECONDITION");
        assert!(p.update_price(3.25).is_ok());
        assert_eq!(p.update_price(-0.5).unwrap_err().tag(), "PRECONDITION");
        assert!(p.update_name("Soap").is_ok());
        assert_eq!(p.update_name("").unwrap_err().tag(), "PRECONDITION");
    }

    #[test]
    fn database_round_trip() {
        let db = StockDb::new();
        let mut p = Product::with_name("Soap", db.clone(), BitControl::new_enabled());
        p.update_qty(7).unwrap();
        assert_eq!(p.insert_product().unwrap(), Value::Int(1));
        assert!(db.contains("Soap"));
        // Mutate in memory, then reload from the database.
        p.update_qty(99).unwrap();
        p.get_product_data().unwrap();
        assert_eq!(p.show_attributes().as_list().unwrap()[1], Value::Int(7));
        assert_eq!(p.remove_product().unwrap(), Value::Str("Soap".into()));
        assert!(db.is_empty());
    }

    #[test]
    fn database_methods_guard_missing_rows() {
        let mut p = product();
        assert_eq!(p.get_product_data().unwrap_err().tag(), "PRECONDITION");
        assert_eq!(p.remove_product().unwrap_err().tag(), "PRECONDITION");
        p.insert_product().unwrap();
        assert_eq!(p.insert_product().unwrap_err().tag(), "DOMAIN");
    }

    #[test]
    fn dispatch_and_reporter() {
        let mut p = product();
        p.invoke("UpdateName", &[Value::Str("Soap".into())])
            .unwrap();
        p.invoke("UpdateQty", &[Value::Int(3)]).unwrap();
        p.invoke("UpdatePrice", &[Value::Float(1.5)]).unwrap();
        p.invoke("UpdateProv", &[Value::Obj(ObjRef::new("Provider", "p2"))])
            .unwrap();
        p.invoke("InsertProduct", &[]).unwrap();
        let r = p.reporter();
        assert_eq!(r.get("qty"), Some(&Value::Int(3)));
        assert_eq!(r.get("name"), Some(&Value::Str("Soap".into())));
        assert!(r.get("db").is_some());
        p.invoke("UpdateProv", &[Value::Null]).unwrap();
        assert_eq!(p.reporter().get("prov"), Some(&Value::Null));
        assert_eq!(p.invoke("Bogus", &[]).unwrap_err().tag(), "UNKNOWN_METHOD");
    }

    #[test]
    fn invariant_rejects_corrupt_state() {
        let mut p = product();
        // Force bad state through the struct (simulating a fault).
        p.qty = 0;
        assert!(p.invariant_test().is_err());
    }

    #[test]
    fn factory_arities() {
        let f = ProductFactory::new();
        assert!(f
            .construct("Product", &[], BitControl::new_enabled())
            .is_ok());
        assert!(f
            .construct(
                "Product",
                &[Value::Str("Soap".into())],
                BitControl::new_enabled()
            )
            .is_ok());
        assert!(f
            .construct(
                "Product",
                &[
                    Value::Int(2),
                    Value::Str("Soap".into()),
                    Value::Float(1.0),
                    Value::Null
                ],
                BitControl::new_enabled()
            )
            .is_ok());
        assert!(f
            .construct(
                "Product",
                &[Value::Int(1), Value::Int(2)],
                BitControl::new_enabled()
            )
            .is_err());
        assert!(f
            .construct("Widget", &[], BitControl::new_enabled())
            .is_err());
    }

    #[test]
    fn shared_db_factory_shares() {
        let db = StockDb::new();
        let f = ProductFactory::with_shared_db(db.clone());
        let mut a = f
            .construct(
                "Product",
                &[Value::Str("Soap".into())],
                BitControl::new_enabled(),
            )
            .unwrap();
        a.invoke("InsertProduct", &[]).unwrap();
        assert!(db.contains("Soap"));
    }

    #[test]
    fn spec_validates_and_figure2_path_exists() {
        let spec = product_spec();
        assert!(spec.validate().is_empty());
        assert_eq!(spec.tfm.node_count(), 7);
        // The Figure-2 scenario is a real path of the model.
        for pair in FIGURE2_SCENARIO.windows(2) {
            let from = spec.tfm.node_by_label(pair[0]).unwrap();
            let to = spec.tfm.node_by_label(pair[1]).unwrap();
            assert!(
                spec.tfm.successors(from).contains(&to),
                "missing edge {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn tspec_round_trips_figure3_text() {
        let spec = product_spec();
        let text = concat_tspec::print_tspec(&spec);
        assert!(text.contains("Attribute('qty', range, 1, 99999)"));
        assert!(text.contains("Attribute('prov', pointer, 'Provider')"));
        let reparsed = concat_tspec::parse_tspec(&text).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn provider_pool_fills_pointer_domains() {
        let mut inputs = concat_driver::InputGenerator::new(3);
        register_provider_pool(&mut inputs);
        let (v, _) = inputs
            .generate(&Domain::Pointer {
                class_name: "Provider".into(),
            })
            .unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.class_name, "Provider");
        assert!(["p1", "p2", "p3"].contains(&obj.key.as_str()));
    }
}
