//! `CObList`: the paper's base subject — a doubly linked list with the MFC
//! API surface, re-implemented over the [`NodeArena`] substrate.
//!
//! Three methods are *mutation-instrumented* — `AddHead`, `RemoveAt`,
//! `RemoveHead`, the Table-3 targets — performing their own link surgery
//! through [`MutationSwitch`] use sites, so the interface mutation
//! operators can corrupt indices, counters and link words exactly the way
//! the paper's hand-inserted C++ mutants did. The remaining methods are
//! conventional.
//!
//! Like the MFC original, the class "already contains assertions" (paper
//! §4): preconditions on empty-list access and a structural class
//! invariant (`chain_consistent`).

use crate::arena::{BadLink, NodeArena, NIL};
use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_mutation::{ClassInventory, ClonableFactory, MethodInventory, MutationSwitch, VarEnv};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat_tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};

/// Iteration budget per instrumented loop: a mutated loop bound must hit a
/// deterministic watchdog instead of hanging the analysis.
pub(crate) const WATCHDOG: u32 = 4096;

/// Traversal budget for invariant/reporter walks (well above any list the
/// generated transactions build).
pub(crate) const WALK_BUDGET: usize = 1024;

fn bad_link(method: &str, e: BadLink) -> TestException {
    TestException::domain(method, e.to_string())
}

/// The `CObList` component: MFC-style doubly linked list of [`Value`]s.
#[derive(Debug)]
pub struct CObList {
    arena: NodeArena,
    /// `m_pNodeHead` — arena index of the first node, or `-1`.
    head: i64,
    /// `m_pNodeTail` — arena index of the last node, or `-1`.
    tail: i64,
    /// `m_nCount` — claimed element count.
    count: i64,
    /// `m_nBlockSize` — MFC's allocation granularity hint. Functionally
    /// inert here (the arena allocates node-by-node) but kept as a class
    /// attribute so the `E(R2)` operator set of the instrumented methods
    /// is non-empty, as in the paper's subject.
    block_size: i64,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl CObList {
    /// Class name used in specs and dispatch.
    pub const CLASS: &'static str = "CObList";

    /// Creates an empty list wired to the given BIT control and mutation
    /// switch, with the default block size of 10 (MFC's default).
    pub fn new(ctl: BitControl, switch: MutationSwitch) -> Self {
        Self::with_block_size(10, ctl, switch)
    }

    /// Creates an empty list with an explicit `m_nBlockSize` (the MFC
    /// `CObList(int nBlockSize)` constructor).
    pub fn with_block_size(block_size: i64, ctl: BitControl, switch: MutationSwitch) -> Self {
        CObList {
            arena: NodeArena::new(),
            head: NIL,
            tail: NIL,
            count: 0,
            block_size,
            ctl,
            switch,
        }
    }

    /// `m_nBlockSize`, for subclass instrumentation envs.
    pub fn block_size(&self) -> i64 {
        self.block_size
    }

    fn globals_env(&self) -> VarEnv {
        VarEnv::new()
            .bind("m_nCount", self.count)
            .bind("m_pNodeHead", self.head)
            .bind("m_pNodeTail", self.tail)
            .bind("m_nBlockSize", self.block_size)
    }

    /// `m_nCount` as seen by subclasses and reporters.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// True when the list is empty.
    pub fn is_empty_list(&self) -> bool {
        self.count == 0
    }

    /// Head link (`m_pNodeHead`), for subclass instrumentation envs.
    pub fn head_link(&self) -> i64 {
        self.head
    }

    /// Tail link (`m_pNodeTail`), for subclass instrumentation envs.
    pub fn tail_link(&self) -> i64 {
        self.tail
    }

    /// Values front-to-back, or `None` when the chain is corrupt.
    pub fn values(&self) -> Option<Vec<Value>> {
        self.arena.collect_forward(self.head, WALK_BUDGET)
    }

    /// Node indices front-to-back, or an error when the chain is corrupt.
    ///
    /// # Errors
    ///
    /// [`TestException::Domain`] when a link is invalid or the walk exceeds
    /// its budget.
    pub fn node_indices(&self, method: &str) -> Result<Vec<i64>, TestException> {
        let mut out = Vec::new();
        let mut cur = self.head;
        let mut steps = 0usize;
        while cur != NIL {
            if steps >= WALK_BUDGET {
                return Err(TestException::domain(
                    method,
                    "corrupt chain: walk budget exceeded",
                ));
            }
            out.push(cur);
            cur = self.arena.next(cur).map_err(|e| bad_link(method, e))?;
            steps += 1;
        }
        Ok(out)
    }

    /// Reads the value stored at an arena node.
    ///
    /// # Errors
    ///
    /// [`TestException::Domain`] on an invalid link.
    pub fn node_value(&self, method: &str, node: i64) -> Result<Value, TestException> {
        Ok(self
            .arena
            .value(node)
            .map_err(|e| bad_link(method, e))?
            .clone())
    }

    /// Overwrites the value stored at an arena node.
    ///
    /// # Errors
    ///
    /// [`TestException::Domain`] on an invalid link.
    pub fn set_node_value(
        &mut self,
        method: &str,
        node: i64,
        value: Value,
    ) -> Result<(), TestException> {
        self.arena
            .set_value(node, value)
            .map_err(|e| bad_link(method, e))
    }

    // ------------------------------------------------------------------
    // Instrumented methods (Table 3 targets).
    // ------------------------------------------------------------------

    /// `AddHead(v)` — instrumented link surgery at the front.
    ///
    /// Locals: `pNewNode`, `pOldHead`. Use sites 0–3.
    ///
    /// # Errors
    ///
    /// [`TestException::Domain`] when injected faults corrupt a link that
    /// the surgery itself must dereference.
    pub fn add_head(&mut self, value: Value) -> Result<(), TestException> {
        const M: &str = "AddHead";
        let p_new_node = self.arena.alloc(value);
        let p_old_head = self.head;
        let env = self
            .globals_env()
            .bind("pNewNode", p_new_node)
            .bind("pOldHead", p_old_head);
        // Site 0: the new node's next link ← pOldHead.
        let next_link = self.switch.read_int(M, 0, "pOldHead", p_old_head, &env);
        self.arena
            .set_next(p_new_node, next_link)
            .map_err(|e| bad_link(M, e))?;
        if p_old_head != NIL {
            // Site 1: the old head's prev link ← pNewNode.
            let prev_link = self.switch.read_int(M, 1, "pNewNode", p_new_node, &env);
            self.arena
                .set_prev(p_old_head, prev_link)
                .map_err(|e| bad_link(M, e))?;
        } else {
            // Site 2: the tail update when the list was empty.
            self.tail = self.switch.read_int(M, 2, "pNewNode", p_new_node, &env);
        }
        // Site 3: the head update.
        self.head = self.switch.read_int(M, 3, "pNewNode", p_new_node, &env);
        self.count += 1;
        Ok(())
    }

    /// `RemoveHead()` — instrumented removal at the front.
    ///
    /// Locals: `pOldHead`, `pNext`, `nNewCount`. Use sites 0–2.
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list, or
    /// [`TestException::Domain`] when injected faults corrupt the links.
    pub fn remove_head(&mut self) -> InvokeResult {
        const M: &str = "RemoveHead";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, self.count > 0);
        let p_old_head = self.head;
        let p_next = self.arena.next(p_old_head).map_err(|e| bad_link(M, e))?;
        let n_new_count = self.count - 1;
        let env = self
            .globals_env()
            .bind("pOldHead", p_old_head)
            .bind("pNext", p_next)
            .bind("nNewCount", n_new_count);
        // Site 0: which node to free.
        let to_free = self.switch.read_int(M, 0, "pOldHead", p_old_head, &env);
        let value = self.arena.free(to_free).map_err(|e| bad_link(M, e))?;
        // Site 1: the new head.
        self.head = self.switch.read_int(M, 1, "pNext", p_next, &env);
        if self.head == NIL {
            self.tail = NIL;
        } else {
            self.arena
                .set_prev(self.head, NIL)
                .map_err(|e| bad_link(M, e))?;
        }
        // Site 2: the count update.
        self.count = self.switch.read_int(M, 2, "nNewCount", n_new_count, &env);
        Ok(value)
    }

    /// `RemoveAt(index)` — instrumented traversal + unlink.
    ///
    /// Locals: `i`, `pCur`, `pPrev`, `pNext`. Use sites 0–4.
    ///
    /// # Errors
    ///
    /// A precondition violation on a bad index, or
    /// [`TestException::Domain`] when injected faults corrupt the
    /// traversal or the unlinking.
    pub fn remove_at(&mut self, index: i64) -> InvokeResult {
        const M: &str = "RemoveAt";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, index >= 0 && index < self.count);
        let mut p_cur = self.head;
        let mut i = 0i64;
        let mut fuel = WATCHDOG;
        loop {
            let env = self.globals_env().bind("i", i).bind("pCur", p_cur);
            // Site 0: the loop comparison on i.
            if self.switch.read_int(M, 0, "i", i, &env) >= index {
                break;
            }
            // Site 1: the traversal read of pCur.
            let step_from = self.switch.read_int(M, 1, "pCur", p_cur, &env);
            p_cur = self.arena.next(step_from).map_err(|e| bad_link(M, e))?;
            if p_cur == NIL {
                return Err(TestException::domain(M, "ran off the end of the list"));
            }
            i += 1;
            fuel -= 1;
            if fuel == 0 {
                return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
            }
        }
        let p_prev = self.arena.prev(p_cur).map_err(|e| bad_link(M, e))?;
        let p_next = self.arena.next(p_cur).map_err(|e| bad_link(M, e))?;
        let env = self
            .globals_env()
            .bind("i", i)
            .bind("pCur", p_cur)
            .bind("pPrev", p_prev)
            .bind("pNext", p_next);
        // Site 2: the prev side of the unlink.
        let unlink_prev = self.switch.read_int(M, 2, "pPrev", p_prev, &env);
        // Site 3: the next side of the unlink.
        let unlink_next = self.switch.read_int(M, 3, "pNext", p_next, &env);
        if unlink_prev == NIL {
            self.head = unlink_next;
        } else {
            self.arena
                .set_next(unlink_prev, unlink_next)
                .map_err(|e| bad_link(M, e))?;
        }
        if unlink_next == NIL {
            self.tail = unlink_prev;
        } else {
            self.arena
                .set_prev(unlink_next, unlink_prev)
                .map_err(|e| bad_link(M, e))?;
        }
        // Site 4: which node to free.
        let to_free = self.switch.read_int(M, 4, "pCur", p_cur, &env);
        let value = self.arena.free(to_free).map_err(|e| bad_link(M, e))?;
        self.count -= 1;
        Ok(value)
    }

    // ------------------------------------------------------------------
    // Conventional methods.
    // ------------------------------------------------------------------

    /// `AddTail(v)`.
    pub fn add_tail(&mut self, value: Value) {
        let node = self.arena.alloc(value);
        if self.tail == NIL {
            self.head = node;
        } else {
            let _ = self.arena.set_next(self.tail, node);
            let _ = self.arena.set_prev(node, self.tail);
        }
        self.tail = node;
        self.count += 1;
    }

    /// `RemoveTail()`.
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list; domain errors on a
    /// corrupt chain.
    pub fn remove_tail(&mut self) -> InvokeResult {
        const M: &str = "RemoveTail";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, self.count > 0);
        let old_tail = self.tail;
        let prev = self.arena.prev(old_tail).map_err(|e| bad_link(M, e))?;
        let value = self.arena.free(old_tail).map_err(|e| bad_link(M, e))?;
        self.tail = prev;
        if prev == NIL {
            self.head = NIL;
        } else {
            self.arena.set_next(prev, NIL).map_err(|e| bad_link(M, e))?;
        }
        self.count -= 1;
        Ok(value)
    }

    /// `GetHead()`.
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list.
    pub fn get_head(&self) -> InvokeResult {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "GetHead", self.count > 0);
        self.node_value("GetHead", self.head)
    }

    /// `GetTail()`.
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list.
    pub fn get_tail(&self) -> InvokeResult {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "GetTail", self.count > 0);
        self.node_value("GetTail", self.tail)
    }

    fn node_at(&self, method: &str, index: i64) -> Result<i64, TestException> {
        let nodes = self.node_indices(method)?;
        usize::try_from(index)
            .ok()
            .and_then(|i| nodes.get(i).copied())
            .ok_or_else(|| TestException::domain(method, format!("index {index} out of range")))
    }

    /// `GetAt(index)`.
    ///
    /// # Errors
    ///
    /// A precondition violation on a bad index.
    pub fn get_at(&self, index: i64) -> InvokeResult {
        const M: &str = "GetAt";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, index >= 0 && index < self.count);
        let node = self.node_at(M, index)?;
        self.node_value(M, node)
    }

    /// `SetAt(index, v)`.
    ///
    /// # Errors
    ///
    /// A precondition violation on a bad index.
    pub fn set_at(&mut self, index: i64, value: Value) -> Result<(), TestException> {
        const M: &str = "SetAt";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, index >= 0 && index < self.count);
        let node = self.node_at(M, index)?;
        self.set_node_value(M, node, value)
    }

    /// `InsertAfter(index, v)`.
    ///
    /// # Errors
    ///
    /// A precondition violation on a bad index; domain errors on a corrupt
    /// chain.
    pub fn insert_after(&mut self, index: i64, value: Value) -> Result<(), TestException> {
        const M: &str = "InsertAfter";
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, M, index >= 0 && index < self.count);
        let node = self.node_at(M, index)?;
        let next = self.arena.next(node).map_err(|e| bad_link(M, e))?;
        let fresh = self.arena.alloc(value);
        self.arena
            .set_prev(fresh, node)
            .map_err(|e| bad_link(M, e))?;
        self.arena
            .set_next(fresh, next)
            .map_err(|e| bad_link(M, e))?;
        self.arena
            .set_next(node, fresh)
            .map_err(|e| bad_link(M, e))?;
        if next == NIL {
            self.tail = fresh;
        } else {
            self.arena
                .set_prev(next, fresh)
                .map_err(|e| bad_link(M, e))?;
        }
        self.count += 1;
        Ok(())
    }

    /// `Find(v)` — index of the first occurrence, or `-1`.
    ///
    /// # Errors
    ///
    /// Domain errors on a corrupt chain.
    pub fn find(&self, value: &Value) -> Result<i64, TestException> {
        let values = self
            .values()
            .ok_or_else(|| TestException::domain("Find", "corrupt chain"))?;
        Ok(values
            .iter()
            .position(|v| v == value)
            .map_or(-1, |i| i as i64))
    }

    /// `RemoveAll()`.
    pub fn remove_all(&mut self) {
        self.arena.clear();
        self.head = NIL;
        self.tail = NIL;
        self.count = 0;
    }
}

impl Component for CObList {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec![
            "AddHead",
            "AddTail",
            "RemoveHead",
            "RemoveTail",
            "GetHead",
            "GetTail",
            "GetAt",
            "SetAt",
            "RemoveAt",
            "InsertAfter",
            "Find",
            "GetCount",
            "IsEmpty",
            "RemoveAll",
            "~CObList",
        ]
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "AddHead" => {
                args::expect_arity(method, a, 1)?;
                self.add_head(a[0].clone())?;
                Ok(Value::Null)
            }
            "AddTail" => {
                args::expect_arity(method, a, 1)?;
                self.add_tail(a[0].clone());
                Ok(Value::Null)
            }
            "RemoveHead" => {
                args::expect_arity(method, a, 0)?;
                self.remove_head()
            }
            "RemoveTail" => {
                args::expect_arity(method, a, 0)?;
                self.remove_tail()
            }
            "GetHead" => {
                args::expect_arity(method, a, 0)?;
                self.get_head()
            }
            "GetTail" => {
                args::expect_arity(method, a, 0)?;
                self.get_tail()
            }
            "GetAt" => self.get_at(args::int(method, a, 0)?),
            "SetAt" => {
                args::expect_arity(method, a, 2)?;
                self.set_at(args::int(method, a, 0)?, a[1].clone())?;
                Ok(Value::Null)
            }
            "RemoveAt" => self.remove_at(args::int(method, a, 0)?),
            "InsertAfter" => {
                args::expect_arity(method, a, 2)?;
                self.insert_after(args::int(method, a, 0)?, a[1].clone())?;
                Ok(Value::Null)
            }
            "Find" => {
                args::expect_arity(method, a, 1)?;
                Ok(Value::Int(self.find(&a[0])?))
            }
            "GetCount" => Ok(Value::Int(self.count)),
            "IsEmpty" => Ok(Value::Bool(self.count == 0)),
            "RemoveAll" => {
                self.remove_all();
                Ok(Value::Null)
            }
            "~CObList" => {
                self.remove_all();
                Ok(Value::Null)
            }
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for CObList {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            Self::CLASS,
            "",
            "chain(head, tail, count) is consistent",
            self.arena
                .chain_consistent(self.head, self.tail, self.count),
        )
    }

    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("m_nCount", Value::Int(self.count));
        match self.values() {
            Some(values) => {
                r.set("elements", Value::List(values));
            }
            None => {
                r.set("elements", Value::Str("<corrupt chain>".into()));
            }
        }
        r
    }
}

/// Factory for [`CObList`] instances sharing one [`MutationSwitch`].
#[derive(Debug, Clone, Default)]
pub struct CObListFactory {
    switch: MutationSwitch,
}

impl CObListFactory {
    /// Creates a factory wired to `switch`.
    pub fn new(switch: MutationSwitch) -> Self {
        CObListFactory { switch }
    }

    /// The shared mutation switch.
    pub fn switch(&self) -> &MutationSwitch {
        &self.switch
    }
}

impl ComponentFactory for CObListFactory {
    fn class_name(&self) -> &str {
        CObList::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "CObList" => match a.len() {
                0 => Ok(Box::new(CObList::new(ctl, self.switch.clone()))),
                1 => Ok(Box::new(CObList::with_block_size(
                    args::int(constructor, a, 0)?,
                    ctl,
                    self.switch.clone(),
                ))),
                got => Err(TestException::ArityMismatch {
                    method: constructor.to_owned(),
                    expected: 1,
                    got,
                }),
            },
            other => Err(unknown_method(CObList::CLASS, other)),
        }
    }
}

impl ClonableFactory for CObListFactory {
    fn class_name(&self) -> &str {
        CObList::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(CObListFactory::new(switch.clone()))
    }
}

/// The t-spec of `CObList`: interface description plus the transaction
/// flow model the driver generator covers.
pub fn coblist_spec() -> ClassSpec {
    let value = || Domain::int_range(-99, 99);
    let index = || Domain::int_range(0, 1);
    ClassSpecBuilder::new(CObList::CLASS)
        .source_file("coblist.cpp")
        .attribute("m_nCount", Domain::int_range(0, 99_999))
        .attribute(
            "m_pNodeHead",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute(
            "m_pNodeTail",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute("m_nBlockSize", Domain::int_range(1, 64))
        .constructor("m1", "CObList")
        .constructor("m1b", "CObList")
        .param("nBlockSize", Domain::int_range(1, 64))
        .method("m2", "AddHead", MethodCategory::Update)
        .param("newElement", value())
        .method("m3", "AddTail", MethodCategory::Update)
        .param("newElement", value())
        .method("m4", "RemoveHead", MethodCategory::Update)
        .returns("Value")
        .method("m5", "RemoveTail", MethodCategory::Update)
        .returns("Value")
        .method("m6", "GetHead", MethodCategory::Access)
        .returns("Value")
        .method("m7", "GetTail", MethodCategory::Access)
        .returns("Value")
        .method("m8", "GetAt", MethodCategory::Access)
        .param("index", index())
        .returns("Value")
        .method("m9", "SetAt", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m10", "InsertAfter", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m11", "Find", MethodCategory::Access)
        .param("searchValue", value())
        .returns("int")
        .method("m12", "RemoveAt", MethodCategory::Update)
        .param("index", index())
        .returns("Value")
        .method("m13", "GetCount", MethodCategory::Access)
        .returns("int")
        .method("m14", "IsEmpty", MethodCategory::Access)
        .returns("bool")
        .method("m15", "RemoveAll", MethodCategory::Update)
        .destructor("m16", "~CObList")
        .birth_node("n1", ["m1", "m1b"])
        .task_node("n2", ["m2", "m3"])
        .task_node("n3", ["m2", "m3"])
        .task_node("n4", ["m6", "m7"])
        .task_node("n5", ["m8", "m11"])
        .task_node("n6", ["m9", "m10"])
        .task_node("n7", ["m4", "m5", "m12"])
        .task_node("n8", ["m13", "m14"])
        .task_node("n9", ["m15"])
        .death_node("n10", ["m16"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n3", "n4")
        .edge("n3", "n5")
        .edge("n4", "n5")
        .edge("n4", "n7")
        .edge("n5", "n6")
        .edge("n6", "n7")
        .edge("n6", "n8")
        .edge("n7", "n8")
        .edge("n7", "n9")
        .edge("n8", "n9")
        .edge("n8", "n10")
        .edge("n9", "n10")
        .build()
        .expect("CObList spec is valid")
}

/// The mutation inventory of `CObList`'s instrumented methods.
pub fn coblist_inventory() -> ClassInventory {
    ClassInventory::new(CObList::CLASS)
        .globals(["m_nCount", "m_pNodeHead", "m_pNodeTail", "m_nBlockSize"])
        .method(
            MethodInventory::new("AddHead")
                .locals(["pNewNode", "pOldHead"])
                .globals_used(["m_nCount", "m_pNodeHead", "m_pNodeTail"])
                .site(0, "pOldHead", "next link of the new node")
                .site(1, "pNewNode", "prev link of the old head")
                .site(2, "pNewNode", "tail update when list was empty")
                .site(3, "pNewNode", "head update"),
        )
        .method(
            MethodInventory::new("RemoveHead")
                .locals(["pOldHead", "pNext", "nNewCount"])
                .globals_used(["m_nCount", "m_pNodeHead", "m_pNodeTail"])
                .site(0, "pOldHead", "node to free")
                .site(1, "pNext", "new head")
                .site(2, "nNewCount", "count update"),
        )
        .method(
            MethodInventory::new("RemoveAt")
                .locals(["i", "pCur", "pPrev", "pNext"])
                .globals_used(["m_nCount", "m_pNodeHead", "m_pNodeTail"])
                .site(0, "i", "traversal loop comparison")
                .site(1, "pCur", "traversal step")
                .site(2, "pPrev", "prev side of unlink")
                .site(3, "pNext", "next side of unlink")
                .site(4, "pCur", "node to free"),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_mutation::{FaultPlan, Replacement};

    fn list() -> CObList {
        CObList::new(BitControl::new_enabled(), MutationSwitch::new())
    }

    #[test]
    fn add_and_remove_head_tail() {
        let mut l = list();
        l.add_head(Value::Int(2)).unwrap();
        l.add_head(Value::Int(1)).unwrap();
        l.add_tail(Value::Int(3));
        assert_eq!(
            l.values().unwrap(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(l.remove_head().unwrap(), Value::Int(1));
        assert_eq!(l.remove_tail().unwrap(), Value::Int(3));
        assert_eq!(l.count(), 1);
        assert!(l.invariant_test().is_ok());
    }

    #[test]
    fn get_set_insert_find() {
        let mut l = list();
        l.add_tail(Value::Int(10));
        l.add_tail(Value::Int(20));
        assert_eq!(l.get_at(1).unwrap(), Value::Int(20));
        l.set_at(0, Value::Int(11)).unwrap();
        assert_eq!(l.get_head().unwrap(), Value::Int(11));
        l.insert_after(0, Value::Int(15)).unwrap();
        assert_eq!(
            l.values().unwrap(),
            vec![Value::Int(11), Value::Int(15), Value::Int(20)]
        );
        assert_eq!(l.find(&Value::Int(15)).unwrap(), 1);
        assert_eq!(l.find(&Value::Int(999)).unwrap(), -1);
        assert_eq!(l.get_tail().unwrap(), Value::Int(20));
        assert!(l.invariant_test().is_ok());
    }

    #[test]
    fn remove_at_each_position() {
        for pos in 0..3 {
            let mut l = list();
            for v in [1, 2, 3] {
                l.add_tail(Value::Int(v));
            }
            let removed = l.remove_at(pos).unwrap();
            assert_eq!(removed, Value::Int(pos + 1));
            assert_eq!(l.count(), 2);
            assert!(l.invariant_test().is_ok(), "position {pos}");
        }
    }

    #[test]
    fn preconditions_guard_empty_and_bad_index() {
        let mut l = list();
        assert_eq!(l.remove_head().unwrap_err().tag(), "PRECONDITION");
        assert_eq!(l.get_head().unwrap_err().tag(), "PRECONDITION");
        assert_eq!(l.remove_at(0).unwrap_err().tag(), "PRECONDITION");
        l.add_tail(Value::Int(1));
        assert_eq!(l.get_at(5).unwrap_err().tag(), "PRECONDITION");
        assert_eq!(l.remove_at(-1).unwrap_err().tag(), "PRECONDITION");
    }

    #[test]
    fn preconditions_silent_without_bit() {
        // With BIT off (deployment mode) the guard does not fire; the
        // method then fails on the broken structure instead.
        let mut l = CObList::new(BitControl::new(), MutationSwitch::new());
        let err = l.remove_head().unwrap_err();
        assert_eq!(err.tag(), "DOMAIN");
    }

    #[test]
    fn remove_all_and_destructor_reset() {
        let mut l = list();
        l.add_tail(Value::Int(1));
        l.add_tail(Value::Int(2));
        l.remove_all();
        assert!(l.is_empty_list());
        assert!(l.invariant_test().is_ok());
        assert_eq!(l.invoke("IsEmpty", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn dispatch_covers_all_methods() {
        let mut l = list();
        for (m, a) in [
            ("AddHead", vec![Value::Int(1)]),
            ("AddTail", vec![Value::Int(2)]),
            ("GetHead", vec![]),
            ("GetTail", vec![]),
            ("GetAt", vec![Value::Int(0)]),
            ("SetAt", vec![Value::Int(0), Value::Int(9)]),
            ("InsertAfter", vec![Value::Int(0), Value::Int(5)]),
            ("Find", vec![Value::Int(5)]),
            ("GetCount", vec![]),
            ("IsEmpty", vec![]),
            ("RemoveAt", vec![Value::Int(0)]),
            ("RemoveHead", vec![]),
            ("RemoveTail", vec![]),
            ("RemoveAll", vec![]),
            ("~CObList", vec![]),
        ] {
            assert!(l.invoke(m, &a).is_ok(), "method {m}");
        }
        assert_eq!(l.invoke("Bogus", &[]).unwrap_err().tag(), "UNKNOWN_METHOD");
        assert!(l.has_method("AddHead"));
    }

    #[test]
    fn reporter_shows_elements_and_count() {
        let mut l = list();
        l.add_tail(Value::Int(7));
        let r = l.reporter();
        assert_eq!(r.get("m_nCount"), Some(&Value::Int(1)));
        assert_eq!(r.get("elements"), Some(&Value::List(vec![Value::Int(7)])));
    }

    #[test]
    fn fault_in_add_head_breaks_invariant() {
        let switch = MutationSwitch::new();
        let mut l = CObList::new(BitControl::new_enabled(), switch.clone());
        l.add_head(Value::Int(1)).unwrap();
        // Corrupt the head-update site: head ← pOldHead instead of pNewNode.
        switch.arm(FaultPlan {
            method: "AddHead".into(),
            site: 3,
            replacement: Replacement::Var("pOldHead".into()),
        });
        l.add_head(Value::Int(2)).unwrap();
        assert!(
            l.invariant_test().is_err(),
            "corrupted chain must violate the invariant"
        );
    }

    #[test]
    fn fault_in_remove_head_count_is_caught() {
        let switch = MutationSwitch::new();
        let mut l = CObList::new(BitControl::new_enabled(), switch.clone());
        l.add_tail(Value::Int(1));
        l.add_tail(Value::Int(2));
        switch.arm(FaultPlan {
            method: "RemoveHead".into(),
            site: 2,
            replacement: Replacement::Var("m_nCount".into()),
        });
        let _ = l.remove_head().unwrap();
        // count was set to the *old* count: invariant mismatch.
        assert!(l.invariant_test().is_err());
    }

    #[test]
    fn fault_in_remove_at_traversal_changes_output() {
        let switch = MutationSwitch::new();
        let mut l = CObList::new(BitControl::new_enabled(), switch.clone());
        for v in [1, 2, 3] {
            l.add_tail(Value::Int(v));
        }
        // Freeze the loop counter at MAXINT: comparison is immediately
        // true, so RemoveAt(1) removes element 0 instead.
        switch.arm(FaultPlan {
            method: "RemoveAt".into(),
            site: 0,
            replacement: Replacement::Const(concat_mutation::ReqConst::MaxInt),
        });
        assert_eq!(l.remove_at(1).unwrap(), Value::Int(1));
    }

    #[test]
    fn watchdog_stops_mutated_infinite_loops() {
        let switch = MutationSwitch::new();
        let mut l = CObList::new(BitControl::new_enabled(), switch.clone());
        for v in 0..10 {
            l.add_tail(Value::Int(v));
        }
        // Freeze the loop counter at 0 with a target index > 0: the loop
        // walks off the chain and errors (or the watchdog fires).
        switch.arm(FaultPlan {
            method: "RemoveAt".into(),
            site: 0,
            replacement: Replacement::Const(concat_mutation::ReqConst::Zero),
        });
        let err = l.remove_at(5).unwrap_err();
        assert_eq!(err.tag(), "DOMAIN");
    }

    #[test]
    fn spec_validates_and_covers_every_method() {
        let spec = coblist_spec();
        assert!(spec.validate().is_empty());
        assert_eq!(spec.methods.len(), 17);
        assert_eq!(spec.tfm.node_count(), 10);
    }

    #[test]
    fn inventory_validates() {
        assert!(coblist_inventory().validate().is_empty());
    }

    #[test]
    fn factory_constructs_and_rejects() {
        let f = CObListFactory::default();
        let c = f
            .construct("CObList", &[], BitControl::new_enabled())
            .unwrap();
        assert_eq!(c.class_name(), "CObList");
        assert!(f.construct("Nope", &[], BitControl::new_enabled()).is_err());
        assert!(f
            .construct("CObList", &[Value::Int(8)], BitControl::new_enabled())
            .is_ok());
        assert!(f
            .construct(
                "CObList",
                &[Value::Int(8), Value::Int(9)],
                BitControl::new_enabled()
            )
            .is_err());
        let _ = f.switch();
    }
}
