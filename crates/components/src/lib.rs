//! # concat-components
//!
//! The instrumented subject components of the `concat-rs` reproduction of
//! *"Constructing Self-Testable Software Components"* (Martins, Toyota &
//! Yanagawa, DSN 2001): re-implementations of the classes the paper's
//! experiments and examples use, each packaged as a *self-testable
//! component* — implementation + t-spec + built-in test capabilities +
//! mutation inventory.
//!
//! * [`CObList`] — the MFC-style doubly linked list (Table 3 subject);
//! * [`CSortableObList`] — the derived sortable list (Table 2 subject);
//! * [`Product`] / [`StockDb`] — the warehouse example of Figures 1–3;
//! * [`BoundedStack`] — a small contract-rich component for quickstarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod oblist;
mod product;
mod sortable;
mod stack;
mod stockdb;
mod typed;

pub use arena::{BadLink, NodeArena, Slot, NIL};
pub use oblist::{coblist_inventory, coblist_spec, CObList, CObListFactory};
pub use product::{
    product_spec, register_provider_pool, Product, ProductFactory, FIGURE2_SCENARIO,
};
pub use sortable::{
    sortable_inheritance_map, sortable_inventory, sortable_spec, CSortableObList,
    CSortableObListFactory,
};
pub use stack::{bounded_stack_spec, BoundedStack, BoundedStackFactory};
pub use stockdb::{ProductRow, StockDb, StockDbError};
pub use typed::{typed_inheritance_map, typed_spec, CTypedObList, CTypedObListFactory};
