//! `BoundedStack`: a small contract-rich component used by quickstarts.
//!
//! Not part of the paper's experiments — it exists so the README and the
//! `quickstart` example can show the *producer* workflow (write a class,
//! add BIT, write a t-spec) on something smaller than the list subjects.

use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat_tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};

/// A LIFO stack with a fixed capacity and full contracts.
#[derive(Debug)]
pub struct BoundedStack {
    items: Vec<Value>,
    capacity: usize,
    ctl: BitControl,
}

impl BoundedStack {
    /// Class name used in specs and dispatch.
    pub const CLASS: &'static str = "BoundedStack";

    /// Creates an empty stack with the given capacity.
    pub fn new(capacity: usize, ctl: BitControl) -> Self {
        BoundedStack {
            items: Vec::with_capacity(capacity),
            capacity,
            ctl,
        }
    }

    /// `Push(v)`.
    ///
    /// # Errors
    ///
    /// A precondition violation when the stack is full.
    pub fn push(&mut self, v: Value) -> Result<(), TestException> {
        concat_bit::pre_condition!(
            &self.ctl,
            Self::CLASS,
            "Push",
            self.items.len() < self.capacity
        );
        self.items.push(v);
        Ok(())
    }

    /// `Pop()`.
    ///
    /// # Errors
    ///
    /// A precondition violation when the stack is empty.
    pub fn pop(&mut self) -> InvokeResult {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "Pop", !self.items.is_empty());
        Ok(self.items.pop().expect("guarded by precondition"))
    }

    /// `Top()`.
    ///
    /// # Errors
    ///
    /// A precondition violation when the stack is empty.
    pub fn top(&self) -> InvokeResult {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, "Top", !self.items.is_empty());
        Ok(self.items.last().expect("guarded by precondition").clone())
    }

    /// `Size()`.
    pub fn size(&self) -> i64 {
        self.items.len() as i64
    }
}

impl Component for BoundedStack {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Push", "Pop", "Top", "Size", "IsEmpty", "~BoundedStack"]
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "Push" => {
                args::expect_arity(method, a, 1)?;
                self.push(a[0].clone())?;
                Ok(Value::Null)
            }
            "Pop" => {
                args::expect_arity(method, a, 0)?;
                self.pop()
            }
            "Top" => {
                args::expect_arity(method, a, 0)?;
                self.top()
            }
            "Size" => Ok(Value::Int(self.size())),
            "IsEmpty" => Ok(Value::Bool(self.items.is_empty())),
            "~BoundedStack" => {
                self.items.clear();
                Ok(Value::Null)
            }
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for BoundedStack {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            Self::CLASS,
            "",
            "size <= capacity",
            self.items.len() <= self.capacity,
        )
    }

    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("size", Value::Int(self.size()));
        r.set("capacity", Value::Int(self.capacity as i64));
        r.set("items", Value::List(self.items.clone()));
        r
    }
}

/// Factory for [`BoundedStack`] instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundedStackFactory;

impl ComponentFactory for BoundedStackFactory {
    fn class_name(&self) -> &str {
        BoundedStack::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "BoundedStack" => {
                let capacity = args::int(constructor, a, 0)?;
                if capacity < 1 {
                    return Err(TestException::domain(constructor, "capacity must be >= 1"));
                }
                Ok(Box::new(BoundedStack::new(capacity as usize, ctl)))
            }
            other => Err(unknown_method(BoundedStack::CLASS, other)),
        }
    }
}

/// The t-spec of `BoundedStack`.
pub fn bounded_stack_spec() -> ClassSpec {
    ClassSpecBuilder::new(BoundedStack::CLASS)
        .attribute("size", Domain::int_range(0, 8))
        .constructor("m1", "BoundedStack")
        .param("capacity", Domain::int_range(2, 8))
        .method("m2", "Push", MethodCategory::Update)
        .param("v", Domain::int_range(-50, 50))
        .method("m3", "Pop", MethodCategory::Update)
        .returns("Value")
        .method("m4", "Top", MethodCategory::Access)
        .returns("Value")
        .method("m5", "Size", MethodCategory::Access)
        .returns("int")
        .method("m6", "IsEmpty", MethodCategory::Access)
        .returns("bool")
        .destructor("m7", "~BoundedStack")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2"])
        .task_node("n3", ["m2"])
        .task_node("n4", ["m4", "m5", "m6"])
        .task_node("n5", ["m3"])
        .death_node("n6", ["m7"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n2", "n4")
        .edge("n3", "n4")
        .edge("n3", "n5")
        .edge("n4", "n5")
        .edge("n4", "n6")
        .edge("n5", "n6")
        .build()
        .expect("BoundedStack spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(cap: usize) -> BoundedStack {
        BoundedStack::new(cap, BitControl::new_enabled())
    }

    #[test]
    fn lifo_behaviour() {
        let mut s = stack(3);
        s.push(Value::Int(1)).unwrap();
        s.push(Value::Int(2)).unwrap();
        assert_eq!(s.top().unwrap(), Value::Int(2));
        assert_eq!(s.pop().unwrap(), Value::Int(2));
        assert_eq!(s.pop().unwrap(), Value::Int(1));
        assert_eq!(s.size(), 0);
    }

    #[test]
    fn contracts_fire() {
        let mut s = stack(1);
        s.push(Value::Int(1)).unwrap();
        assert_eq!(s.push(Value::Int(2)).unwrap_err().tag(), "PRECONDITION");
        s.pop().unwrap();
        assert_eq!(s.pop().unwrap_err().tag(), "PRECONDITION");
        assert_eq!(s.top().unwrap_err().tag(), "PRECONDITION");
    }

    #[test]
    fn dispatch_and_reporter() {
        let mut s = stack(4);
        s.invoke("Push", &[Value::Int(7)]).unwrap();
        assert_eq!(s.invoke("Size", &[]).unwrap(), Value::Int(1));
        assert_eq!(s.invoke("IsEmpty", &[]).unwrap(), Value::Bool(false));
        assert_eq!(s.invoke("Top", &[]).unwrap(), Value::Int(7));
        let r = s.reporter();
        assert_eq!(r.get("size"), Some(&Value::Int(1)));
        assert_eq!(r.get("items"), Some(&Value::List(vec![Value::Int(7)])));
        s.invoke("~BoundedStack", &[]).unwrap();
        assert_eq!(s.invoke("IsEmpty", &[]).unwrap(), Value::Bool(true));
        assert!(s.invoke("Nope", &[]).is_err());
        assert!(s.invariant_test().is_ok());
    }

    #[test]
    fn factory_validates_capacity() {
        let f = BoundedStackFactory;
        assert!(f
            .construct("BoundedStack", &[Value::Int(3)], BitControl::new_enabled())
            .is_ok());
        assert!(f
            .construct("BoundedStack", &[Value::Int(0)], BitControl::new_enabled())
            .is_err());
        assert!(f
            .construct("Stack", &[], BitControl::new_enabled())
            .is_err());
    }

    #[test]
    fn spec_validates() {
        assert!(bounded_stack_spec().validate().is_empty());
    }

    #[test]
    fn generated_suite_runs_green() {
        use concat_driver::{DriverGenerator, TestLog, TestRunner};
        let suite = DriverGenerator::with_seed(5)
            .generate(&bounded_stack_spec())
            .unwrap();
        assert!(!suite.is_empty());
        let runner = TestRunner::new();
        let result = runner.run_suite(&BoundedStackFactory, &suite, &mut TestLog::new());
        assert_eq!(result.failed(), 0, "the stack passes its own self-test");
    }
}
