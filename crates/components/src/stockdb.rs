//! The in-memory stock database substrate for the warehouse example.
//!
//! The paper's running example (Figures 1–2) is a `Product` class from "the
//! stock control system of a warehouse" whose `InsertProduct` /
//! `RemoveProduct` methods talk to a database. The real system is not
//! available, so this keyed in-memory store exercises the identical
//! create/read/update/delete transaction structure (DESIGN.md §2).

use concat_runtime::{ObjRef, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One stored product row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductRow {
    /// Product name (primary key).
    pub name: String,
    /// Quantity in stock.
    pub qty: i64,
    /// Unit price.
    pub price: f64,
    /// Supplying provider, if any.
    pub provider: Option<ObjRef>,
}

/// Errors from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StockDbError {
    /// Insert of a key that already exists.
    Duplicate {
        /// The conflicting key.
        name: String,
    },
    /// Lookup/removal of a missing key.
    NotFound {
        /// The missing key.
        name: String,
    },
}

impl fmt::Display for StockDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StockDbError::Duplicate { name } => write!(f, "product '{name}' already exists"),
            StockDbError::NotFound { name } => write!(f, "product '{name}' not found"),
        }
    }
}

impl std::error::Error for StockDbError {}

/// A shared in-memory product table, keyed by product name.
///
/// Cloning shares the table (the `Product` components of one test session
/// all talk to the same store, like objects sharing one database
/// connection).
///
/// # Examples
///
/// ```
/// use concat_components::{ProductRow, StockDb};
///
/// let db = StockDb::new();
/// db.insert(ProductRow { name: "Soap".into(), qty: 3, price: 1.5, provider: None }).unwrap();
/// assert_eq!(db.get("Soap").unwrap().qty, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StockDb {
    rows: Rc<RefCell<BTreeMap<String, ProductRow>>>,
}

impl StockDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a new row.
    ///
    /// # Errors
    ///
    /// [`StockDbError::Duplicate`] when the name is already present.
    pub fn insert(&self, row: ProductRow) -> Result<(), StockDbError> {
        let mut rows = self.rows.borrow_mut();
        if rows.contains_key(&row.name) {
            return Err(StockDbError::Duplicate { name: row.name });
        }
        rows.insert(row.name.clone(), row);
        Ok(())
    }

    /// Reads a row by name.
    ///
    /// # Errors
    ///
    /// [`StockDbError::NotFound`] when absent.
    pub fn get(&self, name: &str) -> Result<ProductRow, StockDbError> {
        self.rows
            .borrow()
            .get(name)
            .cloned()
            .ok_or_else(|| StockDbError::NotFound {
                name: name.to_owned(),
            })
    }

    /// Overwrites an existing row.
    ///
    /// # Errors
    ///
    /// [`StockDbError::NotFound`] when absent.
    pub fn update(&self, row: ProductRow) -> Result<(), StockDbError> {
        let mut rows = self.rows.borrow_mut();
        if !rows.contains_key(&row.name) {
            return Err(StockDbError::NotFound { name: row.name });
        }
        rows.insert(row.name.clone(), row);
        Ok(())
    }

    /// Removes a row by name, returning it.
    ///
    /// # Errors
    ///
    /// [`StockDbError::NotFound`] when absent.
    pub fn remove(&self, name: &str) -> Result<ProductRow, StockDbError> {
        self.rows
            .borrow_mut()
            .remove(name)
            .ok_or_else(|| StockDbError::NotFound {
                name: name.to_owned(),
            })
    }

    /// True when the name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.rows.borrow().contains_key(name)
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.borrow().len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.borrow().is_empty()
    }

    /// Removes every row.
    pub fn clear(&self) {
        self.rows.borrow_mut().clear();
    }

    /// Snapshot of the table as a [`Value`] (name → qty pairs) for
    /// reporters.
    pub fn snapshot(&self) -> Value {
        Value::List(
            self.rows
                .borrow()
                .values()
                .map(|r| Value::List(vec![Value::Str(r.name.clone()), Value::Int(r.qty)]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, qty: i64) -> ProductRow {
        ProductRow {
            name: name.into(),
            qty,
            price: 1.0,
            provider: None,
        }
    }

    #[test]
    fn insert_get_update_remove_cycle() {
        let db = StockDb::new();
        db.insert(row("Soap", 5)).unwrap();
        assert_eq!(db.get("Soap").unwrap().qty, 5);
        db.update(row("Soap", 9)).unwrap();
        assert_eq!(db.get("Soap").unwrap().qty, 9);
        assert_eq!(db.remove("Soap").unwrap().qty, 9);
        assert!(db.is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let db = StockDb::new();
        db.insert(row("Soap", 1)).unwrap();
        assert_eq!(
            db.insert(row("Soap", 2)),
            Err(StockDbError::Duplicate {
                name: "Soap".into()
            })
        );
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn missing_rows_reported() {
        let db = StockDb::new();
        assert_eq!(
            db.get("Ghost"),
            Err(StockDbError::NotFound {
                name: "Ghost".into()
            })
        );
        assert_eq!(
            db.remove("Ghost"),
            Err(StockDbError::NotFound {
                name: "Ghost".into()
            })
        );
        assert_eq!(
            db.update(row("Ghost", 1)),
            Err(StockDbError::NotFound {
                name: "Ghost".into()
            })
        );
    }

    #[test]
    fn clones_share_state() {
        let a = StockDb::new();
        let b = a.clone();
        a.insert(row("Soap", 1)).unwrap();
        assert!(b.contains("Soap"));
        b.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn snapshot_is_ordered() {
        let db = StockDb::new();
        db.insert(row("Zed", 2)).unwrap();
        db.insert(row("Alpha", 1)).unwrap();
        let snap = db.snapshot();
        let items = snap.as_list().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0],
            Value::List(vec![Value::Str("Alpha".into()), Value::Int(1)])
        );
    }

    #[test]
    fn error_display() {
        assert!(StockDbError::Duplicate { name: "x".into() }
            .to_string()
            .contains("exists"));
        assert!(StockDbError::NotFound { name: "x".into() }
            .to_string()
            .contains("not found"));
    }
}
