//! Arena storage for doubly linked lists.
//!
//! The paper's subjects are MFC's `CObList` (a doubly linked list of
//! `CObject*`) and a derived sortable list. Safe Rust cannot reproduce raw
//! pointer surgery, so the substrate is an arena: nodes live in a `Vec`,
//! links are `i64` indices with `-1` as the null pointer. This preserves
//! exactly the property the mutation experiments need — the head/tail/link
//! fields are *integers a fault can corrupt*, and corrupted links produce
//! the same observable failures (wrong traversals, broken invariants,
//! crashes) as corrupted pointers would.

use concat_runtime::Value;

/// Null link, the arena's `nullptr`.
pub const NIL: i64 = -1;

/// One list node in the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Stored value.
    pub value: Value,
    /// Index of the previous node, or [`NIL`].
    pub prev: i64,
    /// Index of the next node, or [`NIL`].
    pub next: i64,
    /// True while the slot is allocated to the list.
    pub live: bool,
}

/// An arena of doubly-linked nodes with explicit integer links.
///
/// The arena deliberately exposes *low-level* operations (`alloc`,
/// `set_next`, `set_prev`, `free`) so the instrumented component methods of
/// [`crate::CObList`] can perform their own link surgery — the faults the
/// interface mutation operators inject must be able to corrupt the
/// structure. Every operation is memory-safe: a wild index yields an error
/// or a panic (caught by the driver as a crash), never undefined behaviour.
///
/// # Examples
///
/// ```
/// use concat_components::NodeArena;
/// use concat_runtime::Value;
///
/// let mut arena = NodeArena::new();
/// let a = arena.alloc(Value::Int(1));
/// let b = arena.alloc(Value::Int(2));
/// arena.set_next(a, b).unwrap();
/// arena.set_prev(b, a).unwrap();
/// assert_eq!(arena.next(a), Ok(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeArena {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

/// An invalid arena index was dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadLink(pub i64);

impl std::fmt::Display for BadLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid node link {}", self.0)
    }
}

impl std::error::Error for BadLink {}

impl NodeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a node holding `value`, with both links [`NIL`]; returns
    /// its index.
    pub fn alloc(&mut self, value: Value) -> i64 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    value,
                    prev: NIL,
                    next: NIL,
                    live: true,
                };
                idx as i64
            }
            None => {
                self.slots.push(Slot {
                    value,
                    prev: NIL,
                    next: NIL,
                    live: true,
                });
                (self.slots.len() - 1) as i64
            }
        }
    }

    /// Frees a node, returning its value.
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` is not a live node.
    pub fn free(&mut self, idx: i64) -> Result<Value, BadLink> {
        let i = self.check(idx)?;
        self.slots[i].live = false;
        self.free.push(i);
        Ok(std::mem::take(&mut self.slots[i].value))
    }

    fn check(&self, idx: i64) -> Result<usize, BadLink> {
        let i = usize::try_from(idx).map_err(|_| BadLink(idx))?;
        if self.slots.get(i).is_some_and(|s| s.live) {
            Ok(i)
        } else {
            Err(BadLink(idx))
        }
    }

    /// True when `idx` refers to a live node.
    pub fn is_live(&self, idx: i64) -> bool {
        self.check(idx).is_ok()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }

    /// Reads a node's value.
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` is not a live node.
    pub fn value(&self, idx: i64) -> Result<&Value, BadLink> {
        Ok(&self.slots[self.check(idx)?].value)
    }

    /// Overwrites a node's value.
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` is not a live node.
    pub fn set_value(&mut self, idx: i64, value: Value) -> Result<(), BadLink> {
        let i = self.check(idx)?;
        self.slots[i].value = value;
        Ok(())
    }

    /// Reads a node's `next` link.
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` is not a live node.
    pub fn next(&self, idx: i64) -> Result<i64, BadLink> {
        Ok(self.slots[self.check(idx)?].next)
    }

    /// Reads a node's `prev` link.
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` is not a live node.
    pub fn prev(&self, idx: i64) -> Result<i64, BadLink> {
        Ok(self.slots[self.check(idx)?].prev)
    }

    /// Writes a node's `next` link (any value, including wild ones — the
    /// *target* is validated on traversal, as with real pointers).
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` itself is not a live node.
    pub fn set_next(&mut self, idx: i64, next: i64) -> Result<(), BadLink> {
        let i = self.check(idx)?;
        self.slots[i].next = next;
        Ok(())
    }

    /// Writes a node's `prev` link. See [`NodeArena::set_next`].
    ///
    /// # Errors
    ///
    /// [`BadLink`] when `idx` itself is not a live node.
    pub fn set_prev(&mut self, idx: i64, prev: i64) -> Result<(), BadLink> {
        let i = self.check(idx)?;
        self.slots[i].prev = prev;
        Ok(())
    }

    /// Frees every node.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    /// Walks `next` links from `head`, collecting values, for at most
    /// `max_steps` steps. Returns `None` when a link is invalid or the
    /// walk does not terminate within the budget — the traversal analogue
    /// of a corrupted pointer chain.
    pub fn collect_forward(&self, head: i64, max_steps: usize) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = head;
        let mut steps = 0usize;
        while cur != NIL {
            if steps >= max_steps {
                return None;
            }
            let i = self.check(cur).ok()?;
            out.push(self.slots[i].value.clone());
            cur = self.slots[i].next;
            steps += 1;
        }
        Some(out)
    }

    /// Structural consistency check for a list claiming `head`, `tail` and
    /// `count`: the forward walk visits exactly `count` live nodes, ends at
    /// `tail`, and every `prev` link mirrors the `next` link. Returns
    /// `true` when consistent. This is the class invariant of
    /// [`crate::CObList`].
    pub fn chain_consistent(&self, head: i64, tail: i64, count: i64) -> bool {
        if count < 0 {
            return false;
        }
        if count == 0 {
            return head == NIL && tail == NIL;
        }
        let mut cur = head;
        let mut prev = NIL;
        let mut seen = 0i64;
        while cur != NIL {
            if seen >= count {
                return false; // longer than claimed (or cyclic)
            }
            let Ok(i) = self.check(cur) else {
                return false;
            };
            if self.slots[i].prev != prev {
                return false;
            }
            prev = cur;
            cur = self.slots[i].next;
            seen += 1;
        }
        seen == count && prev == tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(values: &[i64]) -> (NodeArena, i64, i64) {
        let mut arena = NodeArena::new();
        let mut head = NIL;
        let mut tail = NIL;
        for v in values {
            let n = arena.alloc(Value::Int(*v));
            if head == NIL {
                head = n;
            } else {
                arena.set_next(tail, n).unwrap();
                arena.set_prev(n, tail).unwrap();
            }
            tail = n;
        }
        (arena, head, tail)
    }

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut arena = NodeArena::new();
        let a = arena.alloc(Value::Int(1));
        assert_eq!(arena.free(a).unwrap(), Value::Int(1));
        let b = arena.alloc(Value::Int(2));
        assert_eq!(a, b, "slot is recycled");
        assert_eq!(arena.live_count(), 1);
    }

    #[test]
    fn bad_links_rejected_not_ub() {
        let mut arena = NodeArena::new();
        assert_eq!(arena.value(0), Err(BadLink(0)));
        assert_eq!(arena.value(-5), Err(BadLink(-5)));
        assert_eq!(arena.value(1 << 40), Err(BadLink(1 << 40)));
        let a = arena.alloc(Value::Null);
        arena.free(a).unwrap();
        assert_eq!(arena.next(a), Err(BadLink(a)), "freed slot is dead");
        assert_eq!(arena.free(a), Err(BadLink(a)), "double free rejected");
    }

    #[test]
    fn link_surgery() {
        let (mut arena, head, tail) = chain(&[1, 2, 3]);
        assert_eq!(arena.next(head).unwrap(), 1);
        assert_eq!(arena.prev(tail).unwrap(), 1);
        arena.set_value(1, Value::Int(99)).unwrap();
        assert_eq!(arena.value(1).unwrap(), &Value::Int(99));
    }

    #[test]
    fn collect_forward_follows_chain() {
        let (arena, head, _) = chain(&[10, 20, 30]);
        let vals = arena.collect_forward(head, 100).unwrap();
        assert_eq!(vals, vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(
            arena.collect_forward(NIL, 100).unwrap(),
            Vec::<Value>::new()
        );
    }

    #[test]
    fn collect_forward_detects_cycles_via_budget() {
        let (mut arena, head, tail) = chain(&[1, 2]);
        arena.set_next(tail, head).unwrap(); // cycle
        assert_eq!(arena.collect_forward(head, 50), None);
    }

    #[test]
    fn collect_forward_detects_wild_links() {
        let (mut arena, head, tail) = chain(&[1, 2]);
        arena.set_next(tail, 777).unwrap();
        assert_eq!(arena.collect_forward(head, 50), None);
    }

    #[test]
    fn chain_consistency_accepts_good_chains() {
        let (arena, head, tail) = chain(&[1, 2, 3]);
        assert!(arena.chain_consistent(head, tail, 3));
        let empty = NodeArena::new();
        assert!(empty.chain_consistent(NIL, NIL, 0));
    }

    #[test]
    fn chain_consistency_rejects_bad_claims() {
        let (mut arena, head, tail) = chain(&[1, 2, 3]);
        assert!(!arena.chain_consistent(head, tail, 2), "wrong count");
        assert!(!arena.chain_consistent(head, head, 3), "wrong tail");
        assert!(!arena.chain_consistent(head, tail, -1), "negative count");
        // break a prev link
        arena.set_prev(2, NIL).unwrap();
        assert!(!arena.chain_consistent(head, tail, 3));
    }

    #[test]
    fn chain_consistency_rejects_cycles() {
        let (mut arena, head, tail) = chain(&[1, 2]);
        arena.set_next(tail, head).unwrap();
        arena.set_prev(head, tail).unwrap();
        assert!(!arena.chain_consistent(head, tail, 2));
    }

    #[test]
    fn clear_resets_everything() {
        let (mut arena, _, _) = chain(&[1, 2, 3]);
        arena.clear();
        assert_eq!(arena.live_count(), 0);
        assert!(arena.chain_consistent(NIL, NIL, 0));
    }
}
