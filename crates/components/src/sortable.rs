//! `CSortableObList`: the paper's derived subject — an ordered list adding
//! `Sort1`, `Sort2`, `ShellSort`, `FindMax` and `FindMin` to `CObList`.
//!
//! These five methods are the Table-2 mutation targets; each is
//! hand-written with instrumented loop counters and indices so the
//! interface mutation operators perturb real control flow. Rust has no
//! implementation inheritance, so the subclass holds its base by
//! composition and delegates every inherited method unchanged — the
//! [`sortable_inheritance_map`] records exactly that relationship for the
//! incremental-reuse analysis of §3.4.2.

use crate::oblist::{coblist_inventory, CObList, WATCHDOG};
use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_driver::InheritanceMap;
use concat_mutation::{ClassInventory, ClonableFactory, MethodInventory, MutationSwitch, VarEnv};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat_tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};

/// Bounds-checked vector access in the integer world of the sort loops.
///
/// A mutated index lands here; out-of-range reads become deterministic
/// domain errors (the moral equivalent of the C++ mutant's wild read
/// crashing), identical in debug and release profiles.
fn at<'v>(method: &str, vals: &'v [Value], idx: i64) -> Result<&'v Value, TestException> {
    usize::try_from(idx)
        .ok()
        .and_then(|i| vals.get(i))
        .ok_or_else(|| TestException::domain(method, format!("index {idx} out of bounds")))
}

fn at_mut<'v>(
    method: &str,
    vals: &'v mut [Value],
    idx: i64,
) -> Result<&'v mut Value, TestException> {
    let len = vals.len();
    usize::try_from(idx)
        .ok()
        .filter(|i| *i < len)
        .map(|i| &mut vals[i])
        .ok_or_else(|| TestException::domain(method, format!("index {idx} out of bounds")))
}

/// Sum of the integer elements — the cheap "same multiset" proxy the
/// sorts' partial postcondition checks (a lost or duplicated element
/// almost always changes it; a mere mis-ordering never does, which keeps
/// the assertion a *partial* oracle as in the paper).
fn int_sum(vals: &[Value]) -> i64 {
    vals.iter()
        .map(|v| match v {
            Value::Int(i) => i.wrapping_mul(31),
            _ => 1,
        })
        .fold(0i64, |acc, x| acc.wrapping_add(x))
}

/// A deliberately seeded cross-object fault, compiled in only under the
/// `seeded-bugs` feature: the invariant-fuzzing subject.
///
/// The bug models a botched shared-free-list optimization: each list
/// keeps a cached element count, and an insert skips the cache update
/// when the *most recent removal on this thread* was performed by a
/// different list instance. Every single-object method sequence keeps the
/// cache coherent — the constructor clears the cross-object marker, and a
/// removal by the same instance is harmless — so the transaction-coverage
/// suite (one object per test case) can never trip it. Only an
/// interleaved insert-after-foreign-remove across two live objects
/// desyncs the cache, which the BIT class invariant then reports.
#[cfg(feature = "seeded-bugs")]
mod seeded {
    use std::cell::Cell;
    thread_local! {
        /// Instance-id source for lists constructed on this thread.
        pub static NEXT_INSTANCE: Cell<u64> = const { Cell::new(0) };
        /// Which instance performed the last removal on this thread.
        pub static LAST_REMOVE_BY: Cell<Option<u64>> = const { Cell::new(None) };
    }
}

/// The `CSortableObList` component.
#[derive(Debug)]
pub struct CSortableObList {
    base: CObList,
    switch: MutationSwitch,
    ctl: BitControl,
    #[cfg(feature = "seeded-bugs")]
    instance: u64,
    #[cfg(feature = "seeded-bugs")]
    cached_len: std::cell::Cell<i64>,
}

impl CSortableObList {
    /// Class name used in specs and dispatch.
    pub const CLASS: &'static str = "CSortableObList";

    /// The five methods this subclass introduces.
    pub const NEW_METHODS: [&'static str; 5] =
        ["Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"];

    /// Creates an empty sortable list with the default block size.
    pub fn new(ctl: BitControl, switch: MutationSwitch) -> Self {
        CSortableObList {
            base: CObList::new(ctl.clone(), switch.clone()),
            switch,
            ctl,
            #[cfg(feature = "seeded-bugs")]
            instance: Self::seeded_register(),
            #[cfg(feature = "seeded-bugs")]
            cached_len: std::cell::Cell::new(0),
        }
    }

    /// Creates an empty sortable list with an explicit `m_nBlockSize`.
    pub fn with_block_size(block_size: i64, ctl: BitControl, switch: MutationSwitch) -> Self {
        CSortableObList {
            base: CObList::with_block_size(block_size, ctl.clone(), switch.clone()),
            switch,
            ctl,
            #[cfg(feature = "seeded-bugs")]
            instance: Self::seeded_register(),
            #[cfg(feature = "seeded-bugs")]
            cached_len: std::cell::Cell::new(0),
        }
    }

    /// Hands out a fresh instance id and clears the cross-object removal
    /// marker — constructing a list resets the (buggy) shared state, which
    /// is exactly why every one-object-per-case suite stays green.
    #[cfg(feature = "seeded-bugs")]
    fn seeded_register() -> u64 {
        seeded::LAST_REMOVE_BY.with(|c| c.set(None));
        seeded::NEXT_INSTANCE.with(|c| {
            let id = c.get();
            c.set(id + 1);
            id
        })
    }

    /// Post-call cache accounting carrying the seeded fault: removals mark
    /// this instance as the thread's last remover and refresh the cache;
    /// inserts skip the refresh when a *different* instance removed last.
    #[cfg(feature = "seeded-bugs")]
    fn seeded_track(&self, method: &str) {
        match method {
            "RemoveHead" | "RemoveTail" | "RemoveAt" | "RemoveAll" => {
                seeded::LAST_REMOVE_BY.with(|c| c.set(Some(self.instance)));
                self.cached_len.set(self.base.count());
            }
            // The destructor empties the list, so it refreshes its own
            // cache — but deliberately does NOT mark: driver-provided
            // helper objects die inside single-object test cases, and the
            // bug must stay out of reach of every such case.
            "~CSortableObList" => self.cached_len.set(self.base.count()),
            "AddHead" | "AddTail" | "InsertAfter" => {
                let foreign_remove = seeded::LAST_REMOVE_BY
                    .with(std::cell::Cell::get)
                    .is_some_and(|id| id != self.instance);
                if !foreign_remove {
                    self.cached_len.set(self.base.count());
                }
            }
            _ => {}
        }
    }

    /// Read-only access to the base list.
    pub fn base(&self) -> &CObList {
        &self.base
    }

    fn globals_env(&self) -> VarEnv {
        VarEnv::new()
            .bind("m_nCount", self.base.count())
            .bind("m_pNodeHead", self.base.head_link())
            .bind("m_pNodeTail", self.base.tail_link())
            .bind("m_nBlockSize", self.base.block_size())
    }

    fn load_values(&self, method: &str) -> Result<Vec<Value>, TestException> {
        self.base
            .values()
            .ok_or_else(|| TestException::domain(method, "corrupt chain"))
    }

    fn store_values(&mut self, method: &str, vals: &[Value]) -> Result<(), TestException> {
        let nodes = self.base.node_indices(method)?;
        if nodes.len() != vals.len() {
            return Err(TestException::domain(
                method,
                format!(
                    "write-back mismatch: {} nodes, {} values",
                    nodes.len(),
                    vals.len()
                ),
            ));
        }
        for (node, v) in nodes.iter().zip(vals.iter()) {
            self.base.set_node_value(method, *node, v.clone())?;
        }
        Ok(())
    }

    /// `Sort1()` — bubble sort, ascending. Locals: `i`, `j`, `n`.
    /// Use sites 0–4.
    ///
    /// # Errors
    ///
    /// Domain errors when injected faults drive indices out of range or
    /// the loop watchdog fires; a postcondition violation when the element
    /// count changes.
    pub fn sort1(&mut self) -> Result<(), TestException> {
        const M: &str = "Sort1";
        let before = self.base.count();
        let mut vals = self.load_values(M)?;
        let sum_before = int_sum(&vals);
        let n = vals.len() as i64;
        let mut i = 0i64;
        let mut fuel = WATCHDOG;
        loop {
            let env = self.globals_env().bind("n", n).bind("i", i);
            // Site 0: outer loop comparison on i.
            if self.switch.read_int(M, 0, "i", i, &env) >= n {
                break;
            }
            let mut j = 0i64;
            loop {
                let env = self.globals_env().bind("n", n).bind("i", i).bind("j", j);
                // Site 1: inner loop bound (n - i - 1) read through i.
                let bound = n - self.switch.read_int(M, 1, "i", i, &env) - 1;
                if j >= bound {
                    break;
                }
                // Site 2: the left index of the compared pair.
                let left = self.switch.read_int(M, 2, "j", j, &env);
                let a = at(M, &vals, left)?.clone();
                let b = at(M, &vals, left + 1)?.clone();
                if a.total_cmp(&b) == std::cmp::Ordering::Greater {
                    // Site 3: the swap position.
                    let swap_at = self.switch.read_int(M, 3, "j", j, &env);
                    *at_mut(M, &mut vals, swap_at)? = b;
                    *at_mut(M, &mut vals, swap_at + 1)? = a;
                }
                j += 1;
                fuel -= 1;
                if fuel == 0 {
                    return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
                }
            }
            // Site 4: the outer increment source.
            i = self.switch.read_int(M, 4, "i", i, &env) + 1;
            fuel -= 1;
            if fuel == 0 {
                return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
            }
        }
        self.store_values(M, &vals)?;
        let after = self.load_values(M)?;
        concat_bit::post_condition!(
            &self.ctl,
            Self::CLASS,
            M,
            self.base.count() == before && int_sum(&after) == sum_before
        );
        Ok(())
    }

    /// `Sort2()` — selection sort, ascending. Locals: `i`, `j`, `minIdx`,
    /// `n`. Use sites 0–4.
    ///
    /// # Errors
    ///
    /// As for [`CSortableObList::sort1`].
    pub fn sort2(&mut self) -> Result<(), TestException> {
        const M: &str = "Sort2";
        let before = self.base.count();
        let mut vals = self.load_values(M)?;
        let sum_before = int_sum(&vals);
        let n = vals.len() as i64;
        let mut i = 0i64;
        let mut fuel = WATCHDOG;
        loop {
            let env = self.globals_env().bind("n", n).bind("i", i);
            // Site 0: outer loop comparison on i.
            if self.switch.read_int(M, 0, "i", i, &env) >= n {
                break;
            }
            // Site 1: the initial minimum candidate.
            let mut min_idx = self.switch.read_int(M, 1, "i", i, &env);
            let mut j = i + 1;
            loop {
                let env = self
                    .globals_env()
                    .bind("n", n)
                    .bind("i", i)
                    .bind("j", j)
                    .bind("minIdx", min_idx);
                // Site 2: inner loop comparison on j.
                if self.switch.read_int(M, 2, "j", j, &env) >= n {
                    break;
                }
                // Site 3: the candidate index compared against the minimum.
                let cand = self.switch.read_int(M, 3, "j", j, &env);
                if at(M, &vals, cand)?.total_cmp(at(M, &vals, min_idx)?) == std::cmp::Ordering::Less
                {
                    min_idx = cand;
                }
                j += 1;
                fuel -= 1;
                if fuel == 0 {
                    return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
                }
            }
            if min_idx != i {
                let env = self
                    .globals_env()
                    .bind("n", n)
                    .bind("i", i)
                    .bind("j", j)
                    .bind("minIdx", min_idx);
                // Site 4: the swap target.
                let target = self.switch.read_int(M, 4, "i", i, &env);
                let a = at(M, &vals, target)?.clone();
                let b = at(M, &vals, min_idx)?.clone();
                *at_mut(M, &mut vals, target)? = b;
                *at_mut(M, &mut vals, min_idx)? = a;
            }
            i += 1;
            fuel -= 1;
            if fuel == 0 {
                return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
            }
        }
        self.store_values(M, &vals)?;
        let after = self.load_values(M)?;
        concat_bit::post_condition!(
            &self.ctl,
            Self::CLASS,
            M,
            self.base.count() == before && int_sum(&after) == sum_before
        );
        Ok(())
    }

    /// `ShellSort()` — diminishing-gap insertion sort. Locals: `gap`, `i`,
    /// `j`, `n`. Use sites 0–5.
    ///
    /// # Errors
    ///
    /// As for [`CSortableObList::sort1`].
    pub fn shell_sort(&mut self) -> Result<(), TestException> {
        const M: &str = "ShellSort";
        let before = self.base.count();
        let mut vals = self.load_values(M)?;
        let sum_before = int_sum(&vals);
        let n = vals.len() as i64;
        let mut gap = n / 2;
        let mut fuel = WATCHDOG;
        loop {
            let env = self.globals_env().bind("n", n).bind("gap", gap);
            // Site 0: the gap-loop guard.
            if self.switch.read_int(M, 0, "gap", gap, &env) <= 0 {
                break;
            }
            let mut i = gap;
            loop {
                let env = self
                    .globals_env()
                    .bind("n", n)
                    .bind("gap", gap)
                    .bind("i", i);
                // Site 1: the scan comparison on i.
                if self.switch.read_int(M, 1, "i", i, &env) >= n {
                    break;
                }
                // Site 2: the element lifted out.
                let lifted_idx = self.switch.read_int(M, 2, "i", i, &env);
                let lifted = at(M, &vals, lifted_idx)?.clone();
                let mut j = i;
                loop {
                    let env = self
                        .globals_env()
                        .bind("n", n)
                        .bind("gap", gap)
                        .bind("i", i)
                        .bind("j", j);
                    // Site 3: the insertion-loop comparison on j.
                    let jj = self.switch.read_int(M, 3, "j", j, &env);
                    if jj < gap {
                        break;
                    }
                    // Site 4: the compared slot (j - gap).
                    let back = self.switch.read_int(M, 4, "j", j, &env) - gap;
                    if at(M, &vals, back)?.total_cmp(&lifted) != std::cmp::Ordering::Greater {
                        break;
                    }
                    let moved = at(M, &vals, back)?.clone();
                    *at_mut(M, &mut vals, j)? = moved;
                    j -= gap;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
                    }
                }
                // Site 5: the landing slot.
                let landing = self.switch.read_int(M, 5, "j", j, &env);
                *at_mut(M, &mut vals, landing)? = lifted;
                i += 1;
                fuel -= 1;
                if fuel == 0 {
                    return Err(TestException::domain(M, "watchdog: loop budget exceeded"));
                }
            }
            gap /= 2;
        }
        self.store_values(M, &vals)?;
        let after = self.load_values(M)?;
        concat_bit::post_condition!(
            &self.ctl,
            Self::CLASS,
            M,
            self.base.count() == before && int_sum(&after) == sum_before
        );
        Ok(())
    }

    /// `FindMax()` — returns the largest element. Locals: `idx`, `best`,
    /// `n`. Use sites 0–2 (site 2 is value-typed).
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list; domain errors under
    /// injected faults.
    pub fn find_max(&self) -> InvokeResult {
        self.scan_extreme("FindMax", std::cmp::Ordering::Greater)
    }

    /// `FindMin()` — returns the smallest element. Same shape as
    /// [`CSortableObList::find_max`].
    ///
    /// # Errors
    ///
    /// A precondition violation on an empty list; domain errors under
    /// injected faults.
    pub fn find_min(&self) -> InvokeResult {
        self.scan_extreme("FindMin", std::cmp::Ordering::Less)
    }

    fn scan_extreme(&self, method: &str, keep: std::cmp::Ordering) -> InvokeResult {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, method, self.base.count() > 0);
        let vals = self.load_values(method)?;
        let n = vals.len() as i64;
        let mut best = vals[0].clone();
        let mut idx = 1i64;
        let mut fuel = WATCHDOG;
        loop {
            let env = self
                .globals_env()
                .bind("n", n)
                .bind("idx", idx)
                .bind("best", best.clone());
            // Site 0: the scan comparison on idx.
            if self.switch.read_int(method, 0, "idx", idx, &env) >= n {
                break;
            }
            // Site 1: the element index read.
            let probe = self.switch.read_int(method, 1, "idx", idx, &env);
            let candidate = at(method, &vals, probe)?.clone();
            // Site 2: the running best (value-typed site).
            let current_best = self
                .switch
                .read_value(method, 2, "best", best.clone(), &env);
            if candidate.total_cmp(&current_best) == keep {
                best = candidate;
            }
            idx += 1;
            fuel -= 1;
            if fuel == 0 {
                return Err(TestException::domain(
                    method,
                    "watchdog: loop budget exceeded",
                ));
            }
        }
        Ok(best)
    }
}

impl Component for CSortableObList {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        let mut names = vec![
            "Sort1",
            "Sort2",
            "ShellSort",
            "FindMax",
            "FindMin",
            "~CSortableObList",
        ];
        names.extend(
            self.base
                .method_names()
                .into_iter()
                .filter(|m| *m != "~CObList"),
        );
        names
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        let result = self.dispatch(method, a);
        #[cfg(feature = "seeded-bugs")]
        if result.is_ok() {
            self.seeded_track(method);
        }
        result
    }
}

impl CSortableObList {
    fn dispatch(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "Sort1" => {
                args::expect_arity(method, a, 0)?;
                self.sort1()?;
                Ok(Value::Null)
            }
            "Sort2" => {
                args::expect_arity(method, a, 0)?;
                self.sort2()?;
                Ok(Value::Null)
            }
            "ShellSort" => {
                args::expect_arity(method, a, 0)?;
                self.shell_sort()?;
                Ok(Value::Null)
            }
            "FindMax" => {
                args::expect_arity(method, a, 0)?;
                self.find_max()
            }
            "FindMin" => {
                args::expect_arity(method, a, 0)?;
                self.find_min()
            }
            "~CSortableObList" => {
                self.base.remove_all();
                Ok(Value::Null)
            }
            // Everything else is inherited unmodified from CObList.
            inherited => self.base.invoke(inherited, a),
        }
    }
}

impl BuiltInTest for CSortableObList {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        // The subclass inherits the structural invariant unchanged.
        self.base.invariant_test()?;
        #[cfg(feature = "seeded-bugs")]
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            Self::CLASS,
            "",
            "cached length agrees with m_nCount",
            self.cached_len.get() == self.base.count(),
        )?;
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        // Deliberately the parent's exact report: retargeted parent
        // suites compare transcripts across the hierarchy.
        self.base.reporter()
    }
}

/// Factory for [`CSortableObList`] instances sharing one
/// [`MutationSwitch`].
#[derive(Debug, Clone, Default)]
pub struct CSortableObListFactory {
    switch: MutationSwitch,
}

impl CSortableObListFactory {
    /// Creates a factory wired to `switch`.
    pub fn new(switch: MutationSwitch) -> Self {
        CSortableObListFactory { switch }
    }

    /// The shared mutation switch.
    pub fn switch(&self) -> &MutationSwitch {
        &self.switch
    }
}

impl ComponentFactory for CSortableObListFactory {
    fn class_name(&self) -> &str {
        CSortableObList::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "CSortableObList" => match a.len() {
                0 => Ok(Box::new(CSortableObList::new(ctl, self.switch.clone()))),
                1 => Ok(Box::new(CSortableObList::with_block_size(
                    args::int(constructor, a, 0)?,
                    ctl,
                    self.switch.clone(),
                ))),
                got => Err(TestException::ArityMismatch {
                    method: constructor.to_owned(),
                    expected: 1,
                    got,
                }),
            },
            other => Err(unknown_method(CSortableObList::CLASS, other)),
        }
    }
}

impl ClonableFactory for CSortableObListFactory {
    fn class_name(&self) -> &str {
        CSortableObList::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(CSortableObListFactory::new(switch.clone()))
    }
}

/// The t-spec of `CSortableObList`: the inherited interface plus the five
/// new methods, and the extended transaction flow model.
pub fn sortable_spec() -> ClassSpec {
    let value = || Domain::int_range(-99, 99);
    let index = || Domain::int_range(0, 1);
    ClassSpecBuilder::new(CSortableObList::CLASS)
        .superclass("CObList")
        .source_file("csortableoblist.cpp")
        .attribute("m_nCount", Domain::int_range(0, 99_999))
        .attribute(
            "m_pNodeHead",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute(
            "m_pNodeTail",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute("m_nBlockSize", Domain::int_range(1, 64))
        .constructor("m1", "CSortableObList")
        .constructor("m1b", "CSortableObList")
        .param("nBlockSize", Domain::int_range(1, 64))
        .method("m2", "AddHead", MethodCategory::Update)
        .param("newElement", value())
        .method("m3", "AddTail", MethodCategory::Update)
        .param("newElement", value())
        .method("m4", "RemoveHead", MethodCategory::Update)
        .returns("Value")
        .method("m5", "RemoveTail", MethodCategory::Update)
        .returns("Value")
        .method("m6", "GetHead", MethodCategory::Access)
        .returns("Value")
        .method("m7", "GetTail", MethodCategory::Access)
        .returns("Value")
        .method("m8", "GetAt", MethodCategory::Access)
        .param("index", index())
        .returns("Value")
        .method("m9", "SetAt", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m10", "InsertAfter", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m11", "Find", MethodCategory::Access)
        .param("searchValue", value())
        .returns("int")
        .method("m12", "RemoveAt", MethodCategory::Update)
        .param("index", index())
        .returns("Value")
        .method("m13", "GetCount", MethodCategory::Access)
        .returns("int")
        .method("m14", "IsEmpty", MethodCategory::Access)
        .returns("bool")
        .method("m15", "RemoveAll", MethodCategory::Update)
        .method("m17", "Sort1", MethodCategory::Update)
        .method("m18", "Sort2", MethodCategory::Update)
        .method("m19", "ShellSort", MethodCategory::Update)
        .method("m20", "FindMax", MethodCategory::Access)
        .returns("Value")
        .method("m21", "FindMin", MethodCategory::Access)
        .returns("Value")
        .invariant(
            "i1",
            "element count never goes negative",
            concat_tspec::InvariantTerm::field("m_nCount"),
            concat_tspec::InvariantOp::Ge,
            concat_tspec::InvariantTerm::int(0),
        )
        .destructor("m16", "~CSortableObList")
        .birth_node("n1", ["m1", "m1b"])
        .task_node("n2", ["m2", "m3"])
        .task_node("n3", ["m2", "m3"])
        .task_node("n4", ["m2", "m3"])
        .task_node("n5", ["m17", "m18", "m19"])
        .task_node("n6", ["m20", "m21"])
        .task_node("n7", ["m6", "m7"])
        .task_node("n8", ["m8", "m11"])
        .task_node("n9", ["m9", "m10"])
        .task_node("n10", ["m17", "m18", "m19"])
        .task_node("n11", ["m4", "m5", "m12"])
        .task_node("n12", ["m13", "m14"])
        .task_node("n13", ["m15"])
        .task_node("n15", ["m20", "m21"])
        .task_node("n16", ["m4"]) // sorted lists are consumed from the head
        .death_node("n14", ["m16"])
        // Common trunk: build the list up.
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n3", "n4")
        // Maintenance branch: inherited methods only, including shrink —
        // exactly the transactions the reuse rule of §3.4.2 will skip.
        .edge("n2", "n11")
        .edge("n4", "n7")
        .edge("n7", "n8")
        .edge("n7", "n11")
        .edge("n4", "n8")
        .edge("n8", "n9")
        .edge("n8", "n11")
        .edge("n9", "n12")
        .edge("n11", "n12")
        .edge("n11", "n13")
        .edge("n12", "n13")
        .edge("n12", "n14")
        .edge("n13", "n14")
        // Sorted-usage branch: contains the new methods, never shrinks.
        .edge("n3", "n5")
        .edge("n4", "n5")
        .edge("n5", "n6")
        .edge("n5", "n12")
        .edge("n6", "n12")
        .edge("n6", "n9")
        .edge("n6", "n16")
        .edge("n9", "n10")
        .edge("n10", "n15")
        .edge("n15", "n16")
        .edge("n15", "n14")
        .edge("n16", "n14")
        .build()
        .expect("CSortableObList spec is valid")
}

/// The mutation inventory of the five Table-2 target methods; the base
/// class's instrumented methods are inherited into the same inventory so
/// one inventory serves both experiments.
pub fn sortable_inventory() -> ClassInventory {
    let mut inv = ClassInventory::new(CSortableObList::CLASS)
        .globals(["m_nCount", "m_pNodeHead", "m_pNodeTail", "m_nBlockSize"])
        .method(
            MethodInventory::new("Sort1")
                .locals(["i", "j", "n"])
                .globals_used(["m_nCount", "m_pNodeHead"])
                .site(0, "i", "outer loop comparison")
                .site(1, "i", "inner loop bound")
                .site(2, "j", "compared pair index")
                .site(3, "j", "swap position")
                .site(4, "i", "outer increment source"),
        )
        .method(
            MethodInventory::new("Sort2")
                .locals(["i", "j", "minIdx", "n"])
                .globals_used(["m_nCount", "m_pNodeHead"])
                .site(0, "i", "outer loop comparison")
                .site(1, "i", "initial minimum candidate")
                .site(2, "j", "inner loop comparison")
                .site(3, "j", "candidate index")
                .site(4, "i", "swap target"),
        )
        .method(
            MethodInventory::new("ShellSort")
                .locals(["gap", "i", "j", "n"])
                .globals_used(["m_nCount", "m_pNodeHead"])
                .site(0, "gap", "gap loop guard")
                .site(1, "i", "scan comparison")
                .site(2, "i", "lifted element index")
                .site(3, "j", "insertion loop comparison")
                .site(4, "j", "compared slot")
                .site(5, "j", "landing slot"),
        )
        .method(
            MethodInventory::new("FindMax")
                .locals(["idx", "best", "n"])
                .globals_used(["m_nCount", "m_pNodeHead"])
                .site(0, "idx", "scan comparison")
                .site(1, "idx", "element index read")
                .site(2, "best", "running best (value site)"),
        )
        .method(
            MethodInventory::new("FindMin")
                .locals(["idx", "best", "n"])
                .globals_used(["m_nCount", "m_pNodeHead"])
                .site(0, "idx", "scan comparison")
                .site(1, "idx", "element index read")
                .site(2, "best", "running best (value site)"),
        );
    // Inherited instrumented methods participate through delegation.
    for m in coblist_inventory().methods {
        inv = inv.method(m);
    }
    inv
}

/// The inheritance relationship between `CObList` and `CSortableObList`
/// for the reuse analysis: everything inherited unmodified, five new
/// methods, no redefinitions (exactly the situation Table 3 warns about).
pub fn sortable_inheritance_map() -> InheritanceMap {
    InheritanceMap::new()
        .lifecycle(["CObList", "~CObList", "CSortableObList", "~CSortableObList"])
        .inherit([
            "AddHead",
            "AddTail",
            "RemoveHead",
            "RemoveTail",
            "GetHead",
            "GetTail",
            "GetAt",
            "SetAt",
            "RemoveAt",
            "InsertAfter",
            "Find",
            "GetCount",
            "IsEmpty",
            "RemoveAll",
        ])
        .add_new(CSortableObList::NEW_METHODS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_mutation::{FaultPlan, Replacement, ReqConst};

    fn filled(values: &[i64]) -> CSortableObList {
        let mut l = CSortableObList::new(BitControl::new_enabled(), MutationSwitch::new());
        for v in values {
            l.invoke("AddTail", &[Value::Int(*v)]).unwrap();
        }
        l
    }

    fn ints(l: &CSortableObList) -> Vec<i64> {
        l.base()
            .values()
            .unwrap()
            .into_iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn sort1_sorts() {
        let mut l = filled(&[5, -2, 9, 0, 3]);
        l.sort1().unwrap();
        assert_eq!(ints(&l), vec![-2, 0, 3, 5, 9]);
        assert!(l.invariant_test().is_ok());
    }

    #[test]
    fn sort2_sorts() {
        let mut l = filled(&[4, 4, -7, 12]);
        l.sort2().unwrap();
        assert_eq!(ints(&l), vec![-7, 4, 4, 12]);
    }

    #[test]
    fn shell_sort_sorts() {
        let mut l = filled(&[8, 1, 6, -3, 6, 0, 42, -9]);
        l.shell_sort().unwrap();
        assert_eq!(ints(&l), vec![-9, -3, 0, 1, 6, 6, 8, 42]);
    }

    #[test]
    fn sorts_agree_with_each_other() {
        for alg in 0..3 {
            let mut l = filled(&[3, 3, 1, -5, 99, 0, 2]);
            match alg {
                0 => l.sort1().unwrap(),
                1 => l.sort2().unwrap(),
                _ => l.shell_sort().unwrap(),
            }
            assert_eq!(ints(&l), vec![-5, 0, 1, 2, 3, 3, 99], "algorithm {alg}");
        }
    }

    #[test]
    fn empty_and_singleton_sorts_are_noops() {
        let mut l = filled(&[]);
        l.sort1().unwrap();
        l.sort2().unwrap();
        l.shell_sort().unwrap();
        assert_eq!(ints(&l), Vec::<i64>::new());
        let mut l = filled(&[7]);
        l.shell_sort().unwrap();
        assert_eq!(ints(&l), vec![7]);
    }

    #[test]
    fn find_max_and_min() {
        let l = filled(&[4, -9, 23, 0]);
        assert_eq!(l.find_max().unwrap(), Value::Int(23));
        assert_eq!(l.find_min().unwrap(), Value::Int(-9));
    }

    #[test]
    fn find_on_empty_violates_precondition() {
        let l = filled(&[]);
        assert_eq!(l.find_max().unwrap_err().tag(), "PRECONDITION");
        assert_eq!(l.find_min().unwrap_err().tag(), "PRECONDITION");
    }

    #[test]
    fn inherited_methods_delegate() {
        let mut l = filled(&[1, 2]);
        assert_eq!(l.invoke("GetCount", &[]).unwrap(), Value::Int(2));
        assert_eq!(l.invoke("GetHead", &[]).unwrap(), Value::Int(1));
        assert_eq!(l.invoke("RemoveHead", &[]).unwrap(), Value::Int(1));
        assert_eq!(l.invoke("Find", &[Value::Int(2)]).unwrap(), Value::Int(0));
        assert!(l.has_method("AddTail"));
        assert!(l.has_method("Sort1"));
        assert!(!l.has_method("~CObList"), "base destructor is replaced");
    }

    #[test]
    fn destructor_dispatch() {
        let mut l = filled(&[1]);
        assert_eq!(l.invoke("~CSortableObList", &[]).unwrap(), Value::Null);
        assert_eq!(l.invoke("IsEmpty", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn fault_in_sort1_changes_output() {
        let switch = MutationSwitch::new();
        let mut l = CSortableObList::new(BitControl::new_enabled(), switch.clone());
        for v in [3, 1, 2] {
            l.invoke("AddTail", &[Value::Int(v)]).unwrap();
        }
        // Outer comparison frozen at MAXINT: the sort never runs a pass.
        switch.arm(FaultPlan {
            method: "Sort1".into(),
            site: 0,
            replacement: Replacement::Const(ReqConst::MaxInt),
        });
        l.sort1().unwrap();
        assert_eq!(ints(&l), vec![3, 1, 2], "no pass ran: list unsorted");
    }

    #[test]
    fn fault_in_sort2_candidate_is_caught_or_changes_output() {
        let switch = MutationSwitch::new();
        let mut l = CSortableObList::new(BitControl::new_enabled(), switch.clone());
        for v in [5, 4, 3, 2, 1] {
            l.invoke("AddTail", &[Value::Int(v)]).unwrap();
        }
        // Candidate index replaced by the head link (an arena index):
        // wrong but in-range values change the result; wild ones error.
        switch.arm(FaultPlan {
            method: "Sort2".into(),
            site: 3,
            replacement: Replacement::Var("m_pNodeHead".into()),
        });
        match l.sort2() {
            Ok(()) => assert_ne!(ints(&l), vec![1, 2, 3, 4, 5]),
            Err(e) => assert_eq!(e.tag(), "DOMAIN"),
        }
    }

    #[test]
    fn watchdog_stops_mutated_shell_sort() {
        let switch = MutationSwitch::new();
        let mut l = CSortableObList::new(BitControl::new_enabled(), switch.clone());
        for v in [2, 1, 4, 3] {
            l.invoke("AddTail", &[Value::Int(v)]).unwrap();
        }
        // Gap guard frozen at 1: the gap loop never terminates.
        switch.arm(FaultPlan {
            method: "ShellSort".into(),
            site: 0,
            replacement: Replacement::Const(ReqConst::One),
        });
        let err = l.shell_sort().unwrap_err();
        assert_eq!(err.tag(), "DOMAIN");
    }

    #[test]
    fn fault_in_find_max_best_site_changes_result() {
        let switch = MutationSwitch::new();
        let mut l = CSortableObList::new(BitControl::new_enabled(), switch.clone());
        for v in [10, 50, 20] {
            l.invoke("AddTail", &[Value::Int(v)]).unwrap();
        }
        // The running best replaced by MAXINT: nothing ever beats it, so
        // the stale initial best is returned.
        switch.arm(FaultPlan {
            method: "FindMax".into(),
            site: 2,
            replacement: Replacement::Const(ReqConst::MaxInt),
        });
        assert_eq!(l.find_max().unwrap(), Value::Int(10));
    }

    #[test]
    fn spec_validates_with_16_nodes() {
        let spec = sortable_spec();
        assert!(spec.validate().is_empty());
        assert_eq!(spec.tfm.node_count(), 16);
        assert_eq!(spec.superclass.as_deref(), Some("CObList"));
    }

    #[test]
    fn inventory_validates_and_includes_inherited_methods() {
        let inv = sortable_inventory();
        assert!(inv.validate().is_empty());
        assert!(inv.method_named("Sort1").is_some());
        assert!(
            inv.method_named("AddHead").is_some(),
            "inherited instrumentation"
        );
    }

    #[test]
    fn inheritance_map_classifies() {
        use concat_driver::MethodStatus;
        let map = sortable_inheritance_map();
        assert_eq!(map.classify("AddHead"), MethodStatus::Inherited);
        assert_eq!(map.classify("Sort1"), MethodStatus::New);
        assert_eq!(map.classify("CSortableObList"), MethodStatus::Lifecycle);
    }

    #[test]
    fn factory_constructs() {
        let f = CSortableObListFactory::default();
        let c = f
            .construct("CSortableObList", &[], BitControl::new_enabled())
            .unwrap();
        assert_eq!(c.class_name(), "CSortableObList");
        assert!(f
            .construct("CObList", &[], BitControl::new_enabled())
            .is_err());
        let _ = f.switch();
    }

    #[test]
    fn sorts_handle_mixed_value_kinds_totally() {
        let mut l = CSortableObList::new(BitControl::new_enabled(), MutationSwitch::new());
        l.invoke("AddTail", &[Value::Str("b".into())]).unwrap();
        l.invoke("AddTail", &[Value::Int(5)]).unwrap();
        l.invoke("AddTail", &[Value::Str("a".into())]).unwrap();
        l.sort1().unwrap();
        let vals = l.base().values().unwrap();
        assert_eq!(
            vals,
            vec![
                Value::Int(5),
                Value::Str("a".into()),
                Value::Str("b".into())
            ]
        );
    }
}
