//! `CTypedObList`: a second derived class that *redefines* inherited
//! methods.
//!
//! `CSortableObList` only adds methods, so its reuse analysis never
//! exercises the paper's middle category — transactions whose cases are
//! "reused … in case the modification in the subclass did not change the
//! specification" (§3.4.2). `CTypedObList` fills that gap: it redefines
//! the four element-accepting methods (`AddHead`, `AddTail`, `SetAt`,
//! `InsertAfter`) to enforce an integers-only element policy (a stronger
//! precondition; same signatures, as Harrold's technique requires) and
//! inherits everything else unchanged.

use crate::oblist::CObList;
use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_driver::InheritanceMap;
use concat_mutation::{ClonableFactory, MutationSwitch};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat_tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};

/// An integers-only `CObList` subclass (redefinition subject).
#[derive(Debug)]
pub struct CTypedObList {
    base: CObList,
    ctl: BitControl,
}

impl CTypedObList {
    /// Class name used in specs and dispatch.
    pub const CLASS: &'static str = "CTypedObList";

    /// The methods this subclass redefines (same signatures, stronger
    /// precondition).
    pub const REDEFINED: [&'static str; 4] = ["AddHead", "AddTail", "SetAt", "InsertAfter"];

    /// Creates an empty typed list.
    pub fn new(ctl: BitControl, switch: MutationSwitch) -> Self {
        CTypedObList {
            base: CObList::new(ctl.clone(), switch),
            ctl,
        }
    }

    fn check_element(&self, method: &str, v: &Value) -> Result<(), TestException> {
        concat_bit::pre_condition!(&self.ctl, Self::CLASS, method, matches!(v, Value::Int(_)));
        // Deployment mode: enforce with a domain error instead, so the
        // typed invariant can never be silently broken.
        if !matches!(v, Value::Int(_)) {
            return Err(TestException::domain(method, "element must be an integer"));
        }
        Ok(())
    }
}

impl Component for CTypedObList {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        let mut names = vec!["~CTypedObList"];
        names.extend(
            self.base
                .method_names()
                .into_iter()
                .filter(|m| *m != "~CObList"),
        );
        names
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            // Redefined: type-check, then invoke the inherited behaviour.
            "AddHead" | "AddTail" => {
                args::expect_arity(method, a, 1)?;
                self.check_element(method, &a[0])?;
                self.base.invoke(method, a)
            }
            "SetAt" | "InsertAfter" => {
                args::expect_arity(method, a, 2)?;
                self.check_element(method, &a[1])?;
                self.base.invoke(method, a)
            }
            "~CTypedObList" => {
                self.base.remove_all();
                Ok(Value::Null)
            }
            "~CObList" => Err(unknown_method(self.class_name(), method)),
            inherited => self.base.invoke(inherited, a),
        }
    }
}

impl BuiltInTest for CTypedObList {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        self.base.invariant_test()?;
        // The subclass strengthens the invariant: every element is Int.
        let all_ints = self
            .base
            .values()
            .is_some_and(|vs| vs.iter().all(|v| matches!(v, Value::Int(_))));
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            Self::CLASS,
            "",
            "all elements are integers",
            all_ints,
        )
    }

    fn reporter(&self) -> StateReport {
        self.base.reporter()
    }
}

/// Factory for [`CTypedObList`] instances.
#[derive(Debug, Clone, Default)]
pub struct CTypedObListFactory {
    switch: MutationSwitch,
}

impl CTypedObListFactory {
    /// Creates a factory wired to `switch` (the inherited instrumented
    /// methods still read through it).
    pub fn new(switch: MutationSwitch) -> Self {
        CTypedObListFactory { switch }
    }
}

impl ComponentFactory for CTypedObListFactory {
    fn class_name(&self) -> &str {
        CTypedObList::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "CTypedObList" => {
                args::expect_arity(constructor, a, 0)?;
                Ok(Box::new(CTypedObList::new(ctl, self.switch.clone())))
            }
            other => Err(unknown_method(CTypedObList::CLASS, other)),
        }
    }
}

impl ClonableFactory for CTypedObListFactory {
    fn class_name(&self) -> &str {
        CTypedObList::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(CTypedObListFactory::new(switch.clone()))
    }
}

/// The t-spec of `CTypedObList`: the base interface with integer-only
/// element domains (the redefinition is visible as the tightened domain)
/// and the base model shape.
pub fn typed_spec() -> ClassSpec {
    let value = || Domain::int_range(-99, 99);
    let index = || Domain::int_range(0, 1);
    ClassSpecBuilder::new(CTypedObList::CLASS)
        .superclass("CObList")
        .attribute("m_nCount", Domain::int_range(0, 99_999))
        .attribute(
            "m_pNodeHead",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute(
            "m_pNodeTail",
            Domain::Pointer {
                class_name: "CNode".into(),
            },
        )
        .attribute("m_nBlockSize", Domain::int_range(1, 64))
        .constructor("m1", "CTypedObList")
        .method("m2", "AddHead", MethodCategory::Update)
        .param("newElement", value())
        .method("m3", "AddTail", MethodCategory::Update)
        .param("newElement", value())
        .method("m4", "RemoveHead", MethodCategory::Update)
        .returns("Value")
        .method("m5", "RemoveTail", MethodCategory::Update)
        .returns("Value")
        .method("m6", "GetHead", MethodCategory::Access)
        .returns("Value")
        .method("m7", "GetTail", MethodCategory::Access)
        .returns("Value")
        .method("m8", "GetAt", MethodCategory::Access)
        .param("index", index())
        .returns("Value")
        .method("m9", "SetAt", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m10", "InsertAfter", MethodCategory::Update)
        .param("index", index())
        .param("newElement", value())
        .method("m11", "Find", MethodCategory::Access)
        .param("searchValue", value())
        .returns("int")
        .method("m12", "RemoveAt", MethodCategory::Update)
        .param("index", index())
        .returns("Value")
        .method("m13", "GetCount", MethodCategory::Access)
        .returns("int")
        .method("m14", "IsEmpty", MethodCategory::Access)
        .returns("bool")
        .method("m15", "RemoveAll", MethodCategory::Update)
        .destructor("m16", "~CTypedObList")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2", "m3"])
        .task_node("n3", ["m2", "m3"])
        .task_node("n4", ["m6", "m7"])
        .task_node("n5", ["m8", "m11"])
        .task_node("n6", ["m9", "m10"])
        .task_node("n7", ["m4", "m5", "m12"])
        .task_node("n8", ["m13", "m14"])
        .task_node("n9", ["m15"])
        .death_node("n10", ["m16"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n3", "n4")
        .edge("n3", "n5")
        .edge("n4", "n5")
        .edge("n4", "n7")
        .edge("n5", "n6")
        .edge("n6", "n7")
        .edge("n6", "n8")
        .edge("n7", "n8")
        .edge("n7", "n9")
        .edge("n8", "n9")
        .edge("n8", "n10")
        .edge("n9", "n10")
        .build()
        .expect("CTypedObList spec is valid")
}

/// The `CObList` → `CTypedObList` inheritance map: four redefined
/// methods, no new ones — the mirror image of the sortable subclass.
pub fn typed_inheritance_map() -> InheritanceMap {
    InheritanceMap::new()
        .lifecycle(["CObList", "~CObList", "CTypedObList", "~CTypedObList"])
        .inherit([
            "RemoveHead",
            "RemoveTail",
            "GetHead",
            "GetTail",
            "GetAt",
            "RemoveAt",
            "Find",
            "GetCount",
            "IsEmpty",
            "RemoveAll",
        ])
        .redefine(CTypedObList::REDEFINED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_driver::{ReuseDecision, ReusePlan, TestingHistory};

    fn list() -> CTypedObList {
        CTypedObList::new(BitControl::new_enabled(), MutationSwitch::new())
    }

    #[test]
    fn accepts_integers_like_the_base() {
        let mut l = list();
        l.invoke("AddTail", &[Value::Int(1)]).unwrap();
        l.invoke("AddHead", &[Value::Int(0)]).unwrap();
        l.invoke("InsertAfter", &[Value::Int(0), Value::Int(5)])
            .unwrap();
        l.invoke("SetAt", &[Value::Int(2), Value::Int(9)]).unwrap();
        assert_eq!(l.invoke("GetCount", &[]).unwrap(), Value::Int(3));
        assert!(l.invariant_test().is_ok());
    }

    #[test]
    fn rejects_non_integers_with_the_strengthened_precondition() {
        let mut l = list();
        assert_eq!(
            l.invoke("AddTail", &[Value::Str("x".into())])
                .unwrap_err()
                .tag(),
            "PRECONDITION"
        );
        l.invoke("AddTail", &[Value::Int(1)]).unwrap();
        assert_eq!(
            l.invoke("SetAt", &[Value::Int(0), Value::Null])
                .unwrap_err()
                .tag(),
            "PRECONDITION"
        );
    }

    #[test]
    fn deployment_mode_still_enforces_the_type() {
        let mut l = CTypedObList::new(BitControl::new(), MutationSwitch::new());
        assert_eq!(
            l.invoke("AddTail", &[Value::Str("x".into())])
                .unwrap_err()
                .tag(),
            "DOMAIN"
        );
    }

    #[test]
    fn base_destructor_is_hidden() {
        let mut l = list();
        assert!(l.has_method("~CTypedObList"));
        assert!(!l.has_method("~CObList"));
        assert_eq!(
            l.invoke("~CObList", &[]).unwrap_err().tag(),
            "UNKNOWN_METHOD"
        );
        l.invoke("AddTail", &[Value::Int(1)]).unwrap();
        l.invoke("~CTypedObList", &[]).unwrap();
        assert_eq!(l.invoke("IsEmpty", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn spec_and_factory_are_coherent() {
        let spec = typed_spec();
        assert!(spec.validate().is_empty());
        assert_eq!(spec.superclass.as_deref(), Some("CObList"));
        let f = CTypedObListFactory::default();
        assert!(f
            .construct("CTypedObList", &[], BitControl::new_enabled())
            .is_ok());
        assert!(f
            .construct("CObList", &[], BitControl::new_enabled())
            .is_err());
    }

    #[test]
    fn reuse_plan_exercises_all_three_categories() {
        // Generate the suite from the typed model, then classify against
        // the inheritance map: some transactions touch only inherited
        // methods (skip), some touch redefined ones (retest-reused),
        // and none is obsolete.
        let suite = concat_driver::DriverGenerator::with_seed(51)
            .generate(&typed_spec())
            .unwrap();
        let plan = ReusePlan::analyze(
            &TestingHistory::from_suite(&suite),
            &typed_inheritance_map(),
        );
        let (skip, retest, obsolete) = plan.counts();
        assert!(retest > 0, "redefined methods force retests");
        assert_eq!(obsolete, 0);
        assert_eq!(skip + retest, suite.len());
        // Adds appear in every transaction of this model, so here the
        // *redefinition* (not new methods) drives every retest decision.
        for (case_id, decision) in &plan.decisions {
            let case = suite.cases.iter().find(|c| c.id == *case_id).unwrap();
            let touches_redefined = case
                .method_names()
                .iter()
                .any(|m| CTypedObList::REDEFINED.contains(m));
            match decision {
                ReuseDecision::RetestReused => assert!(touches_redefined),
                ReuseDecision::SkipRetest => assert!(!touches_redefined),
                ReuseDecision::Obsolete => unreachable!(),
            }
        }
        let _ = skip;
    }

    #[test]
    fn typed_self_test_runs_green() {
        use concat_driver::{TestLog, TestRunner};
        let suite = concat_driver::DriverGenerator::with_seed(52)
            .generate(&typed_spec())
            .unwrap();
        let runner = TestRunner::new();
        let result = runner.run_suite(&CTypedObListFactory::default(), &suite, &mut TestLog::new());
        // Value domains are integer ranges, so the typed precondition is
        // never violated by generated inputs; only index error-recovery
        // transactions abort.
        assert!(result.passed() as f64 > 0.9 * result.cases.len() as f64);
    }

    #[test]
    fn inherited_instrumentation_still_reachable() {
        // A fault armed in the base AddHead fires through the redefined
        // method's delegation.
        use concat_mutation::{FaultPlan, Replacement};
        let switch = MutationSwitch::new();
        let mut l = CTypedObList::new(BitControl::new_enabled(), switch.clone());
        l.invoke("AddHead", &[Value::Int(1)]).unwrap();
        switch.arm(FaultPlan {
            method: "AddHead".into(),
            site: 3,
            replacement: Replacement::Var("pOldHead".into()),
        });
        l.invoke("AddHead", &[Value::Int(2)]).unwrap();
        assert!(l.invariant_test().is_err());
    }
}
