//! Regenerates **Table 3** of the paper: the same interface mutation
//! operators applied to the *base class* `CObList` (`AddHead`, `RemoveAt`,
//! `RemoveHead`), but executed with the subclass's **reduced** test set —
//! the suite that remains after the §3.4.2 incremental-reuse rule skips
//! every transaction composed only of inherited methods.
//!
//! The paper reports a total score of 63.5% (per-operator 40–69.7%),
//! versus 95.7% in Table 2 — its headline caution: *not retesting
//! inherited transactions is dangerous*. The ablation at the bottom runs
//! the full base-class suite against the same mutants to isolate the
//! reuse policy as the cause.
//!
//! Run with: `cargo bench -p concat-bench --bench table3`

use concat_bench::{run_table2, run_table3, SEED, TABLE3_METHODS};
use concat_report::{render_score_table, summarize_run, Comparison};

fn main() {
    let started = std::time::Instant::now();
    let outcome = run_table3(SEED);

    println!(
        "Subclass suite: {} cases; reuse rule skipped {} inherited-only case(s); \
         reduced suite: {} cases\n",
        outcome.full_suite.len(),
        outcome.skipped,
        outcome.reduced_suite.len()
    );

    println!(
        "{}",
        render_score_table(
            "Table 3. Results obtained for the CObList class (reduced subclass test set).",
            &outcome.reduced.matrix
        )
    );
    println!("{}\n", summarize_run(&outcome.reduced.run));

    println!(
        "{}",
        render_score_table(
            "Ablation: the same mutants under the FULL CObList test suite.",
            &outcome.ablation.matrix
        )
    );
    println!("{}\n", summarize_run(&outcome.ablation.run));

    let reduced = outcome.reduced.matrix.overall();
    let ablation = outcome.ablation.matrix.overall();
    let table2 = run_table2(SEED).matrix.overall();

    let comparison = Comparison::new("Table 3")
        .row(
            "total mutants (base methods)",
            "159",
            reduced.mutants.to_string(),
            reduced.mutants > 50,
        )
        .row(
            "reduced-suite score",
            "63.5%",
            format!("{:.1}%", reduced.score_pct()),
            (0.30..=0.85).contains(&reduced.score()),
        )
        .row(
            "gap below Table 2's score",
            "95.7% - 63.5% = 32.2 points",
            format!("{:.1} points", (table2.score() - reduced.score()) * 100.0),
            table2.score() - reduced.score() > 0.15,
        )
        .row(
            "full-suite ablation restores detection",
            "(implied: retesting would catch these faults)",
            format!("{:.1}% with the full base suite", ablation.score_pct()),
            ablation.score() > 0.90 && ablation.score() > reduced.score() + 0.15,
        );
    println!("{comparison}");
    println!(
        "targets: {:?}; elapsed {:?}",
        TABLE3_METHODS,
        started.elapsed()
    );
    assert!(comparison.shape_holds(), "Table 3 shape criteria violated");
}
