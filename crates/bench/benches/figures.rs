//! Regenerates the paper's **Figures 1–7**:
//!
//! 1. the `Product` class interface;
//! 2. the TFM of `Product` with the use-case path highlighted (DOT);
//! 3. the t-spec text format;
//! 4. the `BuiltInTest` interface;
//! 5. the assertion macros;
//! 6. a generated test case as a C++ template function;
//! 7. the executable test suite structure.
//!
//! Run with: `cargo bench -p concat-bench --bench figures`

use concat_components::{product_spec, ProductFactory, FIGURE2_SCENARIO};
use concat_core::{Consumer, SelfTestableBuilder};
use concat_driver::{render_cpp_suite, render_cpp_test_case};
use concat_tfm::{enumerate_transactions, to_dot_highlighted};
use concat_tspec::{print_tspec, MethodCategory};
use std::rc::Rc;

fn heading(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================\n");
}

fn main() {
    let spec = product_spec();

    // --------------------------------------------------------------
    heading("Figure 1. Example class Product (interface reconstruction)");
    println!("class Product {{");
    for a in &spec.attributes {
        println!("    {};            // domain: {}", a.name, a.domain);
    }
    println!("  public:");
    for m in &spec.methods {
        let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
        let ret = m.return_type.as_deref().unwrap_or("void");
        let tag = match m.category {
            MethodCategory::Constructor => " // constructor",
            MethodCategory::Destructor => " // destructor",
            MethodCategory::Database => " // insert/delete from database",
            _ => "",
        };
        println!("    {} {}({});{}", ret, m.name, params.join(", "), tag);
    }
    println!("}};");

    // --------------------------------------------------------------
    heading("Figure 2. TFM of class Product (use-case path highlighted)");
    let transactions = enumerate_transactions(&spec.tfm);
    let scenario = transactions
        .iter()
        .find(|t| {
            let labels: Vec<&str> = t
                .nodes
                .iter()
                .map(|id| spec.tfm.node(*id).label.as_str())
                .collect();
            labels == FIGURE2_SCENARIO
        })
        .expect("the Figure-2 scenario is a transaction of the model");
    println!("{}", to_dot_highlighted(&spec.tfm, scenario));
    println!("Scenario: {}", scenario.describe(&spec.tfm));
    println!(
        "Model: {} nodes, {} links, {} transactions",
        spec.tfm.node_count(),
        spec.tfm.edge_count(),
        transactions.len()
    );

    // --------------------------------------------------------------
    heading("Figure 3. Test specification (t-spec) format");
    println!("{}", print_tspec(&spec));

    // --------------------------------------------------------------
    heading("Figure 4. Format of the BuiltInTest class (Rust trait)");
    println!(
        "pub trait BuiltInTest {{\n\
         \x20   /// The shared test-mode switch of this instance.\n\
         \x20   fn bit_control(&self) -> &BitControl;\n\
         \x20   /// Evaluates the class invariant against the current state.\n\
         \x20   fn invariant_test(&self) -> Result<(), AssertionViolation>;\n\
         \x20   /// Captures the object's internal state for the log/oracle.\n\
         \x20   fn reporter(&self) -> StateReport;\n\
         }}"
    );

    // --------------------------------------------------------------
    heading("Figure 5. Macros used for assertion definition");
    println!(
        "class_invariant!(ctl, \"Product\", \"UpdateQty\", qty >= 1);\n\
         pre_condition!  (ctl, \"Product\", \"UpdateQty\", (1..=99999).contains(&q));\n\
         post_condition! (ctl, \"Product\", \"Sort1\",     count_unchanged && sum_unchanged);\n\
         // a violated predicate aborts the method with\n\
         // Err(TestException::Assertion {{ kind, class, method, message }})\n\
         // — the Rust analogue of the paper's `throw \"...is violated!\"`."
    );

    // --------------------------------------------------------------
    let bundle = SelfTestableBuilder::new(spec, Rc::new(ProductFactory::new())).build();
    let consumer = Consumer::with_seed(concat_bench::SEED);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let case = suite
        .iter()
        .find(|c| c.node_path == FIGURE2_SCENARIO)
        .expect("a case covers the scenario");

    heading("Figure 6. Example of test case format (generated C++)");
    println!("{}", render_cpp_test_case(case));

    heading("Figure 7. Executable test suite structure (generated C++)");
    // Print the suite skeleton for the first few cases to stay readable.
    let preview = suite.filtered(&suite.cases.iter().take(4).map(|c| c.id).collect::<Vec<_>>());
    println!("{}", render_cpp_suite(&preview));
    println!(
        "(… {} further test case instantiations elided; the full suite has {} cases.)",
        suite.len().saturating_sub(4),
        suite.len()
    );
}
