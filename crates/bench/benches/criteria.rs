//! Criterion-strength ablation: how much does the paper's *transaction
//! coverage* criterion buy over the weaker rungs of Beizer's ladder?
//!
//! The paper calls transaction coverage "the weakest criterion among the
//! ones presented in [Beizer 95]" — weakest among *path-based* criteria,
//! but still strictly stronger than node (all public features once) and
//! edge (all links once) coverage. This bench selects suites under each
//! criterion and measures their mutation scores against the Table-2
//! mutant set.
//!
//! Run with: `cargo bench -p concat-bench --bench criteria`

use concat_bench::{sortable_bundle, PROBE_SEEDS, SEED, TABLE2_METHODS};
use concat_core::Consumer;
use concat_driver::{select_transactions, DriverGenerator, GeneratorConfig, SelectionCriterion};
use concat_report::{AsciiTable, Comparison};
use concat_tfm::EnumerationConfig;

fn main() {
    let started = std::time::Instant::now();
    let bundle = sortable_bundle();
    let consumer = Consumer::with_seed(SEED);
    let config = GeneratorConfig {
        seed: SEED,
        ..GeneratorConfig::default()
    };

    let mut rows = Vec::new();
    for criterion in SelectionCriterion::LADDER {
        let selection = select_transactions(
            &bundle.spec().tfm,
            criterion,
            EnumerationConfig {
                cycle_bound: config.cycle_bound,
                max_transactions: config.max_transactions,
            },
        );
        assert!(selection.is_complete(), "{criterion} must be achievable");
        let mut gen = DriverGenerator::new(config);
        let suite = gen
            .generate_selected(bundle.spec(), Some(&selection.transaction_indices))
            .expect("spec generates");
        let run = consumer
            .evaluate_quality(&bundle, &suite, &TABLE2_METHODS, &PROBE_SEEDS)
            .expect("bundle carries mutation support");
        rows.push((
            criterion,
            selection.transaction_indices.len(),
            suite.len(),
            run,
        ));
    }

    let mut t = AsciiTable::new(vec![
        "Criterion".into(),
        "Transactions".into(),
        "Cases".into(),
        "#killed".into(),
        "Score".into(),
    ]);
    t.numeric();
    for (criterion, txns, cases, run) in &rows {
        t.row(vec![
            criterion.name().into(),
            txns.to_string(),
            cases.to_string(),
            run.killed().to_string(),
            format!("{:.1}%", run.score() * 100.0),
        ]);
    }
    println!("Criterion-strength ablation (Table 2 mutant set)\n{t}");

    let kills: Vec<usize> = rows.iter().map(|(_, _, _, r)| r.killed()).collect();
    let sizes: Vec<usize> = rows.iter().map(|(_, _, c, _)| *c).collect();
    let comparison = Comparison::new("Criterion ladder")
        .row(
            "suite size grows with criterion strength",
            "(transaction coverage is the strongest of the three)",
            format!("{sizes:?} cases"),
            sizes.windows(2).all(|w| w[0] <= w[1]),
        )
        .row(
            "detection never drops with a stronger criterion",
            "(implied by test-set inclusion)",
            format!("{kills:?} kills"),
            kills.windows(2).all(|w| w[0] <= w[1]),
        )
        .row(
            "even all-nodes coverage detects most faults",
            "(the paper's criterion choice is pragmatic, not maximal)",
            format!("{:.1}% with all-nodes", rows[0].3.score() * 100.0),
            rows[0].3.score() > 0.5,
        );
    println!("{comparison}");
    println!("elapsed {:?}", started.elapsed());
    assert!(comparison.shape_holds(), "criterion ladder shape violated");
}
