//! Micro-benchmarks of the pipeline stages: transaction enumeration,
//! suite generation, suite execution, and mutation analysis throughput.
//! These are not paper artefacts (the paper reports no performance
//! numbers); they document the cost profile of the reproduction and
//! guard against performance regressions.
//!
//! The harness is hand-rolled (the build environment is offline, so no
//! criterion): each benchmark runs a timed batch repeatedly for a fixed
//! wall-clock budget and reports min/median ns per iteration. The final
//! pair of rows compares `run_suite` with telemetry disabled against
//! telemetry over a `NullSink` — the acceptance bar is that the NullSink
//! path costs nothing measurable (±5%).
//!
//! Run with: `cargo bench -p concat-bench --bench perf`

use concat_bench::{coblist_bundle, sortable_bundle, SEED};
use concat_components::{sortable_inventory, sortable_spec, CSortableObListFactory};
use concat_core::Consumer;
use concat_driver::{TestLog, TestRunner};
use concat_mutation::{
    enumerate_mutants, run_mutation_analysis, run_mutation_analysis_parallel, MutationConfig,
};
use concat_obs::{NullSink, Telemetry};
use concat_tfm::{enumerate_transactions, NodeKind, Tfm};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs `f` repeatedly for ~`budget`, returning (min, median) nanoseconds
/// per call over the collected samples.
fn measure(budget: Duration, mut f: impl FnMut()) -> (u64, u64) {
    // warmup
    let warm_until = Instant::now() + budget / 5;
    while Instant::now() < warm_until {
        f();
    }
    let mut samples: Vec<u64> = Vec::new();
    let run_until = Instant::now() + budget;
    while Instant::now() < run_until {
        let t0 = Instant::now();
        f();
        samples.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or(0);
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
    (min, median)
}

fn report(name: &str, (min, median): (u64, u64)) -> u64 {
    println!("{name:<44} min {min:>12} ns    median {median:>12} ns");
    median
}

const BUDGET: Duration = Duration::from_millis(300);

/// Layered DAG with `layers` task layers of `width` nodes each, fully
/// connected layer to layer — a TFM stress shape.
fn layered_tfm(layers: usize, width: usize) -> Tfm {
    let mut tfm = Tfm::new("Layered");
    let birth = tfm.add_node("birth", NodeKind::Birth, ["New"]);
    let mut prev = vec![birth];
    for l in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for w in 0..width {
            let id = tfm.add_node(format!("t{l}_{w}"), NodeKind::Task, [format!("M{l}_{w}")]);
            for p in &prev {
                tfm.add_edge(*p, id);
            }
            layer.push(id);
        }
        prev = layer;
    }
    let death = tfm.add_node("death", NodeKind::Death, ["Drop"]);
    for p in &prev {
        tfm.add_edge(*p, death);
    }
    tfm
}

fn main() {
    println!("== perf: pipeline stage micro-benchmarks ==\n");

    for (layers, width) in [(4, 2), (6, 2), (8, 2), (4, 3)] {
        let tfm = layered_tfm(layers, width);
        let paths = enumerate_transactions(&tfm).len();
        report(
            &format!("tfm/enumerate {layers}x{width} ({paths} paths)"),
            measure(BUDGET, || {
                black_box(enumerate_transactions(black_box(&tfm)).len());
            }),
        );
    }

    let bundle = sortable_bundle();
    report(
        "driver/generate_sortable_suite",
        measure(BUDGET, || {
            let consumer = Consumer::with_seed(SEED);
            black_box(consumer.generate(&bundle).unwrap().len());
        }),
    );

    for (name, bundle) in [
        ("coblist", coblist_bundle()),
        ("sortable", sortable_bundle()),
    ] {
        let consumer = Consumer::with_seed(SEED);
        let suite = consumer.generate(&bundle).unwrap();
        report(
            &format!("driver/run_suite/{name} ({} cases)", suite.len()),
            measure(BUDGET, || {
                let mut log = TestLog::new();
                let runner = TestRunner::new();
                black_box(
                    runner
                        .run_suite(bundle.factory(), &suite, &mut log)
                        .passed(),
                );
            }),
        );
    }

    // One method's mutants against a reduced suite: a unit of mutation
    // work small enough to iterate.
    let bundle = sortable_bundle();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).unwrap();
    let small = suite.filtered(
        &suite
            .cases
            .iter()
            .map(|c| c.id)
            .take(60)
            .collect::<Vec<_>>(),
    );
    let mutants = enumerate_mutants(&sortable_inventory(), &["FindMax"]);
    report(
        &format!(
            "mutation/findmax ({} mutants x {} cases)",
            mutants.len(),
            small.len()
        ),
        measure(BUDGET, || {
            let run = run_mutation_analysis(
                bundle.factory(),
                bundle.switch().unwrap(),
                &small,
                &mutants,
                &MutationConfig::default(),
            );
            black_box(run.killed());
        }),
    );

    // Parallel engine smoke: one-shot wall-clock, workers=1 vs workers=4,
    // on the same findmax workload. This subject is CPU-bound, so the
    // figures document merge/spawn overhead rather than a speedup (the
    // stall-prone subject in examples/mutation_demo.rs shows the speedup);
    // the verdict check guards the deterministic merge under bench load.
    let shards = CSortableObListFactory::default();
    let mut smoke = Vec::new();
    for workers in [1usize, 4] {
        let config = MutationConfig {
            workers,
            ..MutationConfig::default()
        };
        let t0 = Instant::now();
        let run = run_mutation_analysis_parallel(&shards, &small, &mutants, &config);
        smoke.push((run, t0.elapsed()));
    }
    assert_eq!(
        smoke[0].0.results, smoke[1].0.results,
        "parallel smoke: verdicts must not depend on the worker count"
    );
    println!(
        "mutation/findmax parallel smoke: workers=1 {:?}, workers=4 {:?} (verdicts identical)",
        smoke[0].1, smoke[1].1
    );

    let spec = sortable_spec();
    report(
        "tspec/validate_sortable",
        measure(BUDGET, || {
            black_box(spec.validate().len());
        }),
    );
    report(
        "tspec/print_parse_roundtrip",
        measure(BUDGET, || {
            let text = concat_tspec::print_tspec(&spec);
            black_box(concat_tspec::parse_tspec(&text).unwrap().methods.len());
        }),
    );

    // Telemetry overhead check: a disabled handle vs. a NullSink-backed
    // handle (which must collapse to the same fast path). The two medians
    // should agree within noise; a wide gap is a regression in the
    // telemetry fast path.
    let bundle = coblist_bundle();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).unwrap();
    let off = report(
        "obs/run_suite telemetry=disabled",
        measure(BUDGET, || {
            let mut log = TestLog::new();
            let runner = TestRunner::new();
            black_box(
                runner
                    .run_suite(bundle.factory(), &suite, &mut log)
                    .passed(),
            );
        }),
    );
    let null = report(
        "obs/run_suite telemetry=NullSink",
        measure(BUDGET, || {
            let mut log = TestLog::new();
            let runner = TestRunner::new().with_telemetry(Telemetry::new(Arc::new(NullSink)));
            black_box(
                runner
                    .run_suite(bundle.factory(), &suite, &mut log)
                    .passed(),
            );
        }),
    );
    let delta_pct = if off == 0 {
        0.0
    } else {
        (null as f64 - off as f64) * 100.0 / off as f64
    };
    println!("\nobs/null-sink overhead: {delta_pct:+.2}% (bar: within ±5%)");
}
