//! Criterion micro-benchmarks of the pipeline stages: transaction
//! enumeration, suite generation, suite execution, and mutation analysis
//! throughput. These are not paper artefacts (the paper reports no
//! performance numbers); they document the cost profile of the
//! reproduction and guard against performance regressions.
//!
//! Run with: `cargo bench -p concat-bench --bench perf`

use concat_bench::{coblist_bundle, sortable_bundle, SEED, TABLE2_METHODS};
use concat_components::{sortable_inventory, sortable_spec};
use concat_core::Consumer;
use concat_driver::{TestLog, TestRunner};
use concat_mutation::{enumerate_mutants, run_mutation_analysis, MutationConfig};
use concat_tfm::{enumerate_transactions, NodeKind, Tfm};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

/// Layered DAG with `layers` task layers of `width` nodes each, fully
/// connected layer to layer — a TFM stress shape.
fn layered_tfm(layers: usize, width: usize) -> Tfm {
    let mut tfm = Tfm::new("Layered");
    let birth = tfm.add_node("birth", NodeKind::Birth, ["New"]);
    let mut prev = vec![birth];
    for l in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for w in 0..width {
            let id = tfm.add_node(format!("t{l}_{w}"), NodeKind::Task, [format!("M{l}_{w}")]);
            for p in &prev {
                tfm.add_edge(*p, id);
            }
            layer.push(id);
        }
        prev = layer;
    }
    let death = tfm.add_node("death", NodeKind::Death, ["Drop"]);
    for p in &prev {
        tfm.add_edge(*p, death);
    }
    tfm
}

fn bench_transaction_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("tfm/enumerate_transactions");
    for (layers, width) in [(4, 2), (6, 2), (8, 2), (4, 3)] {
        let tfm = layered_tfm(layers, width);
        let paths = enumerate_transactions(&tfm).len();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}x{width}({paths} paths)")),
            &tfm,
            |b, tfm| b.iter(|| black_box(enumerate_transactions(tfm).len())),
        );
    }
    group.finish();
}

fn bench_suite_generation(c: &mut Criterion) {
    let bundle = sortable_bundle();
    c.bench_function("driver/generate_sortable_suite", |b| {
        b.iter(|| {
            let consumer = Consumer::with_seed(SEED);
            black_box(consumer.generate(&bundle).unwrap().len())
        })
    });
}

fn bench_suite_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver/run_suite");
    for (name, bundle) in [("coblist", coblist_bundle()), ("sortable", sortable_bundle())] {
        let consumer = Consumer::with_seed(SEED);
        let suite = consumer.generate(&bundle).unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{name}({} cases)", suite.len())), |b| {
            b.iter_batched(
                TestLog::new,
                |mut log| {
                    let runner = TestRunner::new();
                    black_box(runner.run_suite(bundle.factory(), &suite, &mut log).passed())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_mutation_analysis(c: &mut Criterion) {
    // One method's mutants against a reduced suite: a unit of mutation
    // work small enough to iterate.
    let bundle = sortable_bundle();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).unwrap();
    let small = suite.filtered(&suite.cases.iter().map(|c| c.id).take(60).collect::<Vec<_>>());
    let mutants = enumerate_mutants(&sortable_inventory(), &["FindMax"]);
    c.bench_function(
        &format!("mutation/findmax({}mutants x {}cases)", mutants.len(), small.len()),
        |b| {
            b.iter(|| {
                let run = run_mutation_analysis(
                    bundle.factory(),
                    bundle.switch().unwrap(),
                    &small,
                    &mutants,
                    &MutationConfig::default(),
                );
                black_box(run.killed())
            })
        },
    );
}

fn bench_spec_validation(c: &mut Criterion) {
    let spec = sortable_spec();
    c.bench_function("tspec/validate_sortable", |b| {
        b.iter(|| black_box(spec.validate().len()))
    });
    c.bench_function("tspec/print_parse_roundtrip", |b| {
        b.iter(|| {
            let text = concat_tspec::print_tspec(&spec);
            black_box(concat_tspec::parse_tspec(&text).unwrap().methods.len())
        })
    });
    let _ = TABLE2_METHODS;
}

criterion_group!(
    benches,
    bench_transaction_enumeration,
    bench_suite_generation,
    bench_suite_execution,
    bench_mutation_analysis,
    bench_spec_validation
);
criterion_main!(benches);
