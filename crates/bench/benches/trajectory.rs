//! The perf-trajectory harness: runs the two paper subjects
//! (`CObList`, `CSortableObList`) through the full mutation campaign at
//! workers ∈ {1, 4} with the telemetry spine recording, and writes the
//! measured trajectory to `BENCH_6.json` at the workspace root —
//! phase-level wall-clock attribution (total and self time per span
//! kind), per-mutant execution latency quantiles (p50/p99 from the
//! fixed-bucket histogram), and the coverage-selection skip ratio.
//!
//! Two invariants are asserted while measuring, so the artifact can only
//! be produced by a healthy build:
//!
//! * verdicts are byte-identical across worker counts, and
//! * verdicts are byte-identical with telemetry attached vs. detached
//!   (the flight recorder must not perturb the campaign).
//!
//! Run with: `cargo bench -p concat-bench --bench trajectory`
//!
//! The harness is hand-rolled (offline build: no criterion, no serde);
//! the JSON is assembled by string building over `escape_json`.

use concat_bench::{
    coblist_bundle_sharded, sortable_bundle_sharded, PROBE_SEEDS, SEED, TABLE2_METHODS,
    TABLE3_METHODS,
};
use concat_core::{Consumer, SelfTestable};
use concat_mutation::MutationRun;
use concat_obs::{escape_json, Histogram, MemorySink, Summary, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Span kinds reported in the phase breakdown, in emission order.
const PHASES: [&str; 9] = [
    "mutation", "golden", "worker", "mutant", "probe", "suite", "case", "merge", "journal",
];

/// Worker counts the trajectory is measured at.
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// One measured campaign: the run, its telemetry summary, and the
/// wall-clock the harness observed around it.
struct Measured {
    workers: usize,
    run: MutationRun,
    summary: Summary,
    wall_nanos: u64,
}

fn run_campaign(bundle: &SelfTestable, methods: &[&str], workers: usize) -> Measured {
    let sink = Arc::new(MemorySink::new());
    let consumer = Consumer::with_seed(SEED)
        .with_telemetry(Telemetry::new(sink.clone()))
        .with_workers(workers);
    let suite = consumer.generate(bundle).expect("spec generates");
    let t0 = Instant::now();
    let run = consumer
        .evaluate_quality(bundle, &suite, methods, &PROBE_SEEDS)
        .expect("bundle carries mutation support and shards");
    let wall_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Measured {
        workers,
        run,
        summary: sink.summary(),
        wall_nanos,
    }
}

/// The same campaign with telemetry fully detached — the baseline the
/// traced runs must agree with verdict for verdict.
fn run_untraced(bundle: &SelfTestable, methods: &[&str], workers: usize) -> MutationRun {
    let consumer = Consumer::with_seed(SEED).with_workers(workers);
    let suite = consumer.generate(bundle).expect("spec generates");
    consumer
        .evaluate_quality(bundle, &suite, methods, &PROBE_SEEDS)
        .expect("bundle carries mutation support and shards")
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"p50_nanos\":{},\"p99_nanos\":{},\"mean_nanos\":{},\"max_nanos\":{}}}",
        h.count(),
        h.quantile_nanos(0.50),
        h.quantile_nanos(0.99),
        h.mean_nanos(),
        h.max_nanos()
    )
}

fn phases_json(summary: &Summary) -> String {
    let mut parts = Vec::new();
    for kind in PHASES {
        let Some(h) = summary.histogram(kind) else {
            continue;
        };
        let self_nanos = summary
            .self_histogram(kind)
            .map(Histogram::sum_nanos)
            .unwrap_or(0);
        parts.push(format!(
            "\"{}\":{{\"count\":{},\"total_nanos\":{},\"self_nanos\":{}}}",
            escape_json(kind),
            h.count(),
            h.sum_nanos(),
            self_nanos
        ));
    }
    format!("{{{}}}", parts.join(","))
}

fn run_json(m: &Measured) -> String {
    let skipped = m.summary.counter("selection.skipped");
    let executed = m
        .summary
        .histogram("case")
        .map(Histogram::count)
        .unwrap_or(0);
    let skip_ratio = if skipped + executed == 0 {
        0.0
    } else {
        skipped as f64 / (skipped + executed) as f64
    };
    let mutant_latency = m
        .summary
        .histogram("mutant")
        .map(histogram_json)
        .unwrap_or_else(|| "null".to_owned());
    format!(
        "{{\"workers\":{},\"wall_nanos\":{},\"score\":{:.4},\"mutants\":{},\"killed\":{},\
         \"quarantined\":{},\"phases\":{},\"mutant_latency\":{},\
         \"selection\":{{\"skipped\":{},\"executed_cases\":{},\"skip_ratio\":{:.4}}},\
         \"heartbeats\":{}}}",
        m.workers,
        m.wall_nanos,
        m.run.score(),
        m.run.total(),
        m.run.killed(),
        m.run.quarantined(),
        phases_json(&m.summary),
        mutant_latency,
        skipped,
        executed,
        skip_ratio,
        m.summary.snapshots.len()
    )
}

fn subject_json(class: &str, methods: &[&str], runs: &[Measured]) -> String {
    let methods_json: Vec<String> = methods
        .iter()
        .map(|m| format!("\"{}\"", escape_json(m)))
        .collect();
    let runs_json: Vec<String> = runs.iter().map(run_json).collect();
    format!(
        "{{\"class\":\"{}\",\"methods\":[{}],\"runs\":[{}]}}",
        escape_json(class),
        methods_json.join(","),
        runs_json.join(",")
    )
}

/// One measurable subject: class name, bundle builder, target methods.
type Subject = (&'static str, fn() -> SelfTestable, &'static [&'static str]);

fn main() {
    println!("== trajectory: phase attribution + per-mutant latency ==\n");
    let subjects: [Subject; 2] = [
        ("CObList", coblist_bundle_sharded, &TABLE3_METHODS),
        ("CSortableObList", sortable_bundle_sharded, &TABLE2_METHODS),
    ];

    let mut subject_blobs = Vec::new();
    for (class, build, methods) in subjects {
        let bundle = build();
        let mut runs = Vec::new();
        for workers in WORKER_COUNTS {
            let measured = run_campaign(&bundle, methods, workers);
            let untraced = run_untraced(&bundle, methods, workers);
            assert_eq!(
                measured.run.results, untraced.results,
                "{class}: tracing must not perturb verdicts (workers={workers})"
            );
            let mutation_total = measured
                .summary
                .histogram("mutation")
                .map(Histogram::sum_nanos)
                .unwrap_or(0);
            println!(
                "{class:<16} workers={workers}: wall {:>12} ns, campaign span {:>12} ns, \
                 {} mutants, score {:.3}, {} heartbeat(s)",
                measured.wall_nanos,
                mutation_total,
                measured.run.total(),
                measured.run.score(),
                measured.summary.snapshots.len()
            );
            runs.push(measured);
        }
        assert_eq!(
            runs[0].run.results, runs[1].run.results,
            "{class}: verdicts must be identical for every worker count"
        );
        subject_blobs.push(subject_json(class, methods, &runs));
    }

    let json = format!(
        "{{\"bench\":\"trajectory\",\"seed\":{},\"probe_seeds\":[{}],\"workers\":[{}],\
         \"subjects\":[{}]}}\n",
        SEED,
        PROBE_SEEDS.map(|s| s.to_string()).join(","),
        WORKER_COUNTS.map(|w| w.to_string()).join(","),
        subject_blobs.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, &json).expect("BENCH_6.json written");
    println!("\nwrote {} ({} bytes)", path, json.len());
}
