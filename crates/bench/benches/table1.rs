//! Regenerates **Table 1** of the paper: the interface mutation operators
//! applied in the experiments, plus the G/L/E/RC legend.
//!
//! Run with: `cargo bench -p concat-bench --bench table1`

use concat_report::{render_operator_table, Comparison};

fn main() {
    println!("{}", render_operator_table());

    let comparison = Comparison::new("Table 1")
        .row("operator count", "5", "5", true)
        .row(
            "operator set",
            "IndVarBitNeg, IndVarRepGlob, IndVarRepLoc, IndVarRepExt, IndVarRepReq",
            "identical (catalogue is reproduced verbatim)",
            true,
        )
        .row(
            "required constants RC",
            "NULL, MAXINT, MININT, …",
            "NULL, MAXINT, MININT, 0, 1, -1",
            true,
        );
    println!("{comparison}");
    assert!(comparison.shape_holds());
}
