//! Regenerates **Table 2** of the paper: interface mutation analysis of
//! the `CSortableObList` class — faults injected into the five new
//! methods (`Sort1`, `Sort2`, `ShellSort`, `FindMax`, `FindMin`), killed
//! by the full generated subclass test suite.
//!
//! The paper reports 700 mutants, 652 killed (59 by assertion violation),
//! 19 equivalent, total score 95.7%, on a 16-node/43-link test model with
//! 233 newly generated test cases. Our re-implemented subjects yield
//! different absolute counts; the shape criteria checked at the bottom
//! are: high per-operator scores, equivalents concentrated in
//! `IndVarRepReq`, and a visible minority of kills owed to the assertion
//! partial oracle.
//!
//! Run with: `cargo bench -p concat-bench --bench table2`

use concat_bench::{run_table2, SEED, TABLE2_METHODS};
use concat_driver::{ReusePlan, TestingHistory};
use concat_mutation::MutationOperator;
use concat_report::{render_score_table, summarize_run, Comparison};

fn main() {
    let started = std::time::Instant::now();
    let outcome = run_table2(SEED);

    // The paper reports the test-set size alongside the table.
    let bundle = concat_bench::sortable_bundle();
    let history = TestingHistory::from_suite(&outcome.suite);
    let plan = ReusePlan::analyze(&history, bundle.inheritance().expect("map attached"));
    let (reusable_as_is, new_method_cases, _) = plan.counts();
    println!(
        "Test model: {} nodes, {} links; suite: {} cases ({} exercising new methods, \
         {} reusable-as-is from the superclass)\n",
        bundle.spec().tfm.node_count(),
        bundle.spec().tfm.edge_count(),
        outcome.suite.len(),
        new_method_cases,
        reusable_as_is,
    );

    println!(
        "{}",
        render_score_table(
            "Table 2. Results obtained for the CSortableObList class.",
            &outcome.matrix
        )
    );
    println!("{}\n", summarize_run(&outcome.run));

    let overall = outcome.matrix.overall();
    let req = outcome.matrix.column(MutationOperator::IndVarRepReq);
    let min_op_score = MutationOperator::ALL
        .iter()
        .map(|op| outcome.matrix.column(*op).score())
        .fold(f64::INFINITY, f64::min);
    let assertion_share =
        outcome.run.killed_by_assertion() as f64 / outcome.run.killed().max(1) as f64;

    let comparison = Comparison::new("Table 2")
        .row(
            "total mutants",
            "700",
            overall.mutants.to_string(),
            overall.mutants > 100,
        )
        .row(
            "total mutation score",
            "95.7%",
            format!("{:.1}%", overall.score_pct()),
            overall.score() > 0.90,
        )
        .row(
            "weakest per-operator score",
            "85.7% (IndVarBitNeg)",
            format!("{:.1}%", min_op_score * 100.0),
            min_op_score > 0.85,
        )
        .row(
            "equivalent mutants",
            "19 of 700 (15 in IndVarRepReq)",
            format!(
                "{} of {} ({} in IndVarRepReq)",
                overall.equivalent, overall.mutants, req.equivalent
            ),
            req.equivalent * 2 >= overall.equivalent,
        )
        .row(
            "kills by assertion violation",
            "59 of 652 (~9%)",
            format!(
                "{} of {} (~{:.0}%)",
                outcome.run.killed_by_assertion(),
                outcome.run.killed(),
                assertion_share * 100.0
            ),
            outcome.run.killed_by_assertion() > 0 && assertion_share < 0.5,
        )
        .row(
            "new test cases generated",
            "233",
            new_method_cases.to_string(),
            (100..=600).contains(&new_method_cases),
        );
    println!("{comparison}");
    println!(
        "targets: {:?}; elapsed {:?}",
        TABLE2_METHODS,
        started.elapsed()
    );
    assert!(comparison.shape_holds(), "Table 2 shape criteria violated");
}
