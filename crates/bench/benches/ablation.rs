//! Ablation study: **what do the built-in assertions buy?**
//!
//! The paper argues (§4) that "assertions, besides improving testability,
//! help to improve fault-revealing effectiveness" while also noting that
//! "assertions alone do not constitute an effective oracle". This bench
//! isolates both claims by re-running the Table 2 and Table 3 mutant sets
//! with BIT disabled (no invariant/pre/post checks — deployment mode) and
//! comparing against the BIT-enabled runs:
//!
//! * with BIT **on**, a fraction of kills comes from assertion violations;
//! * with BIT **off**, those kills must be re-detected by the golden
//!   output comparison or are lost — the score can only stay or drop;
//! * in neither configuration do assertions alone reach the combined
//!   score (they are a *partial* oracle).
//!
//! Run with: `cargo bench -p concat-bench --bench ablation`

use concat_bench::{
    coblist_bundle, sortable_bundle, PROBE_SEEDS, SEED, TABLE2_METHODS, TABLE3_METHODS,
};
use concat_core::{Consumer, SelfTestable};
use concat_report::{AsciiTable, Comparison};

struct Arm {
    label: &'static str,
    killed: usize,
    by_assertion: usize,
    score: f64,
}

fn run_arm(bundle: &SelfTestable, methods: &[&str], bit_enabled: bool, label: &'static str) -> Arm {
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(bundle).expect("spec generates");
    let run = consumer
        .evaluate_quality_with(bundle, &suite, methods, &PROBE_SEEDS, bit_enabled)
        .expect("bundle carries mutation support");
    Arm {
        label,
        killed: run.killed(),
        by_assertion: run.killed_by_assertion(),
        score: run.score(),
    }
}

fn print_arms(title: &str, arms: &[Arm]) {
    let mut t = AsciiTable::new(vec![
        "Configuration".into(),
        "#killed".into(),
        "by assertion".into(),
        "score".into(),
    ]);
    t.numeric();
    for a in arms {
        t.row(vec![
            a.label.into(),
            a.killed.to_string(),
            a.by_assertion.to_string(),
            format!("{:.1}%", a.score * 100.0),
        ]);
    }
    println!("{title}\n{t}");
}

fn main() {
    let started = std::time::Instant::now();

    let sortable = sortable_bundle();
    let t2_on = run_arm(&sortable, &TABLE2_METHODS, true, "BIT on (test mode)");
    let t2_off = run_arm(&sortable, &TABLE2_METHODS, false, "BIT off (deployment)");
    print_arms(
        "Ablation A — Table 2 mutants (CSortableObList new methods)",
        &[t2_on, t2_off],
    );

    let base = coblist_bundle();
    let t3_on = run_arm(&base, &TABLE3_METHODS, true, "BIT on (test mode)");
    let t3_off = run_arm(&base, &TABLE3_METHODS, false, "BIT off (deployment)");
    print_arms(
        "Ablation B — Table 3 mutants (CObList base methods, full base suite)",
        &[t3_on, t3_off],
    );

    let rerun_on = run_arm(&sortable, &TABLE2_METHODS, true, "on");
    let rerun_off = run_arm(&sortable, &TABLE2_METHODS, false, "off");
    let base_on = run_arm(&base, &TABLE3_METHODS, true, "on");
    let base_off = run_arm(&base, &TABLE3_METHODS, false, "off");

    let comparison = Comparison::new("Ablation (assertions on/off)")
        .row(
            "assertion kills exist with BIT on",
            "59 of 652 kills by assertion",
            format!(
                "{} (T2) + {} (T3) assertion kills",
                rerun_on.by_assertion, base_on.by_assertion
            ),
            rerun_on.by_assertion > 0 && base_on.by_assertion > 0,
        )
        .row(
            "assertion kills vanish with BIT off",
            "(implied by the BIT access control)",
            format!("{} + {}", rerun_off.by_assertion, base_off.by_assertion),
            rerun_off.by_assertion == 0 && base_off.by_assertion == 0,
        )
        .row(
            "assertions never reduce detection",
            "assertions help to improve effectiveness",
            format!(
                "T2 kills {} (on) vs {} (off); T3 kills {} (on) vs {} (off)",
                rerun_on.killed, rerun_off.killed, base_on.killed, base_off.killed
            ),
            rerun_on.killed >= rerun_off.killed && base_on.killed >= base_off.killed,
        )
        .row(
            "assertions alone are not the whole oracle",
            "assertions alone do not constitute an effective oracle",
            format!(
                "assertion share of kills: {:.0}% (T2), {:.0}% (T3)",
                100.0 * rerun_on.by_assertion as f64 / rerun_on.killed.max(1) as f64,
                100.0 * base_on.by_assertion as f64 / base_on.killed.max(1) as f64
            ),
            rerun_on.by_assertion < rerun_on.killed,
        );
    println!("{comparison}");
    println!("elapsed {:?}", started.elapsed());
    assert!(comparison.shape_holds(), "ablation shape criteria violated");
}
