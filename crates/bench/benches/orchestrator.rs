//! The campaign-service throughput harness: drives the orchestrator
//! fleet at sizes {2, 4}, first with a single campaign and then with
//! three concurrent campaigns multiplexed over the same slots, and
//! writes the measured throughput to `BENCH_9.json` at the workspace
//! root — mutants/sec per leg, so the artifact shows what admitting
//! neighbors costs (or saves, once the fleet has slots to spare).
//!
//! One invariant is asserted while measuring, so the artifact can only
//! be produced by a healthy build: every orchestrated campaign's
//! verdicts must be byte-identical to running the same campaign alone
//! through the solo engine, at every fleet size and neighbor count.
//!
//! Run with: `cargo bench -p concat-bench --bench orchestrator`
//!
//! The harness is hand-rolled (offline build: no criterion, no serde);
//! the JSON is assembled by string building.

use concat_bench::{
    coblist_bundle_sharded, sortable_bundle_sharded, PROBE_SEEDS, SEED, TABLE2_METHODS,
    TABLE3_METHODS,
};
use concat_core::{Consumer, SelfTestable};
use concat_mutation::{
    CampaignEnd, CampaignRequest, MutationRun, Orchestrator, OrchestratorConfig,
};
use std::time::Instant;

/// Fleet sizes the service is measured at.
const FLEETS: [usize; 2] = [2, 4];

/// Mutants per lease; small leases keep concurrent campaigns interleaved
/// instead of draining one queue at a time.
const LEASE_SIZE: usize = 4;

/// Builds a fresh, submit-ready request for a named campaign.
type Build = fn(&str) -> CampaignRequest;

/// One orchestrated campaign: display name, request builder, and the
/// solo-run golden its fleet verdicts must reproduce.
type Job<'a> = (&'a str, Build, &'a MutationRun);

/// One measured service leg.
struct Leg {
    fleet: usize,
    campaigns: usize,
    mutants: u64,
    wall_nanos: u64,
}

impl Leg {
    fn mutants_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.mutants as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

fn sortable_request(name: &str) -> CampaignRequest {
    let bundle = sortable_bundle_sharded();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).expect("sortable spec generates");
    let mut request = consumer
        .campaign_request(&bundle, &suite, &TABLE2_METHODS, &PROBE_SEEDS)
        .expect("bundle carries mutation support and shards");
    request.name = name.to_owned();
    request
}

fn coblist_request(name: &str) -> CampaignRequest {
    let bundle = coblist_bundle_sharded();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).expect("coblist spec generates");
    let mut request = consumer
        .campaign_request(&bundle, &suite, &TABLE3_METHODS, &PROBE_SEEDS)
        .expect("bundle carries mutation support and shards");
    request.name = name.to_owned();
    request
}

/// The solo-engine golden the fleet must agree with verdict for verdict.
fn solo_golden(build: fn() -> SelfTestable, methods: &[&str]) -> MutationRun {
    let bundle = build();
    let consumer = Consumer::with_seed(SEED);
    let suite = consumer.generate(&bundle).expect("spec generates");
    consumer
        .evaluate_quality(&bundle, &suite, methods, &PROBE_SEEDS)
        .expect("bundle carries mutation support")
}

/// Starts a fleet, submits every job, waits for completion, and returns
/// the leg's wall-clock. Request construction (suite generation, mutant
/// enumeration) happens before the clock starts — the leg measures the
/// service, not the generator.
fn run_fleet(fleet: usize, jobs: &[Job<'_>]) -> Leg {
    let requests: Vec<CampaignRequest> = jobs.iter().map(|(name, build, _)| build(name)).collect();
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: fleet,
        lease_size: LEASE_SIZE,
        ..OrchestratorConfig::default()
    });
    let t0 = Instant::now();
    let ids: Vec<_> = requests
        .into_iter()
        .map(|request| orch.submit(request).expect("fleet admits the campaign"))
        .collect();
    let mut mutants = 0u64;
    for (id, (name, _, golden)) in ids.into_iter().zip(jobs) {
        let outcome = orch.wait(id).expect("campaign reaches a terminal phase");
        let CampaignEnd::Completed(run) = outcome.end else {
            panic!("{name}: campaign must complete (fleet={fleet})");
        };
        assert_eq!(
            run.results, golden.results,
            "{name}: fleet verdicts must be byte-identical to the solo run (fleet={fleet})"
        );
        mutants += run.total() as u64;
    }
    let wall_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    orch.shutdown();
    Leg {
        fleet,
        campaigns: jobs.len(),
        mutants,
        wall_nanos,
    }
}

fn main() {
    println!("== orchestrator: fleet throughput, 1 vs 3 campaigns ==\n");
    let sortable_golden = solo_golden(sortable_bundle_sharded, &TABLE2_METHODS);
    let coblist_golden = solo_golden(coblist_bundle_sharded, &TABLE3_METHODS);

    let mut legs = Vec::new();
    for fleet in FLEETS {
        let solo_jobs: [Job<'_>; 1] = [("sortable", sortable_request, &sortable_golden)];
        let tri_jobs: [Job<'_>; 3] = [
            ("sortable-a", sortable_request, &sortable_golden),
            ("coblist", coblist_request, &coblist_golden),
            ("sortable-b", sortable_request, &sortable_golden),
        ];
        for leg in [run_fleet(fleet, &solo_jobs), run_fleet(fleet, &tri_jobs)] {
            println!(
                "fleet={} campaigns={}: {:>4} mutants in {:>12} ns ({:>8.1} mutants/sec)",
                leg.fleet,
                leg.campaigns,
                leg.mutants,
                leg.wall_nanos,
                leg.mutants_per_sec()
            );
            legs.push(leg);
        }
    }

    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "{{\"fleet\":{},\"campaigns\":{},\"mutants\":{},\"wall_nanos\":{},\
                 \"mutants_per_sec\":{:.2}}}",
                l.fleet,
                l.campaigns,
                l.mutants,
                l.wall_nanos,
                l.mutants_per_sec()
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"orchestrator\",\"seed\":{},\"lease_size\":{},\"fleets\":[{}],\
         \"legs\":[{}]}}\n",
        SEED,
        LEASE_SIZE,
        FLEETS.map(|f| f.to_string()).join(","),
        legs_json.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, &json).expect("BENCH_9.json written");
    println!("\nwrote {} ({} bytes)", path, json.len());
}
