//! # concat-bench
//!
//! Experiment harnesses for the `concat-rs` reproduction of *"Constructing
//! Self-Testable Software Components"* (Martins, Toyota & Yanagawa,
//! DSN 2001). Each `cargo bench` target regenerates one table or figure of
//! the paper; this library holds the shared experiment drivers so the
//! bench targets and the integration tests agree on the exact
//! configurations.
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — the interface mutation operator catalogue |
//! | `table2` | Table 2 — mutation analysis of `CSortableObList` |
//! | `table3` | Table 3 — the reduced reuse suite vs base-class mutants (plus the full-suite ablation) |
//! | `figures` | Figures 1–7 — class, TFM/DOT, t-spec text, BIT surface, macros, driver text |
//! | `perf` | criterion micro-benchmarks of the pipeline stages |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use concat_components::{
    coblist_inventory, coblist_spec, sortable_inheritance_map, sortable_inventory, sortable_spec,
    CObListFactory, CSortableObListFactory,
};
use concat_core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat_driver::TestSuite;
use concat_mutation::{MutationMatrix, MutationRun, MutationSwitch};
use std::rc::Rc;
use std::sync::Arc;

/// The canonical experiment seed (the publication year of the paper).
pub const SEED: u64 = 2001;

/// Probe seeds used for equivalence probing in both table experiments.
pub const PROBE_SEEDS: [u64; 2] = [777, 888];

/// Table 2's target methods (the subclass's new methods).
pub const TABLE2_METHODS: [&str; 5] = ["Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"];

/// Table 3's target methods (the instrumented base-class methods).
pub const TABLE3_METHODS: [&str; 3] = ["AddHead", "RemoveAt", "RemoveHead"];

/// Builds the packaged `CSortableObList` bundle used by both experiments.
pub fn sortable_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .inheritance(sortable_inheritance_map())
    .build()
}

/// Builds the packaged `CObList` bundle (the Table 3 ablation subject).
pub fn coblist_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
        .mutation(coblist_inventory(), switch)
        .build()
}

/// [`sortable_bundle`] plus mutation shards, so the consumer can route
/// the campaign through the parallel engine (any worker count).
pub fn sortable_bundle_sharded() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .inheritance(sortable_inheritance_map())
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build()
}

/// [`coblist_bundle`] plus mutation shards.
pub fn coblist_bundle_sharded() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
        .mutation(coblist_inventory(), switch)
        .mutation_shards(Arc::new(CObListFactory::default()))
        .build()
}

/// Everything a table bench needs to print its rows.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The suite the mutants were executed against.
    pub suite: TestSuite,
    /// The raw mutation run.
    pub run: MutationRun,
    /// The method × operator aggregation.
    pub matrix: MutationMatrix,
}

/// Runs the Table 2 experiment: faults in the five new methods of
/// `CSortableObList`, killed by the full generated subclass suite.
///
/// # Panics
///
/// Panics if the shipped specs stop validating (a build error, not a
/// runtime condition).
pub fn run_table2(seed: u64) -> ExperimentOutcome {
    let bundle = sortable_bundle();
    let consumer = Consumer::with_seed(seed);
    let suite = consumer.generate(&bundle).expect("sortable spec generates");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &TABLE2_METHODS, &PROBE_SEEDS)
        .expect("bundle carries mutation support");
    let matrix = MutationMatrix::from_run(&run, &TABLE2_METHODS);
    ExperimentOutcome { suite, run, matrix }
}

/// The Table 3 experiment plus its ablation.
#[derive(Debug, Clone)]
pub struct Table3Outcome {
    /// The full subclass suite.
    pub full_suite: TestSuite,
    /// The reuse-pruned suite actually executed (the paper's scenario).
    pub reduced_suite: TestSuite,
    /// Cases skipped by the reuse rule (inherited-only transactions).
    pub skipped: usize,
    /// The reduced-suite run against base-class mutants (Table 3 proper).
    pub reduced: ExperimentOutcome,
    /// The full *base* suite run against the same mutants (ablation: what
    /// retesting everything would have caught).
    pub ablation: ExperimentOutcome,
}

/// Runs the Table 3 experiment: faults in the base-class methods,
/// executed with the subclass's *reduced* (incrementally reused) test
/// set, plus the full-base-suite ablation.
///
/// # Panics
///
/// Panics if the shipped specs stop validating.
pub fn run_table3(seed: u64) -> Table3Outcome {
    let bundle = sortable_bundle();
    let consumer = Consumer::with_seed(seed);
    let full_suite = consumer.generate(&bundle).expect("sortable spec generates");
    let plan = consumer
        .subclass_plan(&bundle, &full_suite)
        .expect("bundle carries a map");
    let reduced_suite = full_suite.filtered(&plan.reused_case_ids());
    let skipped = plan.skipped_case_ids().len();

    let run = consumer
        .evaluate_quality(&bundle, &reduced_suite, &TABLE3_METHODS, &PROBE_SEEDS)
        .expect("bundle carries mutation support");
    let reduced = ExperimentOutcome {
        suite: reduced_suite.clone(),
        matrix: MutationMatrix::from_run(&run, &TABLE3_METHODS),
        run,
    };

    // Ablation: the full base-class suite against the same mutants.
    let base = coblist_bundle();
    let base_suite = consumer.generate(&base).expect("coblist spec generates");
    let base_run = consumer
        .evaluate_quality(&base, &base_suite, &TABLE3_METHODS, &PROBE_SEEDS)
        .expect("bundle carries mutation support");
    let ablation = ExperimentOutcome {
        suite: base_suite,
        matrix: MutationMatrix::from_run(&base_run, &TABLE3_METHODS),
        run: base_run,
    };

    Table3Outcome {
        full_suite,
        reduced_suite,
        skipped,
        reduced,
        ablation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_build() {
        assert_eq!(sortable_bundle().class_name(), "CSortableObList");
        assert_eq!(coblist_bundle().class_name(), "CObList");
    }
}
