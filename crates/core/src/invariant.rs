//! Stateful invariant-fuzzing campaigns over a self-testable bundle.
//!
//! Where [`Consumer::self_test`](crate::Consumer::self_test) realizes the
//! paper's transaction-coverage criterion (each birth→death TFM path once),
//! an *invariant campaign* complements it with long seeded random walks:
//! hundreds of method calls per walk, several live objects interleaved,
//! the BIT class invariant and every t-spec invariant clause re-checked
//! after each call. Failing walks are shrunk to a minimal reproducer
//! (delta debugging over calls, then boundary-value argument shrinking),
//! deposited into the persistent corpus so future sessions replay past
//! breakers first, and journaled so an interrupted campaign resumes
//! without re-executing finished walks.
//!
//! Determinism contract: for a fixed t-spec, [`WalkConfig`] and seed, the
//! generated walks, any discovered failure and its shrunk reproducer are
//! byte-identical across runs — walk generation never consults the
//! component, and each walk draws from its own derived seed.

use crate::bundle::SelfTestable;
use crate::consumer::Consumer;
use concat_bit::BitControl;
use concat_driver::{
    execute_sequence, generate_walk, load_sequence, save_sequence, shrink_sequence, FailureKind,
    InvariantBreaker, InvariantSummary, WalkConfig, WalkSequence,
};
use concat_runtime::{crc32, recover_journal, CancelToken, CorpusStore, Journal, Watchdog};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Everything an invariant campaign produced: aggregate statistics, the
/// distilled breakers (shrunk reproducers), and one transcript per walk.
///
/// The summary and breakers are deterministic for a given seed and
/// corpus/journal state; transcripts of journal-resumed walks are
/// placeholders (the journal stores results, not transcripts).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantCampaign {
    /// Aggregate statistics, rendered by `concat-report`.
    pub summary: InvariantSummary,
    /// Failing sequences with their shrunk reproducers, corpus replays
    /// first, then walk discoveries in walk order.
    pub breakers: Vec<InvariantBreaker>,
    /// One transcript per executed walk (corpus replays excluded).
    pub transcripts: Vec<String>,
}

impl InvariantCampaign {
    /// True when no replayed or fuzzed sequence failed.
    pub fn clean(&self) -> bool {
        self.breakers.is_empty()
    }

    /// Breakers discovered by fuzzing this session (not corpus replays).
    pub fn fresh_breakers(&self) -> impl Iterator<Item = &InvariantBreaker> {
        self.breakers.iter().filter(|b| !b.from_corpus)
    }
}

/// Result of one journaled walk, replayed on resume instead of
/// re-executed.
struct JournaledWalk {
    calls: u64,
    checks: u64,
    failure: Option<FailureKind>,
    shrunk: Option<WalkSequence>,
}

impl Consumer {
    /// Runs an invariant-fuzzing campaign against `component`.
    ///
    /// Phases:
    ///
    /// 1. **Corpus replay** — when a corpus directory is configured, every
    ///    stored breaker of this class (key `<class>.invariant`) is
    ///    replayed first. Still-failing replays are reported as breakers;
    ///    passing ones are retained in the corpus (a fixed bug's breaker
    ///    is regression insurance, not garbage).
    /// 2. **Fuzzing** — `config.walks` seeded walks, each derived from
    ///    [`WalkConfig::walk_seed`], executed with invariants checked
    ///    after every call. Failures are shrunk and deposited into the
    ///    corpus.
    ///
    /// A configured journal makes the campaign resumable: finished walks
    /// are recorded (index, counts, failure, shrunk reproducer) and
    /// replayed on the next run with the same class/seed/shape — a run
    /// interrupted by the budget or watchdog picks up where it stopped.
    /// The budget's `max_calls` bounds the steps executed *this session*
    /// (journal-replayed walks are free, which is what makes a bigger
    /// budget able to finish a stopped campaign), and its `deadline` arms
    /// a watchdog whose firing marks the summary `stopped` without
    /// journaling the interrupted walk.
    ///
    /// Infallible by design: I/O degradation (unreadable corpus or
    /// journal) is counted under `harden.degraded` telemetry and the
    /// campaign proceeds without the degraded facility.
    ///
    /// # Examples
    ///
    /// ```
    /// use concat_core::{Consumer, SelfTestableBuilder};
    /// use concat_components::{bounded_stack_spec, BoundedStackFactory};
    /// use concat_driver::WalkConfig;
    /// use std::rc::Rc;
    ///
    /// let bundle = SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory))
    ///     .build();
    /// let config = WalkConfig::new(7).with_walks(2).with_calls_per_walk(64);
    /// let campaign = Consumer::with_seed(7).invariant_campaign(&bundle, &config);
    /// assert!(campaign.clean());
    /// assert_eq!(campaign.summary.walks, 2);
    /// ```
    pub fn invariant_campaign(
        &self,
        component: &SelfTestable,
        config: &WalkConfig,
    ) -> InvariantCampaign {
        let telemetry = self.telemetry().clone();
        let spec = component.spec();
        let class = spec.class_name.clone();
        let root = telemetry.span("invariant-campaign", &class);
        let scoped = telemetry.at(root.id());

        let ctl = BitControl::new_enabled();
        ctl.set_telemetry(telemetry.clone());

        let budget = self.budget();
        let token = CancelToken::new();
        let watchdog = budget.deadline.map(|deadline| {
            let wd = Watchdog::spawn();
            wd.arm(&token, deadline);
            wd
        });

        let fingerprint = campaign_fingerprint(&class, config);
        let mut journaled: BTreeMap<usize, JournaledWalk> = BTreeMap::new();
        let mut journal: Option<Journal> = None;
        if let Some(path) = self.journal() {
            match resume_journal(path, fingerprint) {
                Ok((j, walks)) => {
                    journal = Some(j);
                    journaled = walks;
                }
                Err(_) => telemetry.incr("harden.degraded"),
            }
        }

        let mut summary = InvariantSummary {
            class_name: class.clone(),
            seed: config.seed,
            ..InvariantSummary::default()
        };
        let mut breakers: Vec<InvariantBreaker> = Vec::new();
        let mut transcripts: Vec<String> = Vec::new();
        // Steps executed this session — journal replays are free, so a
        // resumed campaign with a fresh budget can finish.
        let mut session_calls: u64 = 0;
        let corpus_key = format!("{class}.invariant");

        // Phase 1: replay the corpus — past breakers run before any
        // fuzzing so a regression is the first thing the campaign reports.
        let payloads = match self.corpus() {
            Some(dir) => match CorpusStore::open(dir) {
                Ok(store) => {
                    let load = store.load(&corpus_key);
                    if load.missing + load.rejected > 0 {
                        telemetry.incr("harden.degraded");
                    }
                    load.payloads
                }
                Err(_) => {
                    telemetry.incr("harden.degraded");
                    Vec::new()
                }
            },
            None => Vec::new(),
        };
        for payload in &payloads {
            if token.is_cancelled() || over_call_budget(&budget, session_calls) {
                summary.stopped = true;
                break;
            }
            let seq = match load_sequence(payload) {
                Ok(seq) => seq,
                Err(_) => {
                    telemetry.incr("harden.degraded");
                    continue;
                }
            };
            let span = scoped.span("replay", &format!("r{}", summary.replayed));
            let outcome = execute_sequence(component.factory(), spec, &seq, &ctl, Some(&token));
            span.finish();
            if outcome.interrupted {
                summary.stopped = true;
                break;
            }
            summary.replayed += 1;
            summary.calls += outcome.executed_steps as u64;
            summary.checks += outcome.checks;
            session_calls += outcome.executed_steps as u64;
            telemetry.incr("invariant.replayed");
            if let Some(found) = outcome.failure {
                summary.replayed_failing += 1;
                summary.failures += 1;
                telemetry.incr("invariant.failures");
                breakers.push(InvariantBreaker {
                    walk: None,
                    from_corpus: true,
                    failure: found.kind,
                    original_calls: seq.call_count(),
                    shrunk: seq,
                });
            }
        }

        // Phase 2: fuzz. Journal-replayed walks contribute their recorded
        // counts; fresh walks execute, shrink on failure, and journal.
        for index in 0..config.walks {
            if summary.stopped {
                break;
            }
            if let Some(done) = journaled.get(&index) {
                summary.walks += 1;
                summary.calls += done.calls;
                summary.checks += done.checks;
                if let Some(kind) = &done.failure {
                    summary.failures += 1;
                    if let Some(shrunk) = &done.shrunk {
                        summary.original_calls += done.calls;
                        summary.shrunk_calls += shrunk.call_count() as u64;
                        breakers.push(InvariantBreaker {
                            walk: Some(index),
                            from_corpus: false,
                            failure: kind.clone(),
                            original_calls: done.calls as usize,
                            shrunk: shrunk.clone(),
                        });
                    }
                }
                transcripts.push(format!("walk {index} replayed from journal\n"));
                continue;
            }
            if token.is_cancelled() || over_call_budget(&budget, session_calls) {
                summary.stopped = true;
                break;
            }

            let seq = generate_walk(spec, config, config.walk_seed(index));
            let span = scoped.span("walk", &format!("w{index}"));
            let outcome = execute_sequence(component.factory(), spec, &seq, &ctl, Some(&token));
            if outcome.interrupted {
                // Never journaled: the resumed campaign re-executes this
                // walk from its derived seed, byte-identically.
                span.finish();
                summary.stopped = true;
                break;
            }
            summary.walks += 1;
            summary.calls += outcome.executed_steps as u64;
            summary.checks += outcome.checks;
            session_calls += outcome.executed_steps as u64;
            telemetry.incr("invariant.walks");
            telemetry.incr_by("invariant.calls", outcome.executed_steps as u64);
            telemetry.incr_by("invariant.checks", outcome.checks);
            transcripts.push(outcome.transcript);

            let mut failure_kind: Option<FailureKind> = None;
            let mut shrunk_text: Option<String> = None;
            if let Some(found) = outcome.failure {
                telemetry.incr("invariant.failures");
                summary.failures += 1;
                let shrunk = shrink_sequence(component.factory(), spec, &seq, &ctl);
                summary.original_calls += outcome.executed_steps as u64;
                summary.shrunk_calls += shrunk.call_count() as u64;
                failure_kind = Some(found.kind.clone());
                shrunk_text = Some(save_sequence(&shrunk));
                breakers.push(InvariantBreaker {
                    walk: Some(index),
                    from_corpus: false,
                    failure: found.kind,
                    original_calls: outcome.executed_steps,
                    shrunk,
                });
            }
            span.finish();

            if let Some(j) = journal.as_mut() {
                let record = encode_walk_record(
                    index,
                    outcome.executed_steps as u64,
                    outcome.checks,
                    failure_kind.as_ref(),
                    shrunk_text.as_deref(),
                );
                if j.append(&record).is_err() {
                    telemetry.incr("harden.degraded");
                }
            }
        }

        if let Some(wd) = watchdog {
            wd.disarm();
        }

        // Deposit the shrunk reproducers of walk-discovered breakers so
        // future campaigns replay them first. Content-hash dedup makes
        // re-deposits (journal-resumed breakers) a no-op.
        if let Some(dir) = self.corpus() {
            let fresh: Vec<&InvariantBreaker> =
                breakers.iter().filter(|b| !b.from_corpus).collect();
            if !fresh.is_empty() {
                match CorpusStore::open(dir) {
                    Ok(mut store) => {
                        for breaker in fresh {
                            let payload = save_sequence(&breaker.shrunk);
                            match store.deposit(&corpus_key, fingerprint, &payload) {
                                Ok(true) => telemetry.incr("corpus.deposited"),
                                Ok(false) => {}
                                Err(_) => telemetry.incr("harden.degraded"),
                            }
                        }
                    }
                    Err(_) => telemetry.incr("harden.degraded"),
                }
            }
        }

        root.finish();
        InvariantCampaign {
            summary,
            breakers,
            transcripts,
        }
    }
}

fn over_call_budget(budget: &concat_runtime::Budget, session_calls: u64) -> bool {
    budget
        .max_calls
        .is_some_and(|max| session_calls >= max as u64)
}

/// Identity of a campaign for journal-resume purposes: class, seed and
/// walk shape. The budget is deliberately excluded — a stopped campaign
/// must be resumable under a *bigger* budget.
fn campaign_fingerprint(class: &str, config: &WalkConfig) -> u32 {
    let mut text = String::new();
    let _ = writeln!(text, "class {class}");
    let _ = writeln!(text, "seed {}", config.seed);
    let _ = writeln!(text, "walks {}", config.walks);
    let _ = writeln!(text, "calls-per-walk {}", config.calls_per_walk);
    let _ = writeln!(text, "objects {}", config.objects);
    let _ = writeln!(text, "policy {}", config.policy.keyword());
    crc32(text.as_bytes())
}

fn journal_header(fingerprint: u32) -> String {
    format!("invariant-campaign {fingerprint:08x}")
}

/// Opens (or creates) the campaign journal. A header matching this
/// campaign's fingerprint replays the recorded walks; anything else —
/// missing file, torn tail, another campaign's header — resets the
/// journal to a fresh header.
fn resume_journal(
    path: &Path,
    fingerprint: u32,
) -> std::io::Result<(Journal, BTreeMap<usize, JournaledWalk>)> {
    let (mut journal, scan) = recover_journal(path)?;
    let header = journal_header(fingerprint);
    if scan.records.first() == Some(&header) {
        let mut walks = BTreeMap::new();
        for record in &scan.records[1..] {
            if let Some((index, walk)) = decode_walk_record(record) {
                walks.insert(index, walk);
            }
        }
        Ok((journal, walks))
    } else {
        journal.clear()?;
        journal.append(&header)?;
        Ok((journal, BTreeMap::new()))
    }
}

/// Escapes a payload into the single-line, tab-free form journal fields
/// require: `\` → `\\`, newline → `\n`, tab → `\t`.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

fn encode_failure(kind: &FailureKind) -> String {
    match kind {
        FailureKind::Invariant { message } => format!("invariant:{}", escape_field(message)),
        FailureKind::SpecClause { id } => format!("clause:{}", escape_field(id)),
        FailureKind::Panic { message } => format!("panic:{}", escape_field(message)),
    }
}

fn decode_failure(text: &str) -> Option<FailureKind> {
    let (tag, rest) = text.split_once(':')?;
    let payload = unescape_field(rest)?;
    Some(match tag {
        "invariant" => FailureKind::Invariant { message: payload },
        "clause" => FailureKind::SpecClause { id: payload },
        "panic" => FailureKind::Panic { message: payload },
        _ => return None,
    })
}

/// One journal record per finished walk, tab-separated:
/// `walk <index> <calls> <checks> <failure|-> <shrunk|->`.
fn encode_walk_record(
    index: usize,
    calls: u64,
    checks: u64,
    failure: Option<&FailureKind>,
    shrunk: Option<&str>,
) -> String {
    let failure_field = failure.map_or_else(|| "-".to_owned(), encode_failure);
    let shrunk_field = shrunk.map_or_else(|| "-".to_owned(), escape_field);
    format!("walk\t{index}\t{calls}\t{checks}\t{failure_field}\t{shrunk_field}")
}

/// Decodes one walk record; `None` drops the record, making the walk
/// re-execute (deterministically) instead of poisoning the resume.
fn decode_walk_record(record: &str) -> Option<(usize, JournaledWalk)> {
    let mut fields = record.splitn(6, '\t');
    if fields.next()? != "walk" {
        return None;
    }
    let index: usize = fields.next()?.parse().ok()?;
    let calls: u64 = fields.next()?.parse().ok()?;
    let checks: u64 = fields.next()?.parse().ok()?;
    let failure_field = fields.next()?;
    let shrunk_field = fields.next()?;
    let failure = if failure_field == "-" {
        None
    } else {
        Some(decode_failure(failure_field)?)
    };
    let shrunk = if shrunk_field == "-" {
        None
    } else {
        let text = unescape_field(shrunk_field)?;
        Some(load_sequence(&text).ok()?)
    };
    if failure.is_some() != shrunk.is_some() {
        return None;
    }
    Some((
        index,
        JournaledWalk {
            calls,
            checks,
            failure,
            shrunk,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use crate::consumer::Consumer;
    use concat_components::{sortable_spec, CSortableObListFactory};
    use concat_obs::{MemorySink, Telemetry};
    use concat_runtime::Budget;
    use std::rc::Rc;
    use std::sync::Arc;
    use std::time::Duration;

    fn bundle() -> SelfTestable {
        let switch = concat_mutation::MutationSwitch::new();
        SelfTestableBuilder::new(
            sortable_spec(),
            Rc::new(CSortableObListFactory::new(switch)),
        )
        .build()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let unique = format!(
            "concat-inv-{tag}-{}-{}",
            std::process::id(),
            concat_runtime::monotonic_nanos()
        );
        std::env::temp_dir().join(unique)
    }

    // Single-object walks: these tests exercise campaign mechanics on a
    // healthy subject and must stay green when the seeded cross-object
    // bug is compiled in (`--features seeded-bugs`).
    fn small_config() -> WalkConfig {
        WalkConfig::new(11)
            .with_walks(3)
            .with_calls_per_walk(40)
            .with_objects(1)
    }

    #[test]
    fn campaign_is_deterministic() {
        let bundle = bundle();
        let config = small_config();
        let one = Consumer::new().invariant_campaign(&bundle, &config);
        let two = Consumer::new().invariant_campaign(&bundle, &config);
        assert_eq!(one, two);
        assert_eq!(one.summary.walks, 3);
        assert!(one.clean(), "healthy component must not break");
        assert!(one.summary.checks > 0);
    }

    #[test]
    fn telemetry_counts_walks_and_calls() {
        let bundle = bundle();
        let sink = Arc::new(MemorySink::new());
        let campaign = Consumer::new()
            .with_telemetry(Telemetry::new(sink.clone()))
            .invariant_campaign(&bundle, &small_config());
        assert_eq!(sink.counter_total("invariant.walks"), 3);
        assert_eq!(
            sink.counter_total("invariant.calls"),
            campaign.summary.calls
        );
        assert_eq!(sink.span_count("invariant-campaign"), 1);
        assert_eq!(sink.span_count("walk"), 3);
    }

    #[test]
    fn journal_resume_skips_finished_walks() {
        let bundle = bundle();
        let config = small_config();
        let journal = temp_path("journal");
        // Budget stops the campaign partway through.
        let first = Consumer::new()
            .with_budget(Budget::unlimited().with_max_calls(30))
            .with_journal(&journal)
            .invariant_campaign(&bundle, &config);
        assert!(first.summary.stopped);
        assert!(first.summary.walks < 3);
        // Resume without a call budget: recorded walks replay, the rest
        // execute, and the result matches an uninterrupted campaign.
        let resumed = Consumer::new()
            .with_journal(&journal)
            .invariant_campaign(&bundle, &config);
        let uninterrupted = Consumer::new().invariant_campaign(&bundle, &config);
        assert!(!resumed.summary.stopped);
        assert_eq!(resumed.summary, uninterrupted.summary);
        assert_eq!(resumed.breakers, uninterrupted.breakers);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn foreign_journal_header_is_reset() {
        let bundle = bundle();
        let config = small_config();
        let path = temp_path("foreign");
        std::fs::write(&path, "not a journal at all\n").unwrap();
        let campaign = Consumer::new()
            .with_journal(&path)
            .invariant_campaign(&bundle, &config);
        assert_eq!(campaign.summary.walks, 3);
        let (_, scan) = recover_journal(&path).unwrap();
        assert_eq!(
            scan.records.first(),
            Some(&journal_header(campaign_fingerprint(
                "CSortableObList",
                &config
            )))
        );
        assert_eq!(scan.records.len(), 4, "header + one record per walk");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deadline_stop_is_resumable() {
        let bundle = bundle();
        let config = WalkConfig::new(5)
            .with_walks(4)
            .with_calls_per_walk(60)
            .with_objects(1);
        let journal = temp_path("deadline");
        let stopped = Consumer::new()
            .with_budget(Budget::unlimited().with_deadline(Duration::from_nanos(1)))
            .with_journal(&journal)
            .invariant_campaign(&bundle, &config);
        assert!(stopped.summary.stopped);
        let resumed = Consumer::new()
            .with_journal(&journal)
            .invariant_campaign(&bundle, &config);
        let baseline = Consumer::new().invariant_campaign(&bundle, &config);
        assert_eq!(resumed.summary, baseline.summary);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn walk_records_round_trip() {
        let kinds = [
            None,
            Some(FailureKind::Invariant {
                message: "cached\tlen\ndrifted \\ badly".to_owned(),
            }),
            Some(FailureKind::SpecClause {
                id: "i1".to_owned(),
            }),
            Some(FailureKind::Panic {
                message: "boom".to_owned(),
            }),
        ];
        let bundle = bundle();
        let seq = generate_walk(bundle.spec(), &small_config(), 99);
        let text = save_sequence(&seq);
        for (i, kind) in kinds.iter().enumerate() {
            let shrunk = kind.as_ref().map(|_| text.as_str());
            let record = encode_walk_record(i, 17, 34, kind.as_ref(), shrunk);
            assert!(!record.contains('\n'), "records must be single-line");
            let (index, walk) = decode_walk_record(&record).expect("round trip");
            assert_eq!(index, i);
            assert_eq!(walk.calls, 17);
            assert_eq!(walk.checks, 34);
            assert_eq!(walk.failure.as_ref(), kind.as_ref());
            assert_eq!(walk.shrunk.is_some(), kind.is_some());
            if let Some(s) = &walk.shrunk {
                assert_eq!(save_sequence(s), text);
            }
        }
    }

    #[test]
    fn malformed_walk_records_are_dropped() {
        for bad in [
            "walk\tx\t1\t2\t-\t-",
            "walk\t0\t1\t2\tweird:oops\t-",
            "walk\t0\t1\t2\t-",
            "walk\t0\t1\t2\tclause:i1\t-", // failure without reproducer
            "mutant\t0\tkilled",
        ] {
            assert!(decode_walk_record(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn fingerprint_tracks_shape_not_budget() {
        let a = campaign_fingerprint("C", &WalkConfig::new(1));
        assert_eq!(a, campaign_fingerprint("C", &WalkConfig::new(1)));
        assert_ne!(a, campaign_fingerprint("C", &WalkConfig::new(2)));
        assert_ne!(a, campaign_fingerprint("D", &WalkConfig::new(1)));
        assert_ne!(
            a,
            campaign_fingerprint("C", &WalkConfig::new(1).with_walks(9))
        );
    }

    #[test]
    fn corpus_deposit_and_replay_round_trip() {
        let bundle = bundle();
        let config = small_config();
        let corpus = temp_path("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        // A healthy component deposits nothing...
        let clean = Consumer::new()
            .with_corpus(&corpus)
            .invariant_campaign(&bundle, &config);
        assert!(clean.clean());
        // ...so seed the corpus by hand with a valid passing sequence to
        // prove the replay path runs it and retains it.
        let seq = generate_walk(bundle.spec(), &config, config.walk_seed(0));
        let mut store = CorpusStore::open(&corpus).unwrap();
        assert!(store
            .deposit(
                "CSortableObList.invariant",
                seq.fingerprint(),
                &save_sequence(&seq)
            )
            .unwrap());
        let replayed = Consumer::new()
            .with_corpus(&corpus)
            .invariant_campaign(&bundle, &config);
        assert_eq!(replayed.summary.replayed, 1);
        assert_eq!(replayed.summary.replayed_failing, 0);
        // Passing breakers are retained, not deleted.
        let store = CorpusStore::open(&corpus).unwrap();
        assert_eq!(store.load("CSortableObList.invariant").payloads.len(), 1);
        let _ = std::fs::remove_dir_all(&corpus);
    }

    #[test]
    fn unreadable_corpus_degrades_not_fails() {
        let bundle = bundle();
        let corpus = temp_path("degraded");
        std::fs::create_dir_all(&corpus).unwrap();
        let mut store = CorpusStore::open(&corpus).unwrap();
        store
            .deposit("CSortableObList.invariant", 1, "garbage payload")
            .unwrap();
        let sink = Arc::new(MemorySink::new());
        let campaign = Consumer::new()
            .with_telemetry(Telemetry::new(sink.clone()))
            .with_corpus(&corpus)
            .invariant_campaign(&bundle, &small_config());
        assert_eq!(campaign.summary.replayed, 0);
        assert_eq!(campaign.summary.walks, 3);
        assert!(sink.counter_total("harden.degraded") > 0);
        let _ = std::fs::remove_dir_all(&corpus);
    }
}
