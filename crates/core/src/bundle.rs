//! The self-testable component bundle.
//!
//! A self-testable component (paper §2.4) ships its implementation
//! together with its test specification and built-in test interface. The
//! [`SelfTestable`] bundle is that packaging: the t-spec, the factory that
//! creates instances of the implementation, and — when the producer opted
//! into mutation evaluation — the mutation inventory, switch and
//! inheritance map.

use concat_bit::ComponentFactory;
use concat_driver::InheritanceMap;
use concat_mutation::{ClassInventory, ClonableFactory, MutationSwitch};
use concat_tspec::ClassSpec;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A packaged self-testable component.
///
/// Build one with [`SelfTestableBuilder`]; validate the packaging with
/// [`crate::Producer::package`].
#[derive(Clone)]
pub struct SelfTestable {
    spec: ClassSpec,
    factory: Rc<dyn ComponentFactory>,
    inventory: Option<ClassInventory>,
    switch: Option<MutationSwitch>,
    shards: Option<Arc<dyn ClonableFactory>>,
    inheritance: Option<InheritanceMap>,
}

impl fmt::Debug for SelfTestable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelfTestable")
            .field("class_name", &self.spec.class_name)
            .field("methods", &self.spec.methods.len())
            .field("has_inventory", &self.inventory.is_some())
            .field("has_shards", &self.shards.is_some())
            .field("has_inheritance", &self.inheritance.is_some())
            .finish_non_exhaustive()
    }
}

impl SelfTestable {
    /// The embedded t-spec.
    pub fn spec(&self) -> &ClassSpec {
        &self.spec
    }

    /// The component factory.
    pub fn factory(&self) -> &dyn ComponentFactory {
        self.factory.as_ref()
    }

    /// The mutation inventory, when packaged for quality evaluation.
    pub fn inventory(&self) -> Option<&ClassInventory> {
        self.inventory.as_ref()
    }

    /// The shared mutation switch, when packaged for quality evaluation.
    pub fn switch(&self) -> Option<&MutationSwitch> {
        self.switch.as_ref()
    }

    /// The sharding seam for parallel mutation analysis, when the producer
    /// packaged one. Each analysis worker builds its own factory (and
    /// switch) through it, so mutant executions can run concurrently.
    pub fn shards(&self) -> Option<&dyn ClonableFactory> {
        self.shards.as_deref()
    }

    /// An owned handle to the sharding seam, for consumers that outlive
    /// this bundle — an orchestrated campaign keeps classifying mutants
    /// on fleet workers long after the submitting scope returned.
    pub fn shards_handle(&self) -> Option<Arc<dyn ClonableFactory>> {
        self.shards.clone()
    }

    /// The inheritance map relating this component to its superclass.
    pub fn inheritance(&self) -> Option<&InheritanceMap> {
        self.inheritance.as_ref()
    }

    /// Class name (from the spec).
    pub fn class_name(&self) -> &str {
        &self.spec.class_name
    }
}

/// Builder for [`SelfTestable`] bundles.
pub struct SelfTestableBuilder {
    spec: ClassSpec,
    factory: Rc<dyn ComponentFactory>,
    inventory: Option<ClassInventory>,
    switch: Option<MutationSwitch>,
    shards: Option<Arc<dyn ClonableFactory>>,
    inheritance: Option<InheritanceMap>,
}

impl fmt::Debug for SelfTestableBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelfTestableBuilder")
            .field("class_name", &self.spec.class_name)
            .finish_non_exhaustive()
    }
}

impl SelfTestableBuilder {
    /// Starts a bundle from a spec and a factory.
    pub fn new(spec: ClassSpec, factory: Rc<dyn ComponentFactory>) -> Self {
        SelfTestableBuilder {
            spec,
            factory,
            inventory: None,
            switch: None,
            shards: None,
            inheritance: None,
        }
    }

    /// Attaches a mutation inventory and its switch (quality evaluation).
    pub fn mutation(mut self, inventory: ClassInventory, switch: MutationSwitch) -> Self {
        self.inventory = Some(inventory);
        self.switch = Some(switch);
        self
    }

    /// Attaches the sharding seam that lets quality evaluation run across
    /// a worker pool ([`concat_mutation::run_mutation_analysis_parallel`]).
    /// Optional: without it, evaluation runs sequentially on the bundle's
    /// own factory/switch pair.
    pub fn mutation_shards(mut self, shards: Arc<dyn ClonableFactory>) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches the inheritance map (subclass reuse analysis).
    pub fn inheritance(mut self, map: InheritanceMap) -> Self {
        self.inheritance = Some(map);
        self
    }

    /// Finishes the bundle (no validation; see [`crate::Producer`]).
    pub fn build(self) -> SelfTestable {
        SelfTestable {
            spec: self.spec,
            factory: self.factory,
            inventory: self.inventory,
            switch: self.switch,
            shards: self.shards,
            inheritance: self.inheritance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_bit::{BitControl, TestableComponent};
    use concat_runtime::{unknown_method, TestException, Value};

    struct NullFactory;
    impl ComponentFactory for NullFactory {
        fn class_name(&self) -> &str {
            "C"
        }
        fn construct(
            &self,
            constructor: &str,
            _a: &[Value],
            _ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            Err(unknown_method("C", constructor))
        }
    }

    fn spec() -> ClassSpec {
        concat_tspec::ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .destructor("m2", "~C")
            .birth_node("n1", ["m1"])
            .death_node("n2", ["m2"])
            .edge("n1", "n2")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assembles_bundle() {
        let st = SelfTestableBuilder::new(spec(), Rc::new(NullFactory))
            .mutation(ClassInventory::new("C"), MutationSwitch::new())
            .inheritance(InheritanceMap::new())
            .build();
        assert_eq!(st.class_name(), "C");
        assert!(st.inventory().is_some());
        assert!(st.switch().is_some());
        assert!(st.inheritance().is_some());
        assert_eq!(st.factory().class_name(), "C");
        assert_eq!(st.spec().methods.len(), 2);
    }

    #[test]
    fn minimal_bundle_has_no_extras() {
        let st = SelfTestableBuilder::new(spec(), Rc::new(NullFactory)).build();
        assert!(st.inventory().is_none());
        assert!(st.switch().is_none());
        assert!(st.shards().is_none());
        assert!(st.inheritance().is_none());
    }

    #[test]
    fn shards_ride_along_when_attached() {
        struct NullShards;
        impl ClonableFactory for NullShards {
            fn class_name(&self) -> &str {
                "C"
            }
            fn build_factory(&self, _switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
                Box::new(NullFactory)
            }
        }
        let st = SelfTestableBuilder::new(spec(), Rc::new(NullFactory))
            .mutation_shards(Arc::new(NullShards))
            .build();
        let shards = st.shards().expect("shards attached");
        assert_eq!(shards.class_name(), "C");
        assert!(format!("{st:?}").contains("has_shards: true"));
    }

    #[test]
    fn bundles_are_cloneable_and_debuggable() {
        let st = SelfTestableBuilder::new(spec(), Rc::new(NullFactory)).build();
        let clone = st.clone();
        assert_eq!(clone.class_name(), "C");
        let dbg = format!("{st:?}");
        assert!(dbg.contains("SelfTestable"));
        assert!(dbg.contains("\"C\""));
    }
}
