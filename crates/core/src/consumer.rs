//! The consumer workflow (paper §3.1, second half).
//!
//! "To use a self-testable component, a consumer should: generate test
//! cases based on the t-spec; compile the component in test mode; execute
//! tests; analyze the results obtained." [`Consumer::self_test`] runs all
//! four steps; [`Consumer::evaluate_quality`] additionally runs the §4
//! mutation analysis when the bundle carries an inventory; and
//! [`Consumer::subclass_plan`] applies the §3.4.2 incremental reuse rule.

use crate::bundle::SelfTestable;
use concat_driver::{
    save_suite_to_path, DriverGenerator, GenerateError, GeneratorConfig, ReusePlan, SuiteResult,
    TestLog, TestRunner, TestSuite, TestingHistory,
};
use concat_mutation::{
    amplify_suite, amplify_suite_parallel, enumerate_mutants, run_mutation_analysis,
    run_mutation_analysis_parallel, AmplifyConfig, AmplifyOutcome, CampaignRequest, IsolationMode,
    MutationConfig, MutationRun,
};
use concat_obs::Telemetry;
use concat_runtime::{recommended_workers, Budget, IoPolicy};
use std::fmt;
use std::path::{Path, PathBuf};

/// The outcome of one consumer self-test session.
#[derive(Debug, Clone)]
pub struct SelfTestReport {
    /// The generated suite (seed recorded inside).
    pub suite: TestSuite,
    /// Per-case execution results.
    pub result: SuiteResult,
    /// The `Result.txt`-style log.
    pub log: TestLog,
    /// Assertions evaluated during the session.
    pub assertion_checks: u64,
    /// Assertion violations observed during the session.
    pub assertion_violations: u64,
}

impl SelfTestReport {
    /// True when every test case passed.
    pub fn all_passed(&self) -> bool {
        self.result.failed() == 0
    }

    /// Harness-degradation notes from the run (budget stops, watchdog
    /// deadlines); empty on a healthy run. See [`SuiteResult::notes`].
    pub fn notes(&self) -> &[String] {
        &self.result.notes
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {} case(s), {} passed, {} failed ({} by assertion); {} assertion check(s)",
            self.suite.class_name,
            self.result.cases.len(),
            self.result.passed(),
            self.result.failed(),
            self.result.assertion_failures(),
            self.assertion_checks
        );
        let stops = self.result.harness_stops();
        if stops > 0 {
            s.push_str(&format!("; {stops} harness stop(s)"));
        }
        s
    }
}

impl fmt::Display for SelfTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Errors of the consumer workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsumerError {
    /// Test generation failed.
    Generate(GenerateError),
    /// Quality evaluation requested but the bundle has no mutation
    /// inventory/switch.
    NoMutationSupport,
    /// Reuse planning requested but the bundle has no inheritance map.
    NoInheritanceMap,
    /// Process isolation requested but the bundle has no sharding seam
    /// ([`SelfTestable::shards`]) — process shards are rebuilt from the
    /// clonable factory, so a non-sharded bundle cannot be isolated.
    NoShardSupport,
}

impl fmt::Display for ConsumerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumerError::Generate(e) => write!(f, "generation failed: {e}"),
            ConsumerError::NoMutationSupport => {
                f.write_str("bundle carries no mutation inventory/switch")
            }
            ConsumerError::NoInheritanceMap => f.write_str("bundle carries no inheritance map"),
            ConsumerError::NoShardSupport => {
                f.write_str("process isolation needs a sharded bundle (no clonable factory)")
            }
        }
    }
}

impl std::error::Error for ConsumerError {}

impl From<GenerateError> for ConsumerError {
    fn from(e: GenerateError) -> Self {
        ConsumerError::Generate(e)
    }
}

/// The consumer-side test session driver.
#[derive(Debug, Clone)]
pub struct Consumer {
    config: GeneratorConfig,
    telemetry: Telemetry,
    budget: Budget,
    workers: Option<usize>,
    journal: Option<PathBuf>,
    isolation: IsolationMode,
    corpus: Option<PathBuf>,
    incremental: bool,
}

impl Consumer {
    /// A consumer with the default generation configuration.
    pub fn new() -> Self {
        Consumer {
            config: GeneratorConfig::default(),
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
            workers: None,
            journal: None,
            isolation: IsolationMode::InThread,
            corpus: None,
            incremental: false,
        }
    }

    /// A consumer with an explicit generation configuration.
    pub fn with_config(config: GeneratorConfig) -> Self {
        Consumer {
            config,
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
            workers: None,
            journal: None,
            isolation: IsolationMode::InThread,
            corpus: None,
            incremental: false,
        }
    }

    /// A consumer with the default configuration but a chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_config(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    /// Attaches a telemetry handle. It propagates through the whole
    /// session: the driver generator (`generate` spans, `gen.*` counters),
    /// the runner (`suite`/`case` spans, `case.*`/`call.*`/`bit.*`
    /// counters), mutation analysis (`mutant` spans, `mutant.*` counters)
    /// and reuse planning (`reuse.*` counters). Disabled — and free — by
    /// default.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Caps test-case execution with `budget` (call count, transcript
    /// bytes, wall-clock deadline). It propagates to the runner of every
    /// session this consumer drives — including golden, mutant and probe
    /// runs during quality evaluation, where mutants that blow the budget
    /// are quarantined instead of hanging the analysis. Unlimited — the
    /// paper's semantics — by default.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The execution budget this consumer applies per test case.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Sets the worker count for quality evaluation. Only takes effect
    /// when the bundle carries a sharding seam
    /// ([`SelfTestable::shards`]); verdicts are identical for every
    /// value. Defaults to [`recommended_workers`] (the machine's
    /// available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The worker count quality evaluation will use on a sharded bundle.
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(recommended_workers)
    }

    /// Journals quality-evaluation verdicts to `path` (the paper's §3.4
    /// test-history mandate): each mutant verdict is durably appended as
    /// it lands, and a killed campaign rerun with the same journal path
    /// replays the recorded verdicts and re-executes only unfinished
    /// mutants — the resumed run's verdicts, score and report are
    /// byte-identical to an uninterrupted one. No journal — and no extra
    /// I/O — by default.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// The verdict-journal path quality evaluation will use, if any.
    pub fn journal(&self) -> Option<&Path> {
        self.journal.as_deref()
    }

    /// Chooses how quality evaluation isolates mutant execution.
    /// [`IsolationMode::InThread`] (the default) runs shards as threads;
    /// [`IsolationMode::Process`] runs them as supervised child processes
    /// so a mutant that aborts or spins without a checkpoint loses only
    /// itself. Process isolation requires a sharded bundle
    /// ([`SelfTestable::shards`]) and an entry point in the current binary
    /// that calls [`Consumer::run_shard_worker`]; verdicts, score and
    /// report are byte-identical across modes.
    pub fn with_isolation(mut self, isolation: IsolationMode) -> Self {
        self.isolation = isolation;
        self
    }

    /// The isolation mode quality evaluation will use.
    pub fn isolation(&self) -> &IsolationMode {
        &self.isolation
    }

    /// Attaches a persistent cross-campaign corpus at `dir` (a
    /// [`concat_runtime::CorpusStore`] directory, created on first use).
    /// During [`Consumer::amplify_quality`], previously deposited killer
    /// cases for the same class are replayed as round-1 candidates ahead
    /// of synthesized ones (`corpus.seeded`), and the kept killers of
    /// this run are deposited back, content-addressed and stamped with
    /// the campaign fingerprint (`corpus.deposited`). No corpus — and no
    /// extra I/O — by default.
    pub fn with_corpus(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus = Some(dir.into());
        self
    }

    /// The corpus directory amplification will seed from, if any.
    pub fn corpus(&self) -> Option<&Path> {
        self.corpus.as_deref()
    }

    /// Enables incremental change-aware analysis for journaled quality
    /// evaluation: the journal carries per-method sub-fingerprints
    /// alongside the campaign header, so when the campaign changes, the
    /// verdicts of methods whose sub-fingerprint is unchanged are
    /// salvaged (`mutation.incremental_rebuild`) and only the changed
    /// methods' mutants re-execute — with results byte-identical to a
    /// cold run for every worker count and isolation mode. A warm re-run
    /// of an unchanged campaign replays every verdict and executes no
    /// mutants, exactly like plain resume. Off by default (and a no-op
    /// without [`Consumer::with_journal`]).
    pub fn incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// True when incremental change-aware analysis is enabled.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// The telemetry handle this consumer propagates.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The generation configuration in use.
    pub fn config(&self) -> GeneratorConfig {
        self.config
    }

    /// Generates the transaction-covering suite for the bundle
    /// (step 1 of the workflow).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] from the driver generator.
    pub fn generate(&self, component: &SelfTestable) -> Result<TestSuite, ConsumerError> {
        let mut gen = DriverGenerator::new(self.config).with_telemetry(self.telemetry.clone());
        if spec_uses_provider(component.spec()) {
            concat_components_provider_shim(gen.inputs_mut());
        }
        Ok(gen.generate(component.spec())?)
    }

    /// Runs the full self-test: generate, switch to test mode, execute,
    /// analyze (steps 1–4).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] from the driver generator.
    pub fn self_test(&self, component: &SelfTestable) -> Result<SelfTestReport, ConsumerError> {
        let suite = self.generate(component)?;
        self.run_suite(component, &suite)
    }

    /// Executes a pre-generated suite (used by reuse flows that run a
    /// filtered suite).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` keeps the signature
    /// uniform with [`Consumer::self_test`].
    pub fn run_suite(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
    ) -> Result<SelfTestReport, ConsumerError> {
        // test mode ON — "compile in test mode"
        let runner = TestRunner::new()
            .with_telemetry(self.telemetry.clone())
            .with_budget(self.budget);
        runner.bit_control().reset_counters();
        let mut log = TestLog::new();
        let result = runner.run_suite(component.factory(), suite, &mut log);
        Ok(SelfTestReport {
            suite: suite.clone(),
            result,
            log,
            assertion_checks: runner.bit_control().checks(),
            assertion_violations: runner.bit_control().violations(),
        })
    }

    /// Runs the §4 mutation analysis over the bundle's inventory for the
    /// given target methods, using `suite` as the killing test set.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoMutationSupport`] when the bundle lacks an
    /// inventory or switch; generation errors when probe suites cannot be
    /// built.
    pub fn evaluate_quality(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
    ) -> Result<MutationRun, ConsumerError> {
        self.evaluate_quality_with(component, suite, target_methods, probe_seeds, true)
    }

    /// Like [`Consumer::evaluate_quality`], with an explicit BIT switch —
    /// `bit_enabled: false` is the assertions-off ablation.
    ///
    /// # Errors
    ///
    /// As for [`Consumer::evaluate_quality`].
    pub fn evaluate_quality_with(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
        bit_enabled: bool,
    ) -> Result<MutationRun, ConsumerError> {
        let (inventory, switch) = match (component.inventory(), component.switch()) {
            (Some(i), Some(s)) => (i, s),
            _ => return Err(ConsumerError::NoMutationSupport),
        };
        let mutants = enumerate_mutants(inventory, target_methods);
        let config = self.mutation_config(component, probe_seeds, bit_enabled)?;
        Ok(match component.shards() {
            // A sharded bundle analyzes across the worker pool; the merge
            // is deterministic, so the run is byte-identical to the
            // sequential path below.
            Some(shards) => run_mutation_analysis_parallel(shards, suite, &mutants, &config),
            None if config.isolation.is_process() => {
                return Err(ConsumerError::NoShardSupport);
            }
            None => run_mutation_analysis(component.factory(), switch, suite, &mutants, &config),
        })
    }

    /// The child half of process-isolated quality evaluation: rebuilds
    /// the campaign this consumer would run (same suite, targets, probes,
    /// budget) and executes the mutant slice assigned through the
    /// `CONCAT_SHARD_*` environment, streaming verdicts to stdout.
    ///
    /// Call this from the hidden entry point named by
    /// [`concat_mutation::ProcessIsolation::worker_args`] and pass the
    /// returned code to [`std::process::exit`]. The consumer driving the
    /// worker must be configured identically to the supervising one
    /// (seed, budget, probe seeds) — journal path, worker count and
    /// isolation mode are excluded from the campaign fingerprint and may
    /// differ.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoShardSupport`] when the bundle lacks a sharding
    /// seam; otherwise as for [`Consumer::evaluate_quality`].
    pub fn run_shard_worker(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
    ) -> Result<i32, ConsumerError> {
        let inventory = component
            .inventory()
            .ok_or(ConsumerError::NoMutationSupport)?;
        let shards = component.shards().ok_or(ConsumerError::NoShardSupport)?;
        let mutants = enumerate_mutants(inventory, target_methods);
        let config = self.mutation_config(component, probe_seeds, true)?;
        Ok(concat_mutation::run_shard_worker(
            shards, suite, &mutants, &config,
        ))
    }

    /// Packages the campaign this consumer would run as a
    /// [`CampaignRequest`] for submission to a
    /// [`concat_mutation::Orchestrator`] — the multi-campaign analogue of
    /// [`Consumer::evaluate_quality`]. The request carries the exact
    /// inputs the solo path uses (same suite, mutants, probes, budget,
    /// journal, isolation), so the orchestrated run's verdicts, score,
    /// and report are byte-identical to the solo run's; scheduling
    /// metadata (`priority`, `mutant_budget`, `slot`) starts at its
    /// defaults and can be adjusted on the returned request.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoMutationSupport`] without an inventory,
    /// [`ConsumerError::NoShardSupport`] without a sharding seam (fleet
    /// workers each build their own factory), and generation errors when
    /// probe suites cannot be built.
    pub fn campaign_request(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
    ) -> Result<CampaignRequest, ConsumerError> {
        let inventory = component
            .inventory()
            .ok_or(ConsumerError::NoMutationSupport)?;
        let shards = component
            .shards_handle()
            .ok_or(ConsumerError::NoShardSupport)?;
        let mutants = enumerate_mutants(inventory, target_methods);
        let config = self.mutation_config(component, probe_seeds, true)?;
        Ok(CampaignRequest {
            name: component.class_name().to_owned(),
            shards,
            suite: suite.clone(),
            mutants,
            config,
            priority: 0,
            mutant_budget: None,
            slot: None,
        })
    }

    /// Runs [`Consumer::evaluate_quality`] and then the mutation-driven
    /// amplification loop: surviving mutants direct the driver generator
    /// to synthesize targeted candidates (boundary values, re-seeded
    /// draws, deeper TFM paths through the mutated feature), and each
    /// candidate that kills a survivor joins the amplified suite. The
    /// loop is deterministic per (consumer seed, suite, targets) and
    /// byte-identical across worker counts on sharded bundles; with a
    /// journal configured, every round journals and resumes like a plain
    /// campaign.
    ///
    /// # Errors
    ///
    /// As for [`Consumer::evaluate_quality`], plus generation errors from
    /// candidate synthesis.
    pub fn amplify_quality(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
        amplify: &AmplifyConfig,
    ) -> Result<AmplifyOutcome, ConsumerError> {
        let (inventory, switch) = match (component.inventory(), component.switch()) {
            (Some(i), Some(s)) => (i, s),
            _ => return Err(ConsumerError::NoMutationSupport),
        };
        let mutants = enumerate_mutants(inventory, target_methods);
        let mut config = self.mutation_config(component, probe_seeds, true)?;
        // Amplification rounds rebuild their own per-round configs, which
        // a shard worker spawned with this consumer's base config could
        // never fingerprint-match; rounds are short and thread isolation
        // contains everything they run, so force it here.
        config.isolation = IsolationMode::InThread;
        let spec = component.spec();
        let base = self.config;
        let needs_provider = spec_uses_provider(spec);
        // Corpus seed tier: killer cases deposited by earlier campaigns
        // on this class replay as round-1 candidates ahead of synthesis.
        let corpus_payloads: Vec<String> = match &self.corpus {
            Some(dir) => match concat_runtime::CorpusStore::open(dir) {
                Ok(store) => store.load(&spec.class_name).payloads,
                Err(_) => {
                    self.telemetry.incr("harden.degraded");
                    Vec::new()
                }
            },
            None => Vec::new(),
        };
        let telemetry = self.telemetry.clone();
        let mut synth = |existing: &TestSuite,
                         features: &[String],
                         round: usize,
                         max: usize|
         -> Result<TestSuite, GenerateError> {
            let seeded = if round == 1 && !corpus_payloads.is_empty() {
                let replay =
                    concat_driver::corpus_candidates(existing, &corpus_payloads, features, max);
                if !replay.suite.cases.is_empty() {
                    telemetry.incr_by("corpus.seeded", replay.suite.len() as u64);
                }
                Some(replay.suite)
            } else {
                None
            };
            // Synthesis dedups and renumbers against existing + corpus
            // candidates, so the two tiers never collide.
            let (existing, remaining) = match &seeded {
                Some(corpus_suite) => {
                    let mut merged = existing.clone();
                    merged.cases.extend(corpus_suite.cases.iter().cloned());
                    (merged, max.saturating_sub(corpus_suite.len()))
                }
                None => (existing.clone(), max),
            };
            let synthesis = concat_driver::synthesize_candidates(
                spec,
                base,
                &existing,
                features,
                round,
                remaining,
                |inputs| {
                    if needs_provider {
                        concat_components_provider_shim(inputs);
                    }
                },
            )?;
            Ok(match seeded {
                Some(mut corpus_suite) => {
                    corpus_suite
                        .cases
                        .extend(synthesis.suite.cases.iter().cloned());
                    corpus_suite.stats.cases = corpus_suite.cases.len();
                    corpus_suite
                }
                None => synthesis.suite,
            })
        };
        let outcome = match component.shards() {
            Some(shards) => {
                amplify_suite_parallel(shards, suite, &mutants, &config, amplify, &mut synth)?
            }
            None => amplify_suite(
                component.factory(),
                switch,
                suite,
                &mutants,
                &config,
                amplify,
                &mut synth,
            )?,
        };
        // Deposit this run's kept killers back into the corpus, stamped
        // with the campaign fingerprint as provenance. Best-effort: a
        // failed deposit degrades, never aborts a finished amplification.
        if let Some(dir) = &self.corpus {
            let kept = &outcome.suite.cases[suite.cases.len()..];
            if !kept.is_empty() {
                match concat_runtime::CorpusStore::open(dir) {
                    Ok(mut store) => {
                        let fingerprint = concat_mutation::campaign_fingerprint(
                            &spec.class_name,
                            suite,
                            &mutants,
                            &config,
                        );
                        for case in kept {
                            // The case id is an artifact of this run's
                            // renumbering; normalize it so behaviourally
                            // identical killers content-hash identically.
                            let mut case = case.clone();
                            case.id = 0;
                            let one = TestSuite {
                                class_name: outcome.suite.class_name.clone(),
                                seed: outcome.suite.seed,
                                cases: vec![case],
                                stats: concat_driver::SuiteStats {
                                    cases: 1,
                                    ..outcome.suite.stats
                                },
                            };
                            let payload = concat_driver::save_suite(&one);
                            match store.deposit(&spec.class_name, fingerprint, &payload) {
                                Ok(true) => self.telemetry.incr("corpus.deposited"),
                                Ok(false) => {}
                                Err(_) => self.telemetry.incr("harden.degraded"),
                            }
                        }
                    }
                    Err(_) => self.telemetry.incr("harden.degraded"),
                }
            }
        }
        Ok(outcome)
    }

    /// Builds the analysis configuration shared by quality evaluation and
    /// amplification: probe suites generated per seed, this consumer's
    /// telemetry/budget/workers/journal threaded through.
    fn mutation_config(
        &self,
        component: &SelfTestable,
        probe_seeds: &[u64],
        bit_enabled: bool,
    ) -> Result<MutationConfig, ConsumerError> {
        let mut probe_suites = Vec::with_capacity(probe_seeds.len());
        for seed in probe_seeds {
            let consumer = Consumer::with_config(GeneratorConfig {
                seed: *seed,
                ..self.config
            })
            .with_telemetry(self.telemetry.clone());
            probe_suites.push(consumer.generate(component)?);
        }
        Ok(MutationConfig {
            probe_suites,
            silence_panics: true,
            bit_enabled,
            telemetry: self.telemetry.clone(),
            budget: self.budget,
            workers: self.workers(),
            journal_path: self.journal.clone(),
            isolation: self.isolation.clone(),
            incremental: self.incremental,
            ..MutationConfig::default()
        })
    }

    /// Applies the §3.4.2 incremental reuse rule: partitions a parent
    /// suite's history against this bundle's inheritance map.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoInheritanceMap`] when the bundle lacks a map.
    pub fn subclass_plan(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
    ) -> Result<ReusePlan, ConsumerError> {
        let map = component
            .inheritance()
            .ok_or(ConsumerError::NoInheritanceMap)?;
        let history = TestingHistory::from_suite(suite);
        let plan = ReusePlan::analyze(&history, map);
        if self.telemetry.is_enabled() {
            let (skip, retest, obsolete) = plan.counts();
            self.telemetry.incr_by("reuse.skip_retest", skip as u64);
            self.telemetry.incr_by("reuse.retest_reused", retest as u64);
            self.telemetry.incr_by("reuse.obsolete", obsolete as u64);
        }
        Ok(plan)
    }

    /// Persists a session's artefacts — the `Result.txt`-style log and the
    /// suite — under `dir`, with retrying I/O and graceful degradation.
    ///
    /// This never fails: transient write errors are retried under
    /// `policy`, and an artefact whose writes are exhausted is *skipped*
    /// with a note in [`PersistedSession::notes`] rather than aborting the
    /// session (the in-memory report stays authoritative). Retries bump
    /// the `harden.retry` counter; each skipped artefact bumps
    /// `harden.degraded`.
    pub fn persist_session(
        &self,
        report: &SelfTestReport,
        dir: impl AsRef<Path>,
        policy: &IoPolicy,
    ) -> PersistedSession {
        let dir = dir.as_ref();
        let mut session = PersistedSession {
            log_path: None,
            suite_path: None,
            retries: 0,
            notes: Vec::new(),
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            session
                .notes
                .push(format!("could not create {}: {e}", dir.display()));
            self.telemetry.incr("harden.degraded");
            return session;
        }
        let log_path = dir.join("Result.txt");
        let attempt = report.log.write_to_path_guarded(&log_path, policy);
        session.retries += attempt.retries;
        match attempt.result {
            Ok(()) => session.log_path = Some(log_path),
            Err(e) => {
                session.notes.push(format!("log not persisted: {e}"));
                self.telemetry.incr("harden.degraded");
            }
        }
        let suite_path = dir.join("suite.txt");
        match save_suite_to_path(&report.suite, &suite_path, policy) {
            Ok(retries) => {
                session.retries += retries;
                session.suite_path = Some(suite_path);
            }
            Err(e) => {
                session.notes.push(format!("suite not persisted: {e}"));
                self.telemetry.incr("harden.degraded");
            }
        }
        if session.retries > 0 {
            self.telemetry
                .incr_by("harden.retry", session.retries as u64);
        }
        session
    }
}

/// What [`Consumer::persist_session`] managed to write. A `None` path
/// means that artefact was skipped after its retries were exhausted; the
/// reason is in [`PersistedSession::notes`].
#[derive(Debug, Clone)]
pub struct PersistedSession {
    /// Where the `Result.txt` log landed, if it did.
    pub log_path: Option<PathBuf>,
    /// Where the suite file landed, if it did.
    pub suite_path: Option<PathBuf>,
    /// Total I/O retries spent across both artefacts.
    pub retries: u32,
    /// One entry per degradation (skipped artefact or unusable directory).
    pub notes: Vec<String>,
}

impl PersistedSession {
    /// True when every artefact was written (possibly after retries).
    pub fn is_complete(&self) -> bool {
        self.log_path.is_some() && self.suite_path.is_some() && self.notes.is_empty()
    }
}

impl Default for Consumer {
    fn default() -> Self {
        Self::new()
    }
}

/// True when the spec takes `Provider*` parameters (the warehouse demo
/// family), which the consumer satisfies from the demo provider pool.
fn spec_uses_provider(spec: &concat_tspec::ClassSpec) -> bool {
    spec.methods
        .iter()
        .flat_map(|m| &m.params)
        .any(|p| matches!(p.domain, concat_tspec::Domain::Pointer { ref class_name, .. } if class_name == "Provider"))
}

/// Registers the demo provider pool for `Provider*` parameters so the
/// warehouse example self-tests out of the box. Kept here (not in the
/// driver) because which objects satisfy a pointer domain is a consumer
/// decision.
fn concat_components_provider_shim(inputs: &mut concat_driver::InputGenerator) {
    inputs.register_provider(
        "Provider",
        Box::new(|rng| {
            let id = rng.int_in(1, 3);
            concat_runtime::Value::Obj(concat_runtime::ObjRef::new("Provider", format!("p{id}")))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use concat_components::*;
    use std::rc::Rc;

    fn stack_bundle() -> SelfTestable {
        SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory)).build()
    }

    fn sortable_bundle() -> SelfTestable {
        let switch = concat_mutation::MutationSwitch::new();
        SelfTestableBuilder::new(
            sortable_spec(),
            Rc::new(CSortableObListFactory::new(switch.clone())),
        )
        .mutation(sortable_inventory(), switch)
        .inheritance(sortable_inheritance_map())
        .build()
    }

    #[test]
    fn stack_self_test_passes() {
        let report = Consumer::with_seed(7).self_test(&stack_bundle()).unwrap();
        assert!(report.all_passed(), "{}", report.summary());
        assert!(report.assertion_checks > 0, "invariants were evaluated");
        assert_eq!(report.assertion_violations, 0);
        assert!(report.log.render().contains("OK!"));
        assert!(report.summary().contains("BoundedStack"));
    }

    #[test]
    fn product_self_test_uses_provider_pool() {
        let bundle =
            SelfTestableBuilder::new(product_spec(), Rc::new(ProductFactory::new())).build();
        let report = Consumer::with_seed(9).self_test(&bundle).unwrap();
        // Some transactions are error-recovery ones (database precondition
        // violations); the bulk passes.
        assert!(report.result.passed() > report.result.failed());
        assert_eq!(
            report.suite.stats.manual_args, 0,
            "provider pool fills Provider*"
        );
    }

    #[test]
    fn quality_evaluation_requires_mutation_support() {
        let consumer = Consumer::with_seed(1);
        let bundle = stack_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        assert_eq!(
            consumer
                .evaluate_quality(&bundle, &suite, &["Push"], &[])
                .unwrap_err(),
            ConsumerError::NoMutationSupport
        );
    }

    #[test]
    fn quality_evaluation_runs_on_sortable() {
        let consumer = Consumer::with_seed(3);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        // Keep the unit test fast: one method, a slice of the suite.
        let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(40).collect();
        let small = suite.filtered(&ids);
        let run = consumer
            .evaluate_quality(&bundle, &small, &["FindMax"], &[])
            .unwrap();
        assert!(run.total() > 10);
        assert!(run.killed() > 0);
    }

    fn sharded_sortable_bundle() -> SelfTestable {
        let switch = concat_mutation::MutationSwitch::new();
        SelfTestableBuilder::new(
            sortable_spec(),
            Rc::new(CSortableObListFactory::new(switch.clone())),
        )
        .mutation(sortable_inventory(), switch)
        .mutation_shards(std::sync::Arc::new(CSortableObListFactory::default()))
        .inheritance(sortable_inheritance_map())
        .build()
    }

    #[test]
    fn sharded_quality_evaluation_matches_sequential() {
        let consumer = Consumer::with_seed(3);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(40).collect();
        let small = suite.filtered(&ids);
        let sequential = consumer
            .evaluate_quality(&bundle, &small, &["FindMax"], &[])
            .unwrap();
        for workers in [1, 3] {
            let run = Consumer::with_seed(3)
                .with_workers(workers)
                .evaluate_quality(&sharded_sortable_bundle(), &small, &["FindMax"], &[])
                .unwrap();
            assert_eq!(
                run.results, sequential.results,
                "workers = {workers}: sharded run must match the sequential verdicts"
            );
            assert_eq!(run.score(), sequential.score());
        }
    }

    #[test]
    fn journaled_quality_evaluation_replays_on_rerun() {
        let dir = std::env::temp_dir().join("concat-core-journal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.journal");
        let consumer = Consumer::with_seed(3).with_workers(2).with_journal(&path);
        assert_eq!(consumer.journal(), Some(path.as_path()));
        let bundle = sharded_sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(40).collect();
        let small = suite.filtered(&ids);
        let first = consumer
            .evaluate_quality(&bundle, &small, &["FindMax"], &[])
            .unwrap();
        // Rerun against the completed journal: every verdict replays and
        // the run is byte-identical.
        let again = consumer
            .evaluate_quality(&sharded_sortable_bundle(), &small, &["FindMax"], &[])
            .unwrap();
        assert_eq!(again.results, first.results);
        assert_eq!(again.score(), first.score());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn amplification_improves_quality_on_sortable() {
        let consumer = Consumer::with_seed(3);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        // A deliberately thin base suite so mutants survive it.
        let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(8).collect();
        let small = suite.filtered(&ids);
        let amplify = AmplifyConfig {
            max_rounds: 2,
            max_candidates_per_round: 24,
            ..AmplifyConfig::default()
        };
        let outcome = consumer
            .amplify_quality(&bundle, &small, &["FindMax"], &[4242], &amplify)
            .unwrap();
        assert!(outcome.final_score() >= outcome.baseline_score);
        assert_eq!(
            outcome.suite.len(),
            small.len() + outcome.total_kept(),
            "amplified suite = base + kept candidates"
        );
        // Determinism: the same consumer reproduces the outcome exactly.
        let again = Consumer::with_seed(3)
            .amplify_quality(&sortable_bundle(), &small, &["FindMax"], &[4242], &amplify)
            .unwrap();
        assert_eq!(again.run.results, outcome.run.results);
        assert_eq!(again.rounds, outcome.rounds);
    }

    #[test]
    fn corpus_amplification_deposits_and_reseeds_killers() {
        use concat_obs::{MemorySink, Summary, Telemetry};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join("concat-core-corpus");
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = dir.join("corpus");
        let amplify = AmplifyConfig {
            max_rounds: 2,
            max_candidates_per_round: 24,
            ..AmplifyConfig::default()
        };
        let run = |seed| {
            let sink = Arc::new(MemorySink::new());
            let consumer = Consumer::with_seed(seed)
                .with_corpus(&corpus)
                .with_telemetry(Telemetry::new(sink.clone()));
            assert_eq!(consumer.corpus(), Some(corpus.as_path()));
            let bundle = sortable_bundle();
            let suite = consumer.generate(&bundle).unwrap();
            let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(8).collect();
            let small = suite.filtered(&ids);
            let outcome = consumer
                .amplify_quality(&bundle, &small, &["FindMax"], &[4242], &amplify)
                .unwrap();
            (outcome, Summary::from_events(&sink.events()))
        };
        let (first, stats) = run(3);
        assert!(first.total_kept() > 0, "fixture must amplify");
        assert!(
            stats.counters.get("corpus.deposited").copied().unwrap_or(0) >= 1,
            "kept killers are deposited: {:?}",
            stats.counters
        );
        // A second campaign over the same thin base replays the deposited
        // killers as round-1 candidates and lands on at least as good a
        // score without having to resynthesize them.
        let (second, stats) = run(3);
        assert!(
            stats.counters.get("corpus.seeded").copied().unwrap_or(0) >= 1,
            "corpus cases seed the next campaign: {:?}",
            stats.counters
        );
        assert!(second.final_score() >= first.final_score());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subclass_plan_partitions() {
        let consumer = Consumer::with_seed(4);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        let plan = consumer.subclass_plan(&bundle, &suite).unwrap();
        let (skip, retest, obsolete) = plan.counts();
        assert!(skip > 0, "inherited-only transactions exist");
        assert!(retest > 0, "new-method transactions exist");
        assert_eq!(obsolete, 0);
        assert_eq!(skip + retest, suite.len());
    }

    #[test]
    fn subclass_plan_requires_map() {
        let consumer = Consumer::with_seed(4);
        let bundle = stack_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        assert_eq!(
            consumer.subclass_plan(&bundle, &suite).unwrap_err(),
            ConsumerError::NoInheritanceMap
        );
    }

    #[test]
    fn budget_propagates_to_the_runner() {
        use concat_runtime::Budget;
        let report = Consumer::with_seed(7)
            .with_budget(Budget::unlimited().with_max_calls(0))
            .self_test(&stack_bundle())
            .unwrap();
        assert!(report.result.harness_stops() > 0);
        assert!(!report.notes().is_empty());
        assert!(
            report.summary().contains("harness stop(s)"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn persist_session_round_trips_artifacts() {
        let consumer = Consumer::with_seed(7);
        let report = consumer.self_test(&stack_bundle()).unwrap();
        let dir = std::env::temp_dir().join("concat-core-persist-ok");
        let _ = std::fs::remove_dir_all(&dir);
        let session = consumer.persist_session(&report, &dir, &IoPolicy::default());
        assert!(session.is_complete(), "{:?}", session.notes);
        assert_eq!(session.retries, 0);
        let log = std::fs::read_to_string(session.log_path.as_ref().unwrap()).unwrap();
        assert!(log.contains("OK!"));
        let (suite, _) = concat_driver::load_suite_from_path(
            session.suite_path.as_ref().unwrap(),
            &IoPolicy::default(),
        )
        .unwrap();
        assert_eq!(suite.len(), report.suite.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_session_degrades_instead_of_failing() {
        use concat_obs::{MemorySink, Telemetry};
        use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};
        let sink = std::sync::Arc::new(MemorySink::new());
        let consumer = Consumer::with_seed(7).with_telemetry(Telemetry::new(sink.clone()));
        let report = consumer.self_test(&stack_bundle()).unwrap();
        let dir = std::env::temp_dir().join("concat-core-persist-degraded");
        let _ = std::fs::remove_dir_all(&dir);
        let injector = FaultInjector::seeded(1);
        injector.fail_always(concat_driver::LOG_WRITE_OP, FaultKind::Transient);
        injector.fail_nth(concat_driver::SUITE_SAVE_OP, 1, FaultKind::Transient);
        let policy = IoPolicy::with_retry(RetryPolicy::no_delay(2)).injector(injector);
        let session = consumer.persist_session(&report, &dir, &policy);
        assert!(session.log_path.is_none(), "log writes were exhausted");
        assert!(
            session.suite_path.is_some(),
            "suite recovered after one transient: {:?}",
            session.notes
        );
        assert_eq!(session.notes.len(), 1);
        assert!(session.retries > 0);
        let summary = concat_obs::Summary::from_events(&sink.events());
        assert!(
            summary
                .counters
                .get("harden.degraded")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert!(summary.counters.get("harden.retry").copied().unwrap_or(0) >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display() {
        assert!(ConsumerError::NoMutationSupport
            .to_string()
            .contains("inventory"));
        assert!(ConsumerError::NoInheritanceMap
            .to_string()
            .contains("inheritance"));
        assert!(ConsumerError::NoShardSupport
            .to_string()
            .contains("sharded"));
    }

    #[test]
    fn process_isolation_requires_a_sharded_bundle() {
        use concat_mutation::{IsolationMode, ProcessIsolation};
        let consumer = Consumer::with_seed(3)
            .with_isolation(IsolationMode::Process(ProcessIsolation::new(["worker"])));
        assert!(consumer.isolation().is_process());
        // Mutation support but no sharding seam: process shards cannot be
        // rebuilt, so the request is an error rather than a silent
        // fallback to thread isolation.
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        assert_eq!(
            consumer
                .evaluate_quality(&bundle, &suite, &["FindMax"], &[])
                .unwrap_err(),
            ConsumerError::NoShardSupport
        );
        assert_eq!(
            consumer
                .run_shard_worker(&bundle, &suite, &["FindMax"], &[])
                .unwrap_err(),
            ConsumerError::NoShardSupport
        );
    }
}
