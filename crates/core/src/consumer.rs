//! The consumer workflow (paper §3.1, second half).
//!
//! "To use a self-testable component, a consumer should: generate test
//! cases based on the t-spec; compile the component in test mode; execute
//! tests; analyze the results obtained." [`Consumer::self_test`] runs all
//! four steps; [`Consumer::evaluate_quality`] additionally runs the §4
//! mutation analysis when the bundle carries an inventory; and
//! [`Consumer::subclass_plan`] applies the §3.4.2 incremental reuse rule.

use crate::bundle::SelfTestable;
use concat_driver::{
    DriverGenerator, GenerateError, GeneratorConfig, ReusePlan, SuiteResult, TestLog, TestRunner,
    TestSuite, TestingHistory,
};
use concat_mutation::{enumerate_mutants, run_mutation_analysis, MutationConfig, MutationRun};
use concat_obs::Telemetry;
use std::fmt;

/// The outcome of one consumer self-test session.
#[derive(Debug, Clone)]
pub struct SelfTestReport {
    /// The generated suite (seed recorded inside).
    pub suite: TestSuite,
    /// Per-case execution results.
    pub result: SuiteResult,
    /// The `Result.txt`-style log.
    pub log: TestLog,
    /// Assertions evaluated during the session.
    pub assertion_checks: u64,
    /// Assertion violations observed during the session.
    pub assertion_violations: u64,
}

impl SelfTestReport {
    /// True when every test case passed.
    pub fn all_passed(&self) -> bool {
        self.result.failed() == 0
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} case(s), {} passed, {} failed ({} by assertion); {} assertion check(s)",
            self.suite.class_name,
            self.result.cases.len(),
            self.result.passed(),
            self.result.failed(),
            self.result.assertion_failures(),
            self.assertion_checks
        )
    }
}

impl fmt::Display for SelfTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Errors of the consumer workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsumerError {
    /// Test generation failed.
    Generate(GenerateError),
    /// Quality evaluation requested but the bundle has no mutation
    /// inventory/switch.
    NoMutationSupport,
    /// Reuse planning requested but the bundle has no inheritance map.
    NoInheritanceMap,
}

impl fmt::Display for ConsumerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumerError::Generate(e) => write!(f, "generation failed: {e}"),
            ConsumerError::NoMutationSupport => {
                f.write_str("bundle carries no mutation inventory/switch")
            }
            ConsumerError::NoInheritanceMap => f.write_str("bundle carries no inheritance map"),
        }
    }
}

impl std::error::Error for ConsumerError {}

impl From<GenerateError> for ConsumerError {
    fn from(e: GenerateError) -> Self {
        ConsumerError::Generate(e)
    }
}

/// The consumer-side test session driver.
#[derive(Debug, Clone)]
pub struct Consumer {
    config: GeneratorConfig,
    telemetry: Telemetry,
}

impl Consumer {
    /// A consumer with the default generation configuration.
    pub fn new() -> Self {
        Consumer {
            config: GeneratorConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// A consumer with an explicit generation configuration.
    pub fn with_config(config: GeneratorConfig) -> Self {
        Consumer {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A consumer with the default configuration but a chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_config(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    /// Attaches a telemetry handle. It propagates through the whole
    /// session: the driver generator (`generate` spans, `gen.*` counters),
    /// the runner (`suite`/`case` spans, `case.*`/`call.*`/`bit.*`
    /// counters), mutation analysis (`mutant` spans, `mutant.*` counters)
    /// and reuse planning (`reuse.*` counters). Disabled — and free — by
    /// default.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle this consumer propagates.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The generation configuration in use.
    pub fn config(&self) -> GeneratorConfig {
        self.config
    }

    /// Generates the transaction-covering suite for the bundle
    /// (step 1 of the workflow).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] from the driver generator.
    pub fn generate(&self, component: &SelfTestable) -> Result<TestSuite, ConsumerError> {
        let mut gen = DriverGenerator::new(self.config).with_telemetry(self.telemetry.clone());
        if component
            .spec()
            .methods
            .iter()
            .flat_map(|m| &m.params)
            .any(|p| matches!(p.domain, concat_tspec::Domain::Pointer { ref class_name, .. } if class_name == "Provider"))
        {
            concat_components_provider_shim(gen.inputs_mut());
        }
        Ok(gen.generate(component.spec())?)
    }

    /// Runs the full self-test: generate, switch to test mode, execute,
    /// analyze (steps 1–4).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] from the driver generator.
    pub fn self_test(&self, component: &SelfTestable) -> Result<SelfTestReport, ConsumerError> {
        let suite = self.generate(component)?;
        self.run_suite(component, &suite)
    }

    /// Executes a pre-generated suite (used by reuse flows that run a
    /// filtered suite).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` keeps the signature
    /// uniform with [`Consumer::self_test`].
    pub fn run_suite(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
    ) -> Result<SelfTestReport, ConsumerError> {
        // test mode ON — "compile in test mode"
        let runner = TestRunner::new().with_telemetry(self.telemetry.clone());
        runner.bit_control().reset_counters();
        let mut log = TestLog::new();
        let result = runner.run_suite(component.factory(), suite, &mut log);
        Ok(SelfTestReport {
            suite: suite.clone(),
            result,
            log,
            assertion_checks: runner.bit_control().checks(),
            assertion_violations: runner.bit_control().violations(),
        })
    }

    /// Runs the §4 mutation analysis over the bundle's inventory for the
    /// given target methods, using `suite` as the killing test set.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoMutationSupport`] when the bundle lacks an
    /// inventory or switch; generation errors when probe suites cannot be
    /// built.
    pub fn evaluate_quality(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
    ) -> Result<MutationRun, ConsumerError> {
        self.evaluate_quality_with(component, suite, target_methods, probe_seeds, true)
    }

    /// Like [`Consumer::evaluate_quality`], with an explicit BIT switch —
    /// `bit_enabled: false` is the assertions-off ablation.
    ///
    /// # Errors
    ///
    /// As for [`Consumer::evaluate_quality`].
    pub fn evaluate_quality_with(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
        target_methods: &[&str],
        probe_seeds: &[u64],
        bit_enabled: bool,
    ) -> Result<MutationRun, ConsumerError> {
        let (inventory, switch) = match (component.inventory(), component.switch()) {
            (Some(i), Some(s)) => (i, s),
            _ => return Err(ConsumerError::NoMutationSupport),
        };
        let mutants = enumerate_mutants(inventory, target_methods);
        let mut probe_suites = Vec::with_capacity(probe_seeds.len());
        for seed in probe_seeds {
            let consumer = Consumer::with_config(GeneratorConfig {
                seed: *seed,
                ..self.config
            })
            .with_telemetry(self.telemetry.clone());
            probe_suites.push(consumer.generate(component)?);
        }
        Ok(run_mutation_analysis(
            component.factory(),
            switch,
            suite,
            &mutants,
            &MutationConfig {
                probe_suites,
                silence_panics: true,
                bit_enabled,
                telemetry: self.telemetry.clone(),
            },
        ))
    }

    /// Applies the §3.4.2 incremental reuse rule: partitions a parent
    /// suite's history against this bundle's inheritance map.
    ///
    /// # Errors
    ///
    /// [`ConsumerError::NoInheritanceMap`] when the bundle lacks a map.
    pub fn subclass_plan(
        &self,
        component: &SelfTestable,
        suite: &TestSuite,
    ) -> Result<ReusePlan, ConsumerError> {
        let map = component
            .inheritance()
            .ok_or(ConsumerError::NoInheritanceMap)?;
        let history = TestingHistory::from_suite(suite);
        let plan = ReusePlan::analyze(&history, map);
        if self.telemetry.is_enabled() {
            let (skip, retest, obsolete) = plan.counts();
            self.telemetry.incr_by("reuse.skip_retest", skip as u64);
            self.telemetry.incr_by("reuse.retest_reused", retest as u64);
            self.telemetry.incr_by("reuse.obsolete", obsolete as u64);
        }
        Ok(plan)
    }
}

impl Default for Consumer {
    fn default() -> Self {
        Self::new()
    }
}

/// Registers the demo provider pool for `Provider*` parameters so the
/// warehouse example self-tests out of the box. Kept here (not in the
/// driver) because which objects satisfy a pointer domain is a consumer
/// decision.
fn concat_components_provider_shim(inputs: &mut concat_driver::InputGenerator) {
    inputs.register_provider(
        "Provider",
        Box::new(|rng| {
            let id = rng.int_in(1, 3);
            concat_runtime::Value::Obj(concat_runtime::ObjRef::new("Provider", format!("p{id}")))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use concat_components::*;
    use std::rc::Rc;

    fn stack_bundle() -> SelfTestable {
        SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory)).build()
    }

    fn sortable_bundle() -> SelfTestable {
        let switch = concat_mutation::MutationSwitch::new();
        SelfTestableBuilder::new(
            sortable_spec(),
            Rc::new(CSortableObListFactory::new(switch.clone())),
        )
        .mutation(sortable_inventory(), switch)
        .inheritance(sortable_inheritance_map())
        .build()
    }

    #[test]
    fn stack_self_test_passes() {
        let report = Consumer::with_seed(7).self_test(&stack_bundle()).unwrap();
        assert!(report.all_passed(), "{}", report.summary());
        assert!(report.assertion_checks > 0, "invariants were evaluated");
        assert_eq!(report.assertion_violations, 0);
        assert!(report.log.render().contains("OK!"));
        assert!(report.summary().contains("BoundedStack"));
    }

    #[test]
    fn product_self_test_uses_provider_pool() {
        let bundle =
            SelfTestableBuilder::new(product_spec(), Rc::new(ProductFactory::new())).build();
        let report = Consumer::with_seed(9).self_test(&bundle).unwrap();
        // Some transactions are error-recovery ones (database precondition
        // violations); the bulk passes.
        assert!(report.result.passed() > report.result.failed());
        assert_eq!(
            report.suite.stats.manual_args, 0,
            "provider pool fills Provider*"
        );
    }

    #[test]
    fn quality_evaluation_requires_mutation_support() {
        let consumer = Consumer::with_seed(1);
        let bundle = stack_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        assert_eq!(
            consumer
                .evaluate_quality(&bundle, &suite, &["Push"], &[])
                .unwrap_err(),
            ConsumerError::NoMutationSupport
        );
    }

    #[test]
    fn quality_evaluation_runs_on_sortable() {
        let consumer = Consumer::with_seed(3);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        // Keep the unit test fast: one method, a slice of the suite.
        let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(40).collect();
        let small = suite.filtered(&ids);
        let run = consumer
            .evaluate_quality(&bundle, &small, &["FindMax"], &[])
            .unwrap();
        assert!(run.total() > 10);
        assert!(run.killed() > 0);
    }

    #[test]
    fn subclass_plan_partitions() {
        let consumer = Consumer::with_seed(4);
        let bundle = sortable_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        let plan = consumer.subclass_plan(&bundle, &suite).unwrap();
        let (skip, retest, obsolete) = plan.counts();
        assert!(skip > 0, "inherited-only transactions exist");
        assert!(retest > 0, "new-method transactions exist");
        assert_eq!(obsolete, 0);
        assert_eq!(skip + retest, suite.len());
    }

    #[test]
    fn subclass_plan_requires_map() {
        let consumer = Consumer::with_seed(4);
        let bundle = stack_bundle();
        let suite = consumer.generate(&bundle).unwrap();
        assert_eq!(
            consumer.subclass_plan(&bundle, &suite).unwrap_err(),
            ConsumerError::NoInheritanceMap
        );
    }

    #[test]
    fn error_display() {
        assert!(ConsumerError::NoMutationSupport
            .to_string()
            .contains("inventory"));
        assert!(ConsumerError::NoInheritanceMap
            .to_string()
            .contains("inheritance"));
    }
}
