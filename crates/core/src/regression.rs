//! Regression checking across component releases.
//!
//! The paper motivates Table 3 with exactly this situation: "an
//! application reuses components from a commercial library, and a new
//! release of the library substitutes the old one" (§4). A consumer who
//! persisted the old release's suite *and its transcripts* can diff the
//! new release against them: [`regression_check`] re-runs the suite and
//! reports every behavioural difference.

use crate::bundle::SelfTestable;
use concat_driver::{compare_transcripts, SuiteResult, TestLog, TestRunner, TestSuite, Verdict};
use std::fmt;

/// One behavioural difference between releases.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionFinding {
    /// The distinguishing test case.
    pub case_id: usize,
    /// Human-readable description of the first divergence.
    pub divergence: String,
}

/// The outcome of a regression check.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Class under check.
    pub class_name: String,
    /// Cases executed.
    pub cases_run: usize,
    /// Behavioural differences, in case order.
    pub findings: Vec<RegressionFinding>,
}

impl RegressionReport {
    /// True when the new release is behaviourally indistinguishable from
    /// the recorded baseline on this suite.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "{}: no behavioural change across {} case(s)",
                self.class_name, self.cases_run
            )
        } else {
            writeln!(
                f,
                "{}: {} behavioural change(s) across {} case(s):",
                self.class_name,
                self.findings.len(),
                self.cases_run
            )?;
            for finding in &self.findings {
                writeln!(f, "  TC{}: {}", finding.case_id, finding.divergence)?;
            }
            Ok(())
        }
    }
}

/// Records the baseline: runs `suite` against the current release and
/// returns its transcripts for persistence alongside the suite.
pub fn record_baseline(component: &SelfTestable, suite: &TestSuite) -> SuiteResult {
    let runner = TestRunner::new();
    runner.run_suite(component.factory(), suite, &mut TestLog::new())
}

/// Re-runs `suite` against (a new release of) `component` and diffs every
/// transcript against `baseline`.
///
/// The baseline must come from the *same* suite (same case ids, same
/// order) — typically a [`record_baseline`] result persisted with
/// [`concat_driver::save_suite`].
pub fn regression_check(
    component: &SelfTestable,
    suite: &TestSuite,
    baseline: &SuiteResult,
) -> RegressionReport {
    let observed = record_baseline(component, suite);
    let mut findings = Vec::new();
    for (old, new) in baseline.cases.iter().zip(observed.cases.iter()) {
        debug_assert_eq!(old.case_id, new.case_id, "baseline/suite misalignment");
        if let Verdict::Differs(d) = compare_transcripts(&old.transcript, &new.transcript) {
            findings.push(RegressionFinding {
                case_id: old.case_id,
                divergence: d.to_string(),
            });
        }
    }
    RegressionReport {
        class_name: suite.class_name.clone(),
        cases_run: observed.cases.len(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use crate::consumer::Consumer;
    use concat_components::{coblist_spec, CObListFactory};
    use concat_mutation::{FaultPlan, MutationSwitch, Replacement, ReqConst};
    use std::rc::Rc;

    fn bundle(switch: MutationSwitch) -> SelfTestable {
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch))).build()
    }

    #[test]
    fn identical_release_is_clean() {
        let b = bundle(MutationSwitch::new());
        let suite = Consumer::with_seed(81).generate(&b).unwrap();
        let baseline = record_baseline(&b, &suite);
        let report = regression_check(&b, &suite, &baseline);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cases_run, suite.len());
        assert!(report.to_string().contains("no behavioural change"));
    }

    #[test]
    fn behavioural_change_is_detected_and_localized() {
        // Model a "new release" with a regression by arming a fault after
        // recording the baseline — the mutation switch stands in for the
        // library substitution.
        let switch = MutationSwitch::new();
        let b = bundle(switch.clone());
        let suite = Consumer::with_seed(82).generate(&b).unwrap();
        let baseline = record_baseline(&b, &suite);
        switch.arm(FaultPlan {
            method: "RemoveHead".into(),
            site: 2,
            replacement: Replacement::Const(ReqConst::Zero),
        });
        let report = regression_check(&b, &suite, &baseline);
        switch.disarm();
        assert!(!report.is_clean());
        // Only cases exercising RemoveHead can differ.
        for finding in &report.findings {
            let case = suite
                .cases
                .iter()
                .find(|c| c.id == finding.case_id)
                .unwrap();
            assert!(
                case.method_names().contains(&"RemoveHead"),
                "TC{} does not call RemoveHead",
                finding.case_id
            );
        }
        assert!(report.to_string().contains("behavioural change(s)"));
    }
}
