//! Testability assessment: the producer's pre-shipping quality document.
//!
//! Testability "encompasses all aspects that ease software testing, from
//! the quality of its specification … to the availability of test support"
//! (paper §1). [`assess`] gathers, for one bundle, everything a producer
//! should look at before shipping: packaging errors (hard), specification
//! lints (soft), model metrics, and the observability/controllability
//! surface the BIT capabilities provide.

use crate::bundle::SelfTestable;
use crate::producer::{PackagingError, Producer};
use concat_bit::BitControl;
use concat_tfm::ModelMetrics;
use concat_tspec::{lint_spec, LintWarning, MethodCategory};
use std::fmt;

/// One bundle's testability assessment.
#[derive(Debug, Clone)]
pub struct TestabilityReport {
    /// Class under assessment.
    pub class_name: String,
    /// Hard packaging problems ([`Producer::package`]); empty = shippable.
    pub packaging: Vec<PackagingError>,
    /// Soft specification quality warnings.
    pub lints: Vec<LintWarning>,
    /// Size/complexity of the test model.
    pub metrics: ModelMetrics,
    /// Number of observables the reporter exposes (observability).
    pub observables: usize,
    /// Number of controllable inputs across all methods (controllability:
    /// total declared parameters).
    pub controllable_inputs: usize,
    /// True when the bundle carries mutation support (quality evaluation
    /// possible).
    pub mutation_ready: bool,
}

impl TestabilityReport {
    /// True when there are no hard problems.
    pub fn is_shippable(&self) -> bool {
        self.packaging.is_empty()
    }

    /// Renders the report as readable text.
    pub fn render(&self) -> String {
        let mut out = format!("Testability assessment — {}\n", self.class_name);
        out.push_str(&format!("  model: {}\n", self.metrics));
        out.push_str(&format!(
            "  observability: {} reporter observable(s)\n",
            self.observables
        ));
        out.push_str(&format!(
            "  controllability: {} declared input parameter(s)\n",
            self.controllable_inputs
        ));
        out.push_str(&format!(
            "  mutation evaluation: {}\n",
            if self.mutation_ready {
                "available"
            } else {
                "not packaged"
            }
        ));
        if self.packaging.is_empty() {
            out.push_str("  packaging: OK\n");
        } else {
            out.push_str("  packaging problems:\n");
            for p in &self.packaging {
                out.push_str(&format!("    - {p}\n"));
            }
        }
        if self.lints.is_empty() {
            out.push_str("  specification lints: none\n");
        } else {
            out.push_str("  specification lints:\n");
            for l in &self.lints {
                out.push_str(&format!("    - {l}\n"));
            }
        }
        out
    }
}

impl fmt::Display for TestabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Assesses a bundle's testability.
pub fn assess(component: &SelfTestable) -> TestabilityReport {
    let packaging = Producer::package(component).err().unwrap_or_default();
    let lints = lint_spec(component.spec());
    let metrics = ModelMetrics::of(&component.spec().tfm);
    let controllable_inputs = component
        .spec()
        .methods
        .iter()
        .map(|m| m.params.len())
        .sum();
    // Observability: probe one instance's reporter, when constructible.
    let observables = component
        .spec()
        .methods
        .iter()
        .find(|m| m.category == MethodCategory::Constructor && m.params.is_empty())
        .and_then(|ctor| {
            component
                .factory()
                .construct(&ctor.name, &[], BitControl::new_enabled())
                .ok()
        })
        .map_or(0, |instance| instance.reporter().len());
    TestabilityReport {
        class_name: component.class_name().to_owned(),
        packaging,
        lints,
        metrics,
        observables,
        controllable_inputs,
        mutation_ready: component.inventory().is_some() && component.switch().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use concat_components::*;
    use std::rc::Rc;

    #[test]
    fn shipped_subjects_assess_clean() {
        let bundle = SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default()))
            .mutation(coblist_inventory(), concat_mutation::MutationSwitch::new())
            .build();
        let report = assess(&bundle);
        assert!(report.is_shippable(), "{report}");
        // The only lints on the shipped list are the parameterless
        // mutators (RemoveHead/RemoveTail/RemoveAll) — soft notices that
        // those methods can only be varied through object state.
        assert!(
            report
                .lints
                .iter()
                .all(|l| matches!(l, LintWarning::ParameterlessUpdate { .. })),
            "{report}"
        );
        assert!(report.mutation_ready);
        assert!(report.observables >= 2, "count + elements");
        assert!(report.controllable_inputs > 5);
        assert_eq!(report.metrics.nodes, 10);
        assert!(report.render().contains("packaging: OK"));
    }

    #[test]
    fn stack_assessment_counts_surface() {
        let bundle =
            SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory)).build();
        let report = assess(&bundle);
        assert!(report.is_shippable());
        assert!(!report.mutation_ready);
        // BoundedStack's parameterless probe cannot be built (its ctor
        // takes a capacity), so observability falls back to 0 — the report
        // states it rather than failing.
        assert_eq!(report.observables, 0);
        assert!(report.render().contains("Testability assessment"));
    }

    #[test]
    fn broken_bundle_reports_problems() {
        let mut spec = coblist_spec();
        spec.methods.push(concat_tspec::MethodSpec::new(
            "m99",
            "GhostMethod",
            concat_tspec::MethodCategory::Update, // also a lint: no params
        ));
        // keep validation happy: put it on a node
        let n2 = spec.tfm.node_by_label("n2").unwrap();
        let ghost = spec
            .tfm
            .add_node("ghost", concat_tfm::NodeKind::Task, ["m99"]);
        spec.tfm.add_edge(n2, ghost);
        let n8 = spec.tfm.node_by_label("n8").unwrap();
        spec.tfm.add_edge(ghost, n8);
        let bundle = SelfTestableBuilder::new(spec, Rc::new(CObListFactory::default())).build();
        let report = assess(&bundle);
        assert!(!report.is_shippable(), "GhostMethod is not implemented");
        assert!(!report.lints.is_empty(), "parameterless update lint fires");
        assert!(report.render().contains("GhostMethod"));
    }
}
