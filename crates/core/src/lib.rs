//! # concat-core
//!
//! Producer/consumer workflows over self-testable component bundles.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). This is
//! the crate that ties the substrates into the paper's methodology
//! (§3.1):
//!
//! * [`SelfTestable`] / [`SelfTestableBuilder`] — the shipped bundle:
//!   t-spec + factory (+ mutation inventory + inheritance map);
//! * [`Producer`] — the producer-side packaging checks (model validated,
//!   t-spec coherent with the implementation, BIT observable);
//! * [`Consumer`] — the consumer-side session: generate from the t-spec,
//!   run in test mode, analyze; plus mutation-based quality evaluation
//!   (§4) and the incremental subclass reuse plan (§3.4.2).
//!
//! # Examples
//!
//! ```
//! use concat_core::{Consumer, Producer, SelfTestableBuilder};
//! use concat_components::{bounded_stack_spec, BoundedStackFactory};
//! use std::rc::Rc;
//!
//! // Producer side: package the component with its t-spec.
//! let bundle = SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory))
//!     .build();
//! Producer::package(&bundle).expect("coherent packaging");
//!
//! // Consumer side: self-test out of the box.
//! let report = Consumer::with_seed(42).self_test(&bundle).unwrap();
//! assert!(report.all_passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assess;
mod bundle;
mod consumer;
mod interclass;
mod invariant;
mod producer;
mod regression;

pub use assess::{assess, TestabilityReport};
pub use bundle::{SelfTestable, SelfTestableBuilder};
pub use consumer::{Consumer, ConsumerError, PersistedSession, SelfTestReport};
pub use interclass::{CompositeFactory, CompositeSpec, CompositeSpecBuilder, Role};
pub use invariant::InvariantCampaign;
pub use producer::{PackagingError, Producer};
pub use regression::{record_baseline, regression_check, RegressionFinding, RegressionReport};
