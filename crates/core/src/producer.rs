//! The producer workflow (paper §3.1, first half).
//!
//! "The component producer performs three tasks for developing a
//! self-testable component: construct the test model; develop the t-spec
//! from the test model and insert it into the component source code;
//! instrument component source code to introduce built-in test
//! mechanisms." [`Producer::package`] checks that all three were done
//! coherently before the bundle is shipped.

use crate::bundle::SelfTestable;
use concat_bit::BitControl;
use concat_tspec::{MethodCategory, SpecError};
use std::fmt;

/// A packaging problem found by [`Producer::package`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackagingError {
    /// The embedded t-spec fails its own validation.
    Spec(SpecError),
    /// The factory's class name differs from the spec's.
    ClassNameMismatch {
        /// Name in the spec.
        spec: String,
        /// Name reported by the factory.
        factory: String,
    },
    /// A probe construction through a spec constructor failed.
    ConstructorFailed {
        /// The constructor method id.
        id: String,
        /// The failure message.
        message: String,
    },
    /// A spec method is not dispatchable on a constructed instance.
    MissingMethod {
        /// The missing runtime method name.
        method: String,
    },
    /// The instance's reporter produced no observables — the BIT
    /// observability requirement is not met.
    EmptyReporter,
    /// The mutation inventory attached to the bundle fails validation.
    Inventory(String),
}

impl fmt::Display for PackagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackagingError::Spec(e) => write!(f, "t-spec: {e}"),
            PackagingError::ClassNameMismatch { spec, factory } => {
                write!(
                    f,
                    "class name mismatch: spec says {spec}, factory says {factory}"
                )
            }
            PackagingError::ConstructorFailed { id, message } => {
                write!(f, "constructor {id} failed on probe arguments: {message}")
            }
            PackagingError::MissingMethod { method } => {
                write!(
                    f,
                    "spec method {method} is not implemented by the component"
                )
            }
            PackagingError::EmptyReporter => {
                f.write_str("reporter produced no observables (no BIT observability)")
            }
            PackagingError::Inventory(msg) => write!(f, "mutation inventory: {msg}"),
        }
    }
}

impl std::error::Error for PackagingError {}

/// The producer-side packaging validator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Producer;

impl Producer {
    /// Checks a bundle's internal coherence.
    ///
    /// Validates the t-spec, the factory/spec class-name agreement, that
    /// each *parameterless* constructor builds an instance, that every
    /// non-constructor spec method is dispatchable on such an instance,
    /// that the reporter observes something, and that any attached
    /// mutation inventory validates.
    ///
    /// # Errors
    ///
    /// Every problem found, in detection order.
    pub fn package(component: &SelfTestable) -> Result<(), Vec<PackagingError>> {
        let mut errors = Vec::new();
        let spec = component.spec();
        for e in spec.validate() {
            errors.push(PackagingError::Spec(e));
        }
        if spec.class_name != component.factory().class_name() {
            errors.push(PackagingError::ClassNameMismatch {
                spec: spec.class_name.clone(),
                factory: component.factory().class_name().to_owned(),
            });
        }
        // Probe with the first parameterless constructor.
        let probe_ctor = spec
            .methods
            .iter()
            .find(|m| m.category == MethodCategory::Constructor && m.params.is_empty());
        if let Some(ctor) = probe_ctor {
            match component
                .factory()
                .construct(&ctor.name, &[], BitControl::new_enabled())
            {
                Err(e) => errors.push(PackagingError::ConstructorFailed {
                    id: ctor.id.clone(),
                    message: e.to_string(),
                }),
                Ok(instance) => {
                    for m in &spec.methods {
                        if m.category == MethodCategory::Constructor {
                            continue;
                        }
                        if !instance.has_method(&m.name) {
                            errors.push(PackagingError::MissingMethod {
                                method: m.name.clone(),
                            });
                        }
                    }
                    if instance.reporter().is_empty() {
                        errors.push(PackagingError::EmptyReporter);
                    }
                }
            }
        }
        if let Some(inv) = component.inventory() {
            for msg in inv.validate() {
                errors.push(PackagingError::Inventory(msg));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SelfTestableBuilder;
    use concat_bit::{BuiltInTest, ComponentFactory, StateReport, TestableComponent};
    use concat_runtime::{
        unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
    };
    use concat_tspec::{ClassSpec, ClassSpecBuilder};
    use std::rc::Rc;

    struct Blob {
        ctl: BitControl,
        report_something: bool,
    }

    impl Component for Blob {
        fn class_name(&self) -> &'static str {
            "Blob"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Work", "~Blob"]
        }
        fn invoke(&mut self, m: &str, _a: &[Value]) -> InvokeResult {
            match m {
                "Work" | "~Blob" => Ok(Value::Null),
                _ => Err(unknown_method("Blob", m)),
            }
        }
    }

    impl BuiltInTest for Blob {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            Ok(())
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            if self.report_something {
                r.set("ok", Value::Bool(true));
            }
            r
        }
    }

    struct BlobFactory {
        class: &'static str,
        report_something: bool,
        fail_ctor: bool,
    }

    impl ComponentFactory for BlobFactory {
        fn class_name(&self) -> &str {
            self.class
        }
        fn construct(
            &self,
            constructor: &str,
            _a: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            if self.fail_ctor {
                return Err(TestException::domain(constructor, "nope"));
            }
            match constructor {
                "Blob" => Ok(Box::new(Blob {
                    ctl,
                    report_something: self.report_something,
                })),
                other => Err(unknown_method("Blob", other)),
            }
        }
    }

    fn spec(extra_method: bool) -> ClassSpec {
        let mut b = ClassSpecBuilder::new("Blob")
            .constructor("m1", "Blob")
            .method("m2", "Work", concat_tspec::MethodCategory::Update)
            .destructor("m3", "~Blob");
        if extra_method {
            b = b.method("m4", "Ghost", concat_tspec::MethodCategory::Access);
        }
        let mut b = b
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3");
        if extra_method {
            b = b.task_node("n4", ["m4"]).edge("n2", "n4").edge("n4", "n3");
        }
        b.build().unwrap()
    }

    fn bundle(class: &'static str, report: bool, fail: bool, extra: bool) -> SelfTestable {
        SelfTestableBuilder::new(
            spec(extra),
            Rc::new(BlobFactory {
                class,
                report_something: report,
                fail_ctor: fail,
            }),
        )
        .build()
    }

    #[test]
    fn coherent_bundle_packages_cleanly() {
        assert!(Producer::package(&bundle("Blob", true, false, false)).is_ok());
    }

    #[test]
    fn class_name_mismatch_detected() {
        let errs = Producer::package(&bundle("Other", true, false, false)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, PackagingError::ClassNameMismatch { .. })));
    }

    #[test]
    fn failing_constructor_detected() {
        let errs = Producer::package(&bundle("Blob", true, true, false)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, PackagingError::ConstructorFailed { .. })));
    }

    #[test]
    fn missing_method_detected() {
        let errs = Producer::package(&bundle("Blob", true, false, true)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, PackagingError::MissingMethod { method } if method == "Ghost")));
    }

    #[test]
    fn empty_reporter_detected() {
        let errs = Producer::package(&bundle("Blob", false, false, false)).unwrap_err();
        assert!(errs.contains(&PackagingError::EmptyReporter));
    }

    #[test]
    fn bad_inventory_detected() {
        let st = SelfTestableBuilder::new(
            spec(false),
            Rc::new(BlobFactory {
                class: "Blob",
                report_something: true,
                fail_ctor: false,
            }),
        )
        .mutation(
            concat_mutation::ClassInventory::new("Blob").method(
                concat_mutation::MethodInventory::new("Work").site(0, "ghost", "undeclared"),
            ),
            concat_mutation::MutationSwitch::new(),
        )
        .build();
        let errs = Producer::package(&st).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, PackagingError::Inventory(_))));
    }

    #[test]
    fn real_subjects_package_cleanly() {
        use concat_components::*;
        let st = SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default()))
            .mutation(coblist_inventory(), concat_mutation::MutationSwitch::new())
            .build();
        assert_eq!(Producer::package(&st), Ok(()));
        let st =
            SelfTestableBuilder::new(sortable_spec(), Rc::new(CSortableObListFactory::default()))
                .mutation(sortable_inventory(), concat_mutation::MutationSwitch::new())
                .inheritance(sortable_inheritance_map())
                .build();
        assert_eq!(Producer::package(&st), Ok(()));
        let st = SelfTestableBuilder::new(product_spec(), Rc::new(ProductFactory::new())).build();
        assert_eq!(Producer::package(&st), Ok(()));
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            PackagingError::EmptyReporter,
            PackagingError::MissingMethod { method: "X".into() },
            PackagingError::Inventory("bad".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
