//! Interclass testing: components made of more than one class.
//!
//! The paper's short-term future work: "we are also extending this
//! approach for components having more than one class; so instead of
//! method's interactions inside a class (intraclass testing), we focus on
//! interactions between classes (interclass testing)" (§6). The TFM was
//! chosen precisely because "it can be used for components having more
//! than one object … as it can show the sequencing of activities performed
//! by several objects as well" (§3.2).
//!
//! The extension is a *flattening*: a [`CompositeSpec`] names each member
//! class as a **role**, qualifies its methods as `role.Method`, and builds
//! one interclass TFM over the qualified methods. Flattening yields an
//! ordinary `ClassSpec`, and [`CompositeFactory`] an ordinary
//! `ComponentFactory` whose instances route `role.Method` calls to the
//! role's object — so the whole existing pipeline (driver generation,
//! execution, oracle, history, mutation analysis) applies unchanged.

use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_runtime::{
    unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat_tfm::NodeKind;
use concat_tspec::{AttributeSpec, ClassSpec, MethodCategory, MethodSpec, SpecError};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One member class of a composite, under a role name.
#[derive(Debug, Clone)]
pub struct Role {
    /// Role name (qualifier in `role.Method`).
    pub name: String,
    /// The member class's own t-spec.
    pub spec: ClassSpec,
    /// Constructor (of the member class) used when the composite is
    /// created; must be parameterless.
    pub constructor: String,
    /// Destructor method of the member class.
    pub destructor: String,
}

/// A multi-class component specification.
///
/// Build with [`CompositeSpecBuilder`]; [`CompositeSpec::flatten`]
/// produces the ordinary `ClassSpec` the driver generator consumes.
#[derive(Debug, Clone)]
pub struct CompositeSpec {
    name: String,
    roles: Vec<Role>,
    nodes: Vec<(String, NodeKind, Vec<String>)>,
    edges: Vec<(String, String)>,
}

impl CompositeSpec {
    /// The composite's class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member roles.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// The synthetic constructor method id/name of the flattened spec.
    pub fn constructor_name(&self) -> String {
        self.name.clone()
    }

    /// The synthetic destructor method name of the flattened spec.
    pub fn destructor_name(&self) -> String {
        format!("~{}", self.name)
    }

    /// Flattens the composite into an ordinary [`ClassSpec`]:
    ///
    /// * attributes become `role.attr`;
    /// * every non-lifecycle method of every role becomes `role.Method`
    ///   with id `role.mid`;
    /// * a synthetic parameterless constructor/destructor pair is added
    ///   (creating a composite creates every role's object);
    /// * the interclass TFM is carried over verbatim.
    ///
    /// # Errors
    ///
    /// Returns the flattened spec's validation problems, if any.
    pub fn flatten(&self) -> Result<ClassSpec, Vec<SpecError>> {
        // The composite's interface is exactly the set of interactions its
        // model describes: only member methods referenced by some node are
        // part of the flattened spec (the member classes keep their own
        // full specs for intraclass testing).
        let referenced: std::collections::BTreeSet<&str> = self
            .nodes
            .iter()
            .flat_map(|(_, _, ms)| ms.iter().map(String::as_str))
            .collect();
        let mut attributes = Vec::new();
        let mut methods = vec![MethodSpec::new(
            "ctor",
            self.constructor_name(),
            MethodCategory::Constructor,
        )];
        for role in &self.roles {
            for a in &role.spec.attributes {
                attributes.push(AttributeSpec::new(
                    format!("{}.{}", role.name, a.name),
                    a.domain.clone(),
                ));
            }
            for m in &role.spec.methods {
                if m.category == MethodCategory::Constructor
                    || m.category == MethodCategory::Destructor
                {
                    continue;
                }
                if !referenced.contains(format!("{}.{}", role.name, m.id).as_str()) {
                    continue;
                }
                methods.push(MethodSpec {
                    id: format!("{}.{}", role.name, m.id),
                    name: format!("{}.{}", role.name, m.name),
                    return_type: m.return_type.clone(),
                    category: m.category.clone(),
                    params: m.params.clone(),
                });
            }
        }
        methods.push(MethodSpec::new(
            "dtor",
            self.destructor_name(),
            MethodCategory::Destructor,
        ));

        let mut tfm = concat_tfm::Tfm::new(self.name.clone());
        let mut ids: BTreeMap<&str, concat_tfm::NodeId> = BTreeMap::new();
        for (label, kind, node_methods) in &self.nodes {
            let id = tfm.add_node(label.clone(), *kind, node_methods.clone());
            ids.insert(label.as_str(), id);
        }
        let mut errors = Vec::new();
        for (from, to) in &self.edges {
            match (ids.get(from.as_str()), ids.get(to.as_str())) {
                (Some(f), Some(t)) => tfm.add_edge(*f, *t),
                _ => errors.push(SpecError::UnknownMethodInModel {
                    method: format!("edge {from} -> {to}"),
                    node: "<edges>".into(),
                }),
            }
        }
        let spec = ClassSpec {
            class_name: self.name.clone(),
            is_abstract: false,
            superclass: None,
            source_files: Vec::new(),
            attributes,
            methods,
            invariants: Vec::new(),
            tfm,
        };
        errors.extend(spec.validate());
        if errors.is_empty() {
            Ok(spec)
        } else {
            Err(errors)
        }
    }
}

/// Builder for [`CompositeSpec`].
///
/// Node method lists reference the synthetic lifecycle ids (`ctor`,
/// `dtor`) and qualified member method ids (`role.mid`).
#[derive(Debug, Clone)]
pub struct CompositeSpecBuilder {
    name: String,
    roles: Vec<Role>,
    nodes: Vec<(String, NodeKind, Vec<String>)>,
    edges: Vec<(String, String)>,
}

impl CompositeSpecBuilder {
    /// Starts a composite named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CompositeSpecBuilder {
            name: name.into(),
            roles: Vec::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a member class under `role`, created through its
    /// parameterless `constructor` and destroyed through `destructor`.
    pub fn role(
        mut self,
        role: impl Into<String>,
        spec: ClassSpec,
        constructor: impl Into<String>,
        destructor: impl Into<String>,
    ) -> Self {
        self.roles.push(Role {
            name: role.into(),
            spec,
            constructor: constructor.into(),
            destructor: destructor.into(),
        });
        self
    }

    /// Adds the birth node (methods default to the synthetic `ctor`).
    pub fn birth(mut self, label: impl Into<String>) -> Self {
        self.nodes
            .push((label.into(), NodeKind::Birth, vec!["ctor".into()]));
        self
    }

    /// Adds a task node over qualified method ids.
    pub fn task<I, S>(mut self, label: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.nodes.push((
            label.into(),
            NodeKind::Task,
            methods.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Adds the death node (methods default to the synthetic `dtor`).
    pub fn death(mut self, label: impl Into<String>) -> Self {
        self.nodes
            .push((label.into(), NodeKind::Death, vec!["dtor".into()]));
        self
    }

    /// Adds an edge between node labels.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.edges.push((from.into(), to.into()));
        self
    }

    /// Finishes the composite spec (structure only; call
    /// [`CompositeSpec::flatten`] to validate).
    pub fn build(self) -> CompositeSpec {
        CompositeSpec {
            name: self.name,
            roles: self.roles,
            nodes: self.nodes,
            edges: self.edges,
        }
    }
}

/// A live composite instance: one object per role.
struct CompositeComponent {
    class_name: String,
    destructor_name: String,
    members: Vec<(String, Box<dyn TestableComponent>, String)>,
    ctl: BitControl,
    /// Captured from `ctl` at construction; counts `role.Method` routing
    /// as `interclass.calls_routed` when the harness is instrumented.
    telemetry: concat_obs::Telemetry,
}

impl Component for CompositeComponent {
    fn class_name(&self) -> &'static str {
        // `Component::class_name` returns `&'static str` (a deliberate
        // simplification of the single-class runtime); composites leak
        // their name once per construction batch via `Box::leak` being
        // unavailable under forbid(unsafe)? No — plain String leak is
        // safe; instead we intern in a static table below.
        intern(&self.class_name)
    }

    fn method_names(&self) -> Vec<&'static str> {
        Vec::new() // composite methods are dynamic; `has_method` is overridden
    }

    fn has_method(&self, method: &str) -> bool {
        if method == self.destructor_name {
            return true;
        }
        match method.split_once('.') {
            Some((role, inner)) => self
                .members
                .iter()
                .any(|(name, member, _)| name == role && member.has_method(inner)),
            None => false,
        }
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> InvokeResult {
        if method == self.destructor_name {
            // Destroy in reverse construction order.
            let mut last = Value::Null;
            for (_, member, dtor) in self.members.iter_mut().rev() {
                last = member.invoke(dtor, &[])?;
            }
            self.telemetry
                .incr_by("interclass.calls_routed", self.members.len() as u64);
            return Ok(last);
        }
        let Some((role, inner)) = method.split_once('.') else {
            return Err(unknown_method(&self.class_name, method));
        };
        match self.members.iter_mut().find(|(name, _, _)| name == role) {
            Some((_, member, _)) => {
                self.telemetry.incr("interclass.calls_routed");
                member.invoke(inner, args)
            }
            None => Err(TestException::domain(
                method,
                format!("composite has no role `{role}`"),
            )),
        }
    }
}

impl BuiltInTest for CompositeComponent {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        for (_, member, _) in &self.members {
            member.invariant_test()?;
        }
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        let mut merged = StateReport::new();
        for (role, member, _) in &self.members {
            for (k, v) in member.reporter().iter() {
                merged.set(format!("{role}.{k}"), v.clone());
            }
        }
        merged
    }
}

/// Interns composite class names so `Component::class_name` can return a
/// `&'static str` without unsafe code. Names live for the process; the
/// set of composite names in a test session is tiny and bounded.
fn intern(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock, PoisonError};
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(Vec::new()));
    // The table only ever grows by whole entries, so a panic mid-push
    // cannot leave it inconsistent — recover instead of propagating.
    let mut guard = table.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = guard.iter().find(|s| **s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    guard.push(leaked);
    leaked
}

/// Factory for composite instances: one member factory per role.
pub struct CompositeFactory {
    spec: CompositeSpec,
    factories: BTreeMap<String, Rc<dyn ComponentFactory>>,
}

impl fmt::Debug for CompositeFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompositeFactory")
            .field("composite", &self.spec.name)
            .field("roles", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl CompositeFactory {
    /// Creates a factory; `factories` maps each role name to the member
    /// class's factory.
    ///
    /// # Errors
    ///
    /// Returns the roles that have no factory (or factories naming no
    /// role).
    pub fn new(
        spec: CompositeSpec,
        factories: Vec<(String, Rc<dyn ComponentFactory>)>,
    ) -> Result<Self, Vec<String>> {
        let map: BTreeMap<String, Rc<dyn ComponentFactory>> = factories.into_iter().collect();
        let mut problems = Vec::new();
        for role in spec.roles() {
            if !map.contains_key(&role.name) {
                problems.push(format!("role `{}` has no factory", role.name));
            }
        }
        for name in map.keys() {
            if !spec.roles().iter().any(|r| &r.name == name) {
                problems.push(format!("factory `{name}` names no role"));
            }
        }
        if problems.is_empty() {
            Ok(CompositeFactory {
                spec,
                factories: map,
            })
        } else {
            Err(problems)
        }
    }
}

impl ComponentFactory for CompositeFactory {
    fn class_name(&self) -> &str {
        self.spec.name()
    }

    fn construct(
        &self,
        constructor: &str,
        args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        if constructor != self.spec.constructor_name() {
            return Err(unknown_method(self.spec.name(), constructor));
        }
        if !args.is_empty() {
            return Err(TestException::ArityMismatch {
                method: constructor.to_owned(),
                expected: 0,
                got: args.len(),
            });
        }
        let mut members = Vec::with_capacity(self.spec.roles().len());
        for role in self.spec.roles() {
            let Some(factory) = self.factories.get(&role.name) else {
                // `new` validates role/factory agreement, but surface a
                // test exception rather than crashing the whole run if a
                // spec is mutated after construction.
                return Err(TestException::domain(
                    constructor,
                    format!("composite role `{}` has no factory", role.name),
                ));
            };
            let member = factory.construct(&role.constructor, &[], ctl.clone())?;
            members.push((role.name.clone(), member, role.destructor.clone()));
        }
        Ok(Box::new(CompositeComponent {
            class_name: self.spec.name().to_owned(),
            destructor_name: self.spec.destructor_name(),
            members,
            telemetry: ctl.telemetry(),
            ctl,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_components::{
        bounded_stack_spec, coblist_spec, BoundedStackFactory, CObListFactory,
    };

    /// A warehouse station: an audit list of quantities plus a staging
    /// stack — two interacting classes under one composite TFM.
    fn station() -> CompositeSpec {
        CompositeSpecBuilder::new("Station")
            .role("audit", coblist_spec(), "CObList", "~CObList")
            .role(
                "staging",
                bounded_stack_spec(),
                "BoundedStack",
                "~BoundedStack",
            )
            .birth("create")
            .task("log", ["audit.m2", "audit.m3"]) // AddHead / AddTail
            .task("stage", ["staging.m2"]) // Push
            .task("check", ["audit.m13", "staging.m5"]) // GetCount / Size
            .task("drain", ["staging.m3"]) // Pop
            .death("destroy")
            .edge("create", "log")
            .edge("log", "stage")
            .edge("stage", "check")
            .edge("stage", "drain")
            .edge("check", "drain")
            .edge("drain", "destroy")
            .edge("check", "destroy")
            .build()
    }

    fn station_factory() -> CompositeFactory {
        CompositeFactory::new(
            station(),
            vec![
                (
                    "audit".into(),
                    Rc::new(CObListFactory::default()) as Rc<dyn ComponentFactory>,
                ),
                (
                    "staging".into(),
                    Rc::new(StackWithCapacity) as Rc<dyn ComponentFactory>,
                ),
            ],
        )
        .unwrap()
    }

    /// `BoundedStack`'s constructor takes a capacity; composites construct
    /// roles parameterlessly, so wrap the factory with a default.
    struct StackWithCapacity;
    impl ComponentFactory for StackWithCapacity {
        fn class_name(&self) -> &str {
            "BoundedStack"
        }
        fn construct(
            &self,
            constructor: &str,
            args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            if args.is_empty() {
                BoundedStackFactory.construct(constructor, &[Value::Int(8)], ctl)
            } else {
                BoundedStackFactory.construct(constructor, args, ctl)
            }
        }
    }

    #[test]
    fn flatten_produces_valid_spec() {
        let flat = station().flatten().unwrap();
        assert_eq!(flat.class_name, "Station");
        assert!(flat.validate().is_empty());
        assert!(flat.method("audit.m2").is_some());
        assert_eq!(flat.method("audit.m2").unwrap().name, "audit.AddHead");
        assert!(flat.method("ctor").is_some());
        assert!(flat.attributes.iter().any(|a| a.name == "audit.m_nCount"));
    }

    #[test]
    fn flatten_rejects_bad_edges_and_unknown_ids() {
        let broken = CompositeSpecBuilder::new("B")
            .role("r", coblist_spec(), "CObList", "~CObList")
            .birth("create")
            .task("t", ["r.m99"])
            .death("destroy")
            .edge("create", "t")
            .edge("t", "destroy")
            .edge("t", "nowhere")
            .build();
        let errs = broken.flatten().unwrap_err();
        assert!(errs.len() >= 2);
    }

    #[test]
    fn composite_instances_route_calls_by_role() {
        let factory = station_factory();
        let mut c = factory
            .construct("Station", &[], BitControl::new_enabled())
            .unwrap();
        c.invoke("audit.AddHead", &[Value::Int(5)]).unwrap();
        c.invoke("staging.Push", &[Value::Int(9)]).unwrap();
        assert_eq!(c.invoke("audit.GetCount", &[]).unwrap(), Value::Int(1));
        assert_eq!(c.invoke("staging.Size", &[]).unwrap(), Value::Int(1));
        assert_eq!(c.invoke("staging.Pop", &[]).unwrap(), Value::Int(9));
        assert!(c.invariant_test().is_ok());
        let report = c.reporter();
        assert_eq!(report.get("audit.m_nCount"), Some(&Value::Int(1)));
        assert_eq!(report.get("staging.size"), Some(&Value::Int(0)));
        assert!(c.has_method("audit.AddHead"));
        assert!(c.has_method("~Station"));
        assert!(!c.has_method("audit.Bogus"));
        assert!(!c.has_method("ghost.AddHead"));
    }

    #[test]
    fn composite_destructor_destroys_all_roles() {
        let factory = station_factory();
        let mut c = factory
            .construct("Station", &[], BitControl::new_enabled())
            .unwrap();
        c.invoke("audit.AddHead", &[Value::Int(1)]).unwrap();
        c.invoke("~Station", &[]).unwrap();
        assert_eq!(c.invoke("audit.GetCount", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn unknown_role_and_method_errors() {
        let factory = station_factory();
        let mut c = factory
            .construct("Station", &[], BitControl::new_enabled())
            .unwrap();
        assert_eq!(c.invoke("ghost.AddHead", &[]).unwrap_err().tag(), "DOMAIN");
        assert_eq!(c.invoke("NoDot", &[]).unwrap_err().tag(), "UNKNOWN_METHOD");
        assert!(factory
            .construct("Wrong", &[], BitControl::new_enabled())
            .is_err());
        assert!(factory
            .construct("Station", &[Value::Int(1)], BitControl::new_enabled())
            .is_err());
    }

    #[test]
    fn factory_validates_role_coverage() {
        let errs = CompositeFactory::new(
            station(),
            vec![(
                "audit".into(),
                Rc::new(CObListFactory::default()) as Rc<dyn ComponentFactory>,
            )],
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("staging")));
    }

    #[test]
    fn full_pipeline_runs_on_a_composite() {
        use concat_driver::{DriverGenerator, TestLog, TestRunner};
        let flat = station().flatten().unwrap();
        let suite = DriverGenerator::with_seed(41).generate(&flat).unwrap();
        assert!(!suite.is_empty());
        let factory = station_factory();
        let runner = TestRunner::new();
        let result = runner.run_suite(&factory, &suite, &mut TestLog::new());
        // Pop-before-Push transactions are error-recovery cases; most pass.
        assert!(result.passed() > 0);
        for case in &result.cases {
            assert!(
                matches!(
                    case.status,
                    concat_driver::CaseStatus::Passed
                        | concat_driver::CaseStatus::AssertionViolated { .. }
                ),
                "unexpected status {:?}",
                case.status
            );
        }
    }

    #[test]
    fn intern_returns_stable_references() {
        let a = intern("Station");
        let b = intern("Station");
        assert!(std::ptr::eq(a, b));
    }
}
