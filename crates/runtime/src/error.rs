//! Errors raised while driving a component under test.
//!
//! The paper's generated drivers call methods inside a `try` block and treat
//! a raised exception as a test event (Figure 6). [`TestException`] is the
//! Rust equivalent: every way a method invocation can abort a transaction.

use crate::value::ValueKind;
use std::error::Error;
use std::fmt;

/// Which kind of contract assertion was violated.
///
/// Matches the three assertion macros of the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssertionKind {
    /// The class invariant (`ClassInvariant` macro).
    Invariant,
    /// A method precondition (`PreCondition` macro).
    Precondition,
    /// A method postcondition (`PostCondition` macro).
    Postcondition,
}

impl fmt::Display for AssertionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssertionKind::Invariant => "invariant",
            AssertionKind::Precondition => "pre-condition",
            AssertionKind::Postcondition => "post-condition",
        };
        f.write_str(s)
    }
}

/// A violated contract assertion, the partial-oracle signal of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionViolation {
    /// Which assertion kind fired.
    pub kind: AssertionKind,
    /// Class whose contract was violated.
    pub class_name: String,
    /// Method in whose context the assertion fired (empty for invariant
    /// checks run between calls by the driver).
    pub method: String,
    /// The predicate or message supplied at the assertion site.
    pub message: String,
}

impl fmt::Display for AssertionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} is violated in {}::{}: {}",
            self.kind, self.class_name, self.method, self.message
        )
    }
}

impl Error for AssertionViolation {}

/// Any exceptional outcome of invoking a method on a component under test.
///
/// # Examples
///
/// ```
/// use concat_runtime::{TestException, ValueKind};
///
/// let err = TestException::ArityMismatch {
///     method: "UpdateQty".into(),
///     expected: 1,
///     got: 0,
/// };
/// assert!(err.to_string().contains("UpdateQty"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TestException {
    /// A contract assertion was violated (partial oracle).
    Assertion(AssertionViolation),
    /// The invoked method name is not part of the component's interface.
    UnknownMethod {
        /// Class that rejected the call.
        class_name: String,
        /// The unknown method name.
        method: String,
    },
    /// The method exists but received the wrong number of arguments.
    ArityMismatch {
        /// Method being invoked.
        method: String,
        /// Number of parameters the method declares.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// An argument had the wrong dynamic type.
    TypeMismatch {
        /// Method being invoked.
        method: String,
        /// Zero-based index of the offending argument.
        index: usize,
        /// Kind the method expected.
        expected: ValueKind,
        /// Kind actually supplied.
        got: ValueKind,
    },
    /// The method detected an application-level error state (e.g. removing
    /// from an empty list) and refused to proceed.
    Domain {
        /// Method being invoked.
        method: String,
        /// Human-readable description of the error.
        message: String,
    },
    /// The method body panicked; the driver caught the unwind. This is the
    /// "program crashed while running the test cases" kill signal of the
    /// paper's mutation experiments.
    Panicked {
        /// Method being invoked.
        method: String,
        /// Panic payload rendered as text.
        message: String,
    },
}

impl TestException {
    /// Convenience constructor for [`TestException::Domain`].
    pub fn domain(method: impl Into<String>, message: impl Into<String>) -> Self {
        TestException::Domain {
            method: method.into(),
            message: message.into(),
        }
    }

    /// Returns the assertion violation if this exception is one.
    pub fn as_assertion(&self) -> Option<&AssertionViolation> {
        match self {
            TestException::Assertion(v) => Some(v),
            _ => None,
        }
    }

    /// True when the exception originates from the BIT partial oracle.
    pub fn is_assertion(&self) -> bool {
        matches!(self, TestException::Assertion(_))
    }

    /// Short machine-friendly tag used in logs and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            TestException::Assertion(v) => match v.kind {
                AssertionKind::Invariant => "INVARIANT",
                AssertionKind::Precondition => "PRECONDITION",
                AssertionKind::Postcondition => "POSTCONDITION",
            },
            TestException::UnknownMethod { .. } => "UNKNOWN_METHOD",
            TestException::ArityMismatch { .. } => "ARITY",
            TestException::TypeMismatch { .. } => "TYPE",
            TestException::Domain { .. } => "DOMAIN",
            TestException::Panicked { .. } => "PANIC",
        }
    }
}

impl fmt::Display for TestException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestException::Assertion(v) => v.fmt(f),
            TestException::UnknownMethod { class_name, method } => {
                write!(f, "class {class_name} has no method named {method}")
            }
            TestException::ArityMismatch {
                method,
                expected,
                got,
            } => {
                write!(f, "{method} expects {expected} argument(s), got {got}")
            }
            TestException::TypeMismatch {
                method,
                index,
                expected,
                got,
            } => write!(
                f,
                "{method}: argument {index} should be {expected}, got {got}"
            ),
            TestException::Domain { method, message } => {
                write!(f, "{method}: {message}")
            }
            TestException::Panicked { method, message } => {
                write!(f, "{method} panicked: {message}")
            }
        }
    }
}

impl Error for TestException {}

impl From<AssertionViolation> for TestException {
    fn from(v: AssertionViolation) -> Self {
        TestException::Assertion(v)
    }
}

/// Result of invoking a component method.
pub type InvokeResult = Result<crate::value::Value, TestException>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn violation() -> AssertionViolation {
        AssertionViolation {
            kind: AssertionKind::Invariant,
            class_name: "Product".into(),
            method: "UpdateQty".into(),
            message: "qty >= 1".into(),
        }
    }

    #[test]
    fn display_mentions_kind_class_and_method() {
        let s = violation().to_string();
        assert!(s.contains("invariant"));
        assert!(s.contains("Product::UpdateQty"));
        assert!(s.contains("qty >= 1"));
    }

    #[test]
    fn assertion_round_trips_through_exception() {
        let exc: TestException = violation().into();
        assert!(exc.is_assertion());
        assert_eq!(exc.as_assertion().unwrap().kind, AssertionKind::Invariant);
        assert_eq!(exc.tag(), "INVARIANT");
    }

    #[test]
    fn tags_are_distinct_per_variant() {
        let exs = [
            TestException::from(violation()),
            TestException::UnknownMethod {
                class_name: "A".into(),
                method: "m".into(),
            },
            TestException::ArityMismatch {
                method: "m".into(),
                expected: 1,
                got: 2,
            },
            TestException::TypeMismatch {
                method: "m".into(),
                index: 0,
                expected: ValueKind::Int,
                got: ValueKind::Str,
            },
            TestException::domain("m", "boom"),
            TestException::Panicked {
                method: "m".into(),
                message: "overflow".into(),
            },
        ];
        let tags: std::collections::HashSet<_> = exs.iter().map(|e| e.tag()).collect();
        assert_eq!(tags.len(), exs.len());
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let exs = [
            TestException::UnknownMethod {
                class_name: "A".into(),
                method: "m".into(),
            },
            TestException::ArityMismatch {
                method: "m".into(),
                expected: 1,
                got: 2,
            },
            TestException::domain("m", "boom"),
            TestException::Panicked {
                method: "m".into(),
                message: "overflow".into(),
            },
        ];
        for e in &exs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn invoke_result_type_alias_usable() {
        let ok: InvokeResult = Ok(Value::Null);
        assert!(ok.is_ok());
    }

    #[test]
    fn assertion_kind_display() {
        assert_eq!(AssertionKind::Invariant.to_string(), "invariant");
        assert_eq!(AssertionKind::Precondition.to_string(), "pre-condition");
        assert_eq!(AssertionKind::Postcondition.to_string(), "post-condition");
    }
}
