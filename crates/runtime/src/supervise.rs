//! Child-process supervision: exit classification, heartbeat liveness,
//! and the SIGTERM→SIGKILL escalation ladder.
//!
//! Thread workers can only contain what unwinds; a mutant that calls
//! `std::process::abort()` or spins without ever reaching a cooperative
//! checkpoint takes the whole process with it. Process shards put a hard
//! boundary around such mutants, and this module gives their supervisor
//! the three primitives it needs:
//!
//! * [`classify_exit`] — folds an [`ExitStatus`] into an [`ExitClass`]
//!   (clean / nonzero exit / SIGABRT / other signal), the signal the
//!   caller turns into a quarantine reason;
//! * [`Liveness`] — a heartbeat deadline: the supervisor beats it on
//!   every frame a shard emits and checks [`Liveness::expired`] on its
//!   poll ticks;
//! * [`terminate_child`] / [`wait_with_deadline`] — the escalation
//!   ladder: ask politely (SIGTERM via the `kill` utility — this crate
//!   forbids `unsafe`, so no raw syscalls), wait out a bounded grace
//!   period, then SIGKILL ([`std::process::Child::kill`]) and reap.
//!
//! Everything here is policy-free: *when* to escalate (missed heartbeat,
//! campaign shutdown) belongs to the caller.

use std::io;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// How a supervised child process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitClass {
    /// Exit status 0.
    Clean,
    /// A nonzero exit code (the child ran to a deliberate `exit`).
    Exit(i32),
    /// Killed by SIGABRT — the signature of `std::process::abort()`,
    /// `assert()` in linked C code, or an allocator/runtime abort.
    Abort,
    /// Killed by any other signal (SIGKILL, SIGSEGV, SIGTERM, …).
    Signal(i32),
}

impl std::fmt::Display for ExitClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExitClass::Clean => f.write_str("clean exit"),
            ExitClass::Exit(code) => write!(f, "exit code {code}"),
            ExitClass::Abort => f.write_str("abort (SIGABRT)"),
            ExitClass::Signal(sig) => write!(f, "signal {sig}"),
        }
    }
}

/// SIGABRT's number on every platform this workspace targets.
const SIGABRT: i32 = 6;

/// Folds a reaped [`ExitStatus`] into its [`ExitClass`]. On non-unix
/// platforms signals do not exist, so anything abnormal is an `Exit`.
pub fn classify_exit(status: ExitStatus) -> ExitClass {
    if status.success() {
        return ExitClass::Clean;
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return if signal == SIGABRT {
                ExitClass::Abort
            } else {
                ExitClass::Signal(signal)
            };
        }
    }
    ExitClass::Exit(status.code().unwrap_or(-1))
}

/// Poll cadence while waiting for a child to die.
const REAP_POLL: Duration = Duration::from_millis(10);

/// Sends the child a SIGTERM without raw syscalls: the `kill` utility is
/// spawned against the child's pid. Returns `false` when the utility is
/// unavailable or reports failure — callers fall through to the SIGKILL
/// rung, so a missing `kill` binary only costs the polite phase.
fn request_termination(child: &Child) -> bool {
    #[cfg(unix)]
    {
        Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }
    #[cfg(not(unix))]
    {
        let _ = child;
        false
    }
}

/// The escalation ladder: SIGTERM, a bounded grace period, then SIGKILL.
/// Always reaps — on `Ok` the child is gone and its status classified by
/// the caller via [`classify_exit`].
///
/// # Errors
///
/// Propagates `try_wait`/`kill`/`wait` I/O errors (the child is then in
/// an unknown state; callers treat this like a failed respawn).
pub fn terminate_child(child: &mut Child, grace: Duration) -> io::Result<ExitStatus> {
    if request_termination(child) {
        let deadline = Instant::now() + grace;
        loop {
            if let Some(status) = child.try_wait()? {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(REAP_POLL);
        }
    }
    child.kill()?;
    child.wait()
}

/// Waits for a child that *should* already be exiting (its stdout hit
/// EOF), bounded by `grace`; a child still alive after the grace period
/// is SIGKILLed and reaped.
///
/// # Errors
///
/// Propagates `try_wait`/`kill`/`wait` I/O errors.
pub fn wait_with_deadline(child: &mut Child, grace: Duration) -> io::Result<ExitStatus> {
    let deadline = Instant::now() + grace;
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status);
        }
        if Instant::now() >= deadline {
            child.kill()?;
            return child.wait();
        }
        std::thread::sleep(REAP_POLL);
    }
}

/// A heartbeat deadline for one supervised child.
///
/// The supervisor beats it whenever the child proves it is alive (any
/// frame on the pipe) and polls [`Liveness::expired`]; an expired shard
/// gets the [`terminate_child`] ladder. The first deadline is usually
/// longer than steady state (`startup` covers spawn + the child's own
/// golden run), so `Liveness` tracks which phase it is in.
#[derive(Debug)]
pub struct Liveness {
    last_beat: Instant,
    timeout: Duration,
    startup: Duration,
    started: bool,
}

impl Liveness {
    /// A liveness tracker whose first deadline is `startup` from now and
    /// whose steady-state deadline is `timeout` after each beat.
    pub fn new(startup: Duration, timeout: Duration) -> Self {
        Liveness {
            last_beat: Instant::now(),
            timeout,
            startup,
            started: false,
        }
    }

    /// Records proof of life and switches to the steady-state deadline.
    pub fn beat(&mut self) {
        self.last_beat = Instant::now();
        self.started = true;
    }

    /// True when the current deadline has passed without a beat.
    pub fn expired(&self) -> bool {
        let window = if self.started {
            self.timeout
        } else {
            self.startup
        };
        self.last_beat.elapsed() >= window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    fn spawn_sleeper(secs: &str) -> Child {
        Command::new("sleep")
            .arg(secs)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .unwrap()
    }

    #[test]
    fn classifies_clean_exit() {
        let status = Command::new("true").status().unwrap();
        assert_eq!(classify_exit(status), ExitClass::Clean);
    }

    #[test]
    fn classifies_nonzero_exit() {
        let status = Command::new("false").status().unwrap();
        assert_eq!(classify_exit(status), ExitClass::Exit(1));
    }

    #[cfg(unix)]
    #[test]
    fn classifies_signals_and_abort() {
        let mut child = spawn_sleeper("30");
        child.kill().unwrap(); // SIGKILL = 9
        let status = child.wait().unwrap();
        assert_eq!(classify_exit(status), ExitClass::Signal(9));

        let mut child = spawn_sleeper("30");
        let killed = Command::new("kill")
            .args(["-ABRT", &child.id().to_string()])
            .status()
            .unwrap();
        assert!(killed.success());
        let status = child.wait().unwrap();
        assert_eq!(classify_exit(status), ExitClass::Abort);
    }

    #[cfg(unix)]
    #[test]
    fn terminate_child_is_polite_first() {
        // `sleep` dies to SIGTERM, so the ladder never reaches SIGKILL.
        let mut child = spawn_sleeper("30");
        let status = terminate_child(&mut child, Duration::from_secs(5)).unwrap();
        assert_eq!(classify_exit(status), ExitClass::Signal(15));
    }

    #[cfg(unix)]
    #[test]
    fn terminate_child_escalates_to_sigkill() {
        // A shell that traps SIGTERM ignores the polite rung; the ladder
        // must escalate.
        let mut child = Command::new("sh")
            .args(["-c", "trap '' TERM; sleep 30"])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .unwrap();
        // Give the shell a moment to install its trap.
        std::thread::sleep(Duration::from_millis(200));
        let status = terminate_child(&mut child, Duration::from_millis(300)).unwrap();
        assert_eq!(classify_exit(status), ExitClass::Signal(9));
    }

    #[test]
    fn wait_with_deadline_reaps_a_laggard() {
        let mut child = spawn_sleeper("30");
        let status = wait_with_deadline(&mut child, Duration::from_millis(100)).unwrap();
        assert_ne!(classify_exit(status), ExitClass::Clean);
    }

    #[test]
    fn liveness_tracks_startup_then_steady_state() {
        let mut live = Liveness::new(Duration::from_secs(60), Duration::ZERO);
        assert!(!live.expired(), "startup window still open");
        live.beat();
        std::thread::sleep(Duration::from_millis(1));
        assert!(live.expired(), "steady-state deadline of zero expires");
        let mut live = Liveness::new(Duration::ZERO, Duration::from_secs(60));
        assert!(live.expired(), "startup deadline of zero expires");
        live.beat();
        assert!(!live.expired(), "a beat opens the steady-state window");
    }

    #[test]
    fn exit_class_display() {
        assert_eq!(ExitClass::Clean.to_string(), "clean exit");
        assert_eq!(ExitClass::Exit(3).to_string(), "exit code 3");
        assert_eq!(ExitClass::Abort.to_string(), "abort (SIGABRT)");
        assert_eq!(ExitClass::Signal(9).to_string(), "signal 9");
    }
}
