//! Content-addressed corpus of killer test cases, durable across
//! campaigns.
//!
//! Amplification (DESIGN.md §14) discovers candidate cases that kill
//! surviving mutants, but each campaign rediscovers them from scratch.
//! The corpus store persists those killers so future campaigns on the
//! same — or a derived — component replay them as a seed tier before
//! paying for fresh synthesis (the paper's §3.4 "test retrieval"
//! economy; cf. persisted fuzz corpora).
//!
//! Layout under the store directory:
//!
//! ```text
//! <dir>/manifest.journal          checksum-framed, append-only index
//! <dir>/<hash>.case               one file per case, hash = crc32(body)
//! ```
//!
//! Each manifest record is `case <hash> <campaign fingerprint> <class>`.
//! The hash is the content address (dedup key, and the integrity check a
//! reader re-verifies before trusting a case file); the fingerprint
//! records which campaign deposited the case — provenance, not a replay
//! precondition, since the whole point is seeding *changed* components
//! whose fingerprints differ. Case files are written atomically and the
//! manifest record is appended (fsynced) only after the case file is
//! committed, so a kill at any instant leaves either a complete,
//! indexed case or an unindexed orphan file — never a torn entry. A torn
//! manifest tail from a mid-append kill is dropped by the journal
//! scanner like any other torn record.

use crate::atomic_io::{crc32, recover_journal, write_atomic, Journal};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One manifest entry: a content-addressed case and its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// CRC-32 of the case payload — the content address.
    pub hash: u32,
    /// Fingerprint of the campaign that deposited the case.
    pub fingerprint: u32,
    /// Subject class the case was discovered against.
    pub class: String,
}

/// What [`CorpusStore::load`] recovered for one class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusLoad {
    /// Case payloads in deposit order, each re-verified against its
    /// content hash.
    pub payloads: Vec<String>,
    /// Indexed cases whose file was missing or unreadable.
    pub missing: usize,
    /// Indexed cases whose file content no longer matched its hash
    /// (corruption or tampering) — rejected, never returned.
    pub rejected: usize,
}

/// A durable, content-addressed store of killer cases (see the module
/// docs for the on-disk layout and crash-safety argument).
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join("concat-corpus-doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = concat_runtime::CorpusStore::open(&dir).unwrap();
/// assert!(store.deposit("Stack", 0xABCD, "case body").unwrap());
/// assert!(!store.deposit("Stack", 0xABCD, "case body").unwrap(), "dedup");
/// let load = store.load("Stack");
/// assert_eq!(load.payloads, vec!["case body".to_owned()]);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct CorpusStore {
    dir: PathBuf,
    manifest: Journal,
    entries: Vec<CorpusEntry>,
}

fn decode_entry(record: &str) -> Option<CorpusEntry> {
    let rest = record.strip_prefix("case ")?;
    let mut parts = rest.splitn(3, ' ');
    let hash = u32::from_str_radix(parts.next()?, 16).ok()?;
    let fingerprint = u32::from_str_radix(parts.next()?, 16).ok()?;
    let class = parts.next()?;
    if class.is_empty() {
        return None;
    }
    Some(CorpusEntry {
        hash,
        fingerprint,
        class: class.to_owned(),
    })
}

fn encode_entry(entry: &CorpusEntry) -> String {
    format!(
        "case {:08x} {:08x} {}",
        entry.hash, entry.fingerprint, entry.class
    )
}

impl CorpusStore {
    /// Opens (creating if missing) the corpus at `dir`, recovering the
    /// manifest: a torn tail is truncated, malformed records are skipped.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and manifest-recovery errors.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CorpusStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (manifest, scan) = recover_journal(dir.join("manifest.journal"))?;
        let entries = scan
            .records
            .iter()
            .filter_map(|record| decode_entry(record))
            .collect();
        Ok(CorpusStore {
            dir,
            manifest,
            entries,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the manifest journal lives.
    pub fn manifest_path(&self) -> &Path {
        self.manifest.path()
    }

    /// Every indexed entry, in deposit order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of indexed cases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus holds no cases.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn case_path(&self, hash: u32) -> PathBuf {
        self.dir.join(format!("{hash:08x}.case"))
    }

    /// Deposits one case payload for `class`, stamped with the depositing
    /// campaign's `fingerprint`. Returns `true` when the case was new,
    /// `false` when the same content was already indexed for this class
    /// (content-hash dedup; nothing is written).
    ///
    /// # Errors
    ///
    /// Propagates case-file write and manifest-append errors; on error
    /// the manifest never indexes a case file that was not committed.
    pub fn deposit(&mut self, class: &str, fingerprint: u32, payload: &str) -> io::Result<bool> {
        if class.is_empty() || class.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "corpus class names must be non-empty and newline-free",
            ));
        }
        let hash = crc32(payload.as_bytes());
        if self
            .entries
            .iter()
            .any(|e| e.hash == hash && e.class == class)
        {
            return Ok(false);
        }
        // Case file first, manifest second: the index never points at a
        // file that might not exist.
        write_atomic(self.case_path(hash), payload.as_bytes())?;
        let entry = CorpusEntry {
            hash,
            fingerprint,
            class: class.to_owned(),
        };
        self.manifest.append(&encode_entry(&entry))?;
        self.entries.push(entry);
        Ok(true)
    }

    /// Loads every case deposited for `class`, in deposit order,
    /// re-verifying each file against its content hash. Missing files
    /// and hash mismatches are counted and skipped, never returned —
    /// a corrupt corpus degrades to a smaller seed tier, not a wrong one.
    pub fn load(&self, class: &str) -> CorpusLoad {
        let mut load = CorpusLoad::default();
        for entry in self.entries.iter().filter(|e| e.class == class) {
            let Ok(bytes) = fs::read(self.case_path(entry.hash)) else {
                load.missing += 1;
                continue;
            };
            if crc32(&bytes) != entry.hash {
                load.rejected += 1;
                continue;
            }
            match String::from_utf8(bytes) {
                Ok(payload) => load.payloads.push(payload),
                Err(_) => load.rejected += 1,
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concat-corpus-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn deposit_load_round_trips_in_order() {
        let dir = scratch("roundtrip");
        let mut store = CorpusStore::open(&dir).unwrap();
        assert!(store.deposit("Acc", 0x1111, "first case\nbody").unwrap());
        assert!(store.deposit("Acc", 0x1111, "second case").unwrap());
        assert!(store.deposit("Other", 0x2222, "foreign class").unwrap());
        drop(store);

        let store = CorpusStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        let load = store.load("Acc");
        assert_eq!(load.payloads, vec!["first case\nbody", "second case"]);
        assert_eq!((load.missing, load.rejected), (0, 0));
        assert_eq!(store.load("Other").payloads, vec!["foreign class"]);
        assert!(store.load("Nobody").payloads.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_content_dedups_per_class() {
        let dir = scratch("dedup");
        let mut store = CorpusStore::open(&dir).unwrap();
        assert!(store.deposit("Acc", 0x1111, "same body").unwrap());
        // Same content, same class: dedup even across campaigns.
        assert!(!store.deposit("Acc", 0x9999, "same body").unwrap());
        // Same content, different class: a distinct entry.
        assert!(store.deposit("Other", 0x9999, "same body").unwrap());
        assert_eq!(store.len(), 2);
        assert_eq!(store.load("Acc").payloads.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_tail_is_tolerated() {
        let dir = scratch("torn");
        let mut store = CorpusStore::open(&dir).unwrap();
        store.deposit("Acc", 0x1111, "kept").unwrap();
        let manifest = store.manifest_path().to_path_buf();
        drop(store);
        // Simulate a kill mid-append: an unterminated manifest record.
        let mut raw = fs::OpenOptions::new().append(true).open(&manifest).unwrap();
        raw.write_all(b"01234567 case deadbeef torn").unwrap();
        drop(raw);

        let store = CorpusStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "torn tail dropped, prefix survives");
        assert_eq!(store.load("Acc").payloads, vec!["kept"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_case_file_is_rejected_on_load() {
        let dir = scratch("corrupt");
        let mut store = CorpusStore::open(&dir).unwrap();
        store.deposit("Acc", 0x1111, "will corrupt").unwrap();
        store.deposit("Acc", 0x1111, "stays good").unwrap();
        let bad = store.entries()[0].hash;
        fs::write(dir.join(format!("{bad:08x}.case")), b"tampered").unwrap();

        let load = store.load("Acc");
        assert_eq!(load.payloads, vec!["stays good"]);
        assert_eq!(load.rejected, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_case_file_is_counted_not_fatal() {
        let dir = scratch("missing");
        let mut store = CorpusStore::open(&dir).unwrap();
        store.deposit("Acc", 0x1111, "vanishes").unwrap();
        let hash = store.entries()[0].hash;
        fs::remove_file(dir.join(format!("{hash:08x}.case"))).unwrap();
        let load = store.load("Acc");
        assert!(load.payloads.is_empty());
        assert_eq!(load.missing, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_manifest_records_are_skipped() {
        let dir = scratch("malformed");
        let mut store = CorpusStore::open(&dir).unwrap();
        store.deposit("Acc", 0x1111, "good").unwrap();
        drop(store);
        // A checksum-valid but semantically bogus record.
        let mut journal = Journal::open(dir.join("manifest.journal")).unwrap();
        journal.append("case nothex 00000000 Acc").unwrap();
        journal.append("not-a-case-record").unwrap();
        drop(journal);
        let store = CorpusStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
