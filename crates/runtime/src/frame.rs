//! Length-prefixed, checksummed stream frames for cross-process pipes.
//!
//! Process-isolated mutation shards stream verdicts back to their
//! supervisor over a pipe. A shard can die at *any* byte — SIGKILL does
//! not flush buffers — so the supervisor needs the same torn-tail
//! discipline the on-disk [`crate::Journal`] has: every frame carries its
//! payload length and CRC-32, a frame that fails either check is dropped
//! (never half-applied), and a truncated tail simply stays undecoded.
//!
//! Frame layout (line-oriented, like the journal's `crc32 payload` rows):
//!
//! ```text
//! <len, 8 hex digits> <crc32, 8 hex digits> <payload>\n
//! ```
//!
//! `len` is the payload's byte length; `crc32` is [`crate::crc32`] over
//! the payload. The decoder additionally *skips* well-terminated lines
//! that are not valid frames (counting them as dropped) instead of
//! aborting the stream: a self-exec'd worker may share its stdout with a
//! test-harness banner, and foreign chatter must not poison the verdict
//! stream.
//!
//! # Examples
//!
//! ```
//! use concat_runtime::{encode_frame, FrameDecoder};
//!
//! let frame = encode_frame("verdict 3 survived").unwrap();
//! let mut decoder = FrameDecoder::new();
//! // Arbitrary split points: frames survive any chunking.
//! let (a, b) = frame.as_bytes().split_at(7);
//! assert!(decoder.push(a).is_empty());
//! assert_eq!(decoder.push(b), vec!["verdict 3 survived".to_owned()]);
//! ```

use crate::atomic_io::crc32;
use std::io;

/// Bytes of the `len`/`crc` prefix: two 8-hex-digit fields and their
/// trailing spaces.
const PREFIX_LEN: usize = 18;

/// Encodes one payload as a self-checking frame line (newline included).
///
/// # Errors
///
/// `InvalidInput` when the payload contains a newline — frames are
/// line-oriented, exactly like journal records.
pub fn encode_frame(payload: &str) -> io::Result<String> {
    if payload.contains('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload must not contain newlines",
        ));
    }
    Ok(format!(
        "{:08x} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    ))
}

/// Verifies one complete line (newline already stripped) against its
/// length/CRC prefix.
fn verify_frame(line: &[u8]) -> Option<String> {
    if line.len() < PREFIX_LEN || line[8] != b' ' || line[17] != b' ' {
        return None;
    }
    let len_field = std::str::from_utf8(&line[..8]).ok()?;
    let crc_field = std::str::from_utf8(&line[9..17]).ok()?;
    let len = usize::from_str_radix(len_field, 16).ok()?;
    let crc = u32::from_str_radix(crc_field, 16).ok()?;
    let payload = &line[PREFIX_LEN..];
    if payload.len() != len || crc32(payload) != crc {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

/// Incremental frame decoder: feed it pipe chunks in any split, collect
/// verified payloads.
///
/// * A complete line that fails the length/CRC check is **dropped** and
///   counted in [`FrameDecoder::dropped`] — foreign stdout chatter or a
///   frame torn *and then terminated* by interleaving cannot corrupt the
///   stream.
/// * An unterminated tail (the writer was killed mid-frame) stays
///   buffered in [`FrameDecoder::pending_bytes`], never decoded — the
///   exact analogue of the journal's torn-tail recovery.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    dropped: u64,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Consumes one chunk and returns every payload whose frame completed
    /// (and verified) with it, in stream order.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        self.buf.extend_from_slice(bytes);
        let mut payloads = Vec::new();
        while let Some(pos) = self.buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            match verify_frame(&line[..line.len() - 1]) {
                Some(payload) => payloads.push(payload),
                None => self.dropped += 1,
            }
        }
        payloads
    }

    /// Complete lines rejected by the length/CRC check so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bytes of the unterminated tail currently buffered. Non-zero at
    /// end-of-stream means the writer died mid-frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn round_trips_one_frame() {
        let frame = encode_frame("hello frames").unwrap();
        assert!(frame.ends_with('\n'));
        let mut d = FrameDecoder::new();
        assert_eq!(d.push(frame.as_bytes()), vec!["hello frames".to_owned()]);
        assert_eq!(d.dropped(), 0);
        assert_eq!(d.pending_bytes(), 0);
    }

    #[test]
    fn rejects_newline_payloads() {
        assert!(encode_frame("two\nlines").is_err());
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = encode_frame("").unwrap();
        let mut d = FrameDecoder::new();
        assert_eq!(d.push(frame.as_bytes()), vec![String::new()]);
    }

    #[test]
    fn survives_arbitrary_split_points() {
        // Property test: random payloads, random chunk boundaries — every
        // frame decodes exactly once, in order, for any chunking.
        let mut rng = Rng::seed_from_u64(0xF4A3);
        for _ in 0..50 {
            let payloads: Vec<String> = (0..rng.int_in(1, 12))
                .map(|i| {
                    let len = rng.int_in(0, 40) as usize;
                    let mut s = format!("p{i} ");
                    for _ in 0..len {
                        s.push((b'!' + rng.int_in(0, 90) as u8) as char);
                    }
                    s
                })
                .collect();
            let stream: Vec<u8> = payloads
                .iter()
                .map(|p| encode_frame(p).unwrap())
                .collect::<String>()
                .into_bytes();
            let mut d = FrameDecoder::new();
            let mut decoded = Vec::new();
            let mut offset = 0;
            while offset < stream.len() {
                let take = (rng.int_in(1, 9) as usize).min(stream.len() - offset);
                decoded.extend(d.push(&stream[offset..offset + take]));
                offset += take;
            }
            assert_eq!(decoded, payloads);
            assert_eq!(d.dropped(), 0);
            assert_eq!(d.pending_bytes(), 0);
        }
    }

    #[test]
    fn torn_tail_stays_undecoded() {
        // A SIGKILL mid-frame truncates the stream at an arbitrary byte:
        // the complete prefix decodes, the torn tail never does.
        let a = encode_frame("first frame").unwrap();
        let b = encode_frame("second frame, torn").unwrap();
        for cut in 1..b.len() {
            let mut stream = a.clone().into_bytes();
            stream.extend_from_slice(&b.as_bytes()[..cut]);
            let mut d = FrameDecoder::new();
            let decoded = d.push(&stream);
            assert_eq!(decoded, vec!["first frame".to_owned()], "cut at {cut}");
            assert_eq!(d.pending_bytes(), cut, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_and_foreign_lines_are_dropped_not_fatal() {
        let good = encode_frame("kept").unwrap();
        let mut corrupt = encode_frame("flipped").unwrap();
        // Flip one payload byte; the CRC no longer matches.
        let flip = corrupt.len() - 2;
        flip_byte(&mut corrupt, flip);
        let stream = format!("running 3 tests\n{corrupt}{good}garbage tail");
        let mut d = FrameDecoder::new();
        let decoded = d.push(stream.as_bytes());
        assert_eq!(decoded, vec!["kept".to_owned()]);
        assert_eq!(d.dropped(), 2, "banner line + corrupt frame");
        assert_eq!(d.pending_bytes(), "garbage tail".len());
    }

    #[test]
    fn length_mismatch_is_dropped() {
        let mut frame = encode_frame("sized").unwrap();
        // Graft extra payload bytes without fixing the length field.
        frame.truncate(frame.len() - 1);
        frame.push_str("xx\n");
        let mut d = FrameDecoder::new();
        assert!(d.push(frame.as_bytes()).is_empty());
        assert_eq!(d.dropped(), 1);
    }

    /// Replaces the byte at `at` with a different printable one.
    fn flip_byte(s: &mut String, at: usize) {
        let mut bytes = std::mem::take(s).into_bytes();
        bytes[at] = if bytes[at] == b'x' { b'y' } else { b'x' };
        *s = String::from_utf8(bytes).unwrap();
    }
}
