//! Fail-safe execution primitives: budgets, cancellation, watchdog,
//! deterministic fault injection and retry policies.
//!
//! The paper's premise is that a self-testable component must keep
//! producing a *verdict* even when the implementation under test
//! misbehaves: a mutant that hangs, blows a resource bound or corrupts
//! state has to be classified, not allowed to take the campaign down.
//! This module is the harness's own fault model:
//!
//! * [`Budget`] — per-test-case execution limits (call count, transcript
//!   bytes, wall-clock deadline);
//! * [`CancelToken`] / [`Watchdog`] — cooperative cancellation armed by a
//!   watchdog thread; instrumented read sites and harness checkpoints
//!   poll the token and unwind with [`DEADLINE_PANIC_PAYLOAD`], which the
//!   driver's `catch_unwind` boundary converts into a terminal outcome;
//! * [`FaultInjector`] — a deterministic (SplitMix64-seeded) environment
//!   fault source, so the harness's *own* degradation paths are testable;
//! * [`RetryPolicy`] / [`IoPolicy`] — bounded-exponential-backoff retry
//!   for transiently failing I/O, the building block of the pipeline's
//!   retry-then-degrade behaviour.
//!
//! Everything here is deterministic given a seed: identical arming plus
//! identical operation sequences yield identical injected faults.

use crate::rng::Rng;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Panic payload used for deadline unwinding.
///
/// When a [`CancelToken`] checkpoint finds the token cancelled it panics
/// with exactly this payload; the driver's `catch_unwind` boundary
/// recognizes it and classifies the case as *deadline exceeded* rather
/// than a component crash.
pub const DEADLINE_PANIC_PAYLOAD: &str = "concat-harden: execution deadline exceeded";

fn recover<'a, T: ?Sized>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A panic while holding one of these short critical sections leaves
    // the data fully written; recovering the guard keeps the fail-safe
    // layer itself panic-free.
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

/// Execution limits for one test case. Unlimited by default.
///
/// # Examples
///
/// ```
/// use concat_runtime::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited()
///     .with_max_calls(100)
///     .with_deadline(Duration::from_secs(2));
/// assert_eq!(b.max_calls, Some(100));
/// assert!(Budget::unlimited().is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum number of task-method calls executed per case.
    pub max_calls: Option<usize>,
    /// Maximum (approximate) transcript size per case, in bytes.
    pub max_transcript_bytes: Option<usize>,
    /// Wall-clock deadline per case, enforced by a [`Watchdog`].
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No limits — the historical behaviour.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the per-case call limit.
    pub fn with_max_calls(mut self, n: usize) -> Self {
        self.max_calls = Some(n);
        self
    }

    /// Sets the per-case transcript byte limit.
    pub fn with_max_transcript_bytes(mut self, n: usize) -> Self {
        self.max_transcript_bytes = Some(n);
        self
    }

    /// Sets the per-case wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// The worker count a parallel harness should default to: the machine's
/// available parallelism, with 1 as the fallback when the runtime cannot
/// tell (containers with no CPU affinity information, exotic platforms).
///
/// # Examples
///
/// ```
/// assert!(concat_runtime::recommended_workers() >= 1);
/// ```
pub fn recommended_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// The per-case call limit.
    Calls,
    /// The per-case transcript byte limit.
    TranscriptBytes,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Calls => f.write_str("calls"),
            BudgetResource::TranscriptBytes => f.write_str("transcript bytes"),
        }
    }
}

// ---------------------------------------------------------------------------
// CancelToken + Watchdog
// ---------------------------------------------------------------------------

/// A shared cancellation flag polled by instrumented code.
///
/// Cancellation is *cooperative*: the harness cannot kill a thread, so a
/// hung execution is interrupted at the next point that polls the token —
/// every `MutationSwitch` read site does, as may any long-running
/// component loop via [`CancelToken::checkpoint`].
///
/// # Hierarchy
///
/// Tokens form a one-way tree via [`CancelToken::child`]: a child reports
/// cancelled when *its own* flag is set **or** any ancestor's is. This is
/// how a multi-campaign service cancels everything at once (cancel the
/// service token → every campaign's child token trips) while a single
/// campaign's cancellation stays contained (a child's flag is its own —
/// cancelling it never writes to the parent).
///
/// # Examples
///
/// ```
/// use concat_runtime::CancelToken;
///
/// let t = CancelToken::new();
/// assert!(!t.is_cancelled());
/// t.cancel();
/// assert!(t.is_cancelled());
/// t.reset();
/// t.checkpoint(); // no-op while not cancelled
///
/// let service = CancelToken::new();
/// let campaign = service.child();
/// campaign.cancel();
/// assert!(campaign.is_cancelled() && !service.is_cancelled());
/// service.cancel();
/// assert!(service.child().is_cancelled()); // propagates downward
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    /// The parent's token, when this one was derived with
    /// [`CancelToken::child`]. Cancellation flows strictly downward
    /// through this link.
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives a child token: it trips when either its own flag or any
    /// ancestor's is set, and cancelling *it* never affects the parent.
    /// Clones of the child share its flag (and its ancestry), exactly
    /// like clones of a root token.
    pub fn child(&self) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// True once [`CancelToken::cancel`] was called on this token (until
    /// reset) or, for a child token, on any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// Requests cancellation of this token (and, through the hierarchy,
    /// every token derived from it with [`CancelToken::child`]). Never
    /// propagates upward.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Clears this token's own flag (the runner re-arms per test case).
    /// A cancellation inherited from an ancestor is not cleared — only
    /// the ancestor's own `reset` can do that.
    pub fn reset(&self) {
        self.cancelled.store(false, Ordering::Relaxed);
    }

    /// Cooperative cancellation point.
    ///
    /// # Panics
    ///
    /// Panics with [`DEADLINE_PANIC_PAYLOAD`] when the token is
    /// cancelled, unwinding the hung execution back to the harness's
    /// `catch_unwind` boundary, where it is classified — the panic is the
    /// mechanism, not a failure.
    pub fn checkpoint(&self) {
        if self.is_cancelled() {
            std::panic::panic_any(DEADLINE_PANIC_PAYLOAD);
        }
    }
}

#[derive(Debug)]
struct WatchdogJob {
    deadline: Instant,
    token: CancelToken,
}

#[derive(Debug, Default)]
struct WatchdogState {
    job: Option<WatchdogJob>,
    fired: u64,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct WatchdogShared {
    state: Mutex<WatchdogState>,
    cv: Condvar,
}

/// A watchdog thread that cancels a [`CancelToken`] at a deadline.
///
/// One watchdog serves many consecutive executions: the runner re-arms it
/// per test case (a mutex handshake, not a thread spawn). Arming replaces
/// any pending job, so a stale deadline from a finished case can never
/// cancel the next one.
///
/// # Examples
///
/// ```
/// use concat_runtime::{CancelToken, Watchdog};
/// use std::time::Duration;
///
/// let wd = Watchdog::spawn();
/// let token = CancelToken::new();
/// wd.arm(&token, Duration::from_millis(10));
/// while !token.is_cancelled() {
///     std::thread::sleep(Duration::from_millis(1));
/// }
/// assert_eq!(wd.fired(), 1);
/// ```
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog thread.
    ///
    /// If the OS refuses to spawn a thread the watchdog degrades to a
    /// no-op (deadlines go unenforced rather than aborting the harness).
    pub fn spawn() -> Self {
        let shared = Arc::new(WatchdogShared::default());
        let for_thread = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("concat-watchdog".into())
            .spawn(move || Self::run(&for_thread))
            .ok();
        Watchdog { shared, thread }
    }

    fn run(shared: &WatchdogShared) {
        let mut state = recover(shared.state.lock());
        loop {
            if state.shutdown {
                return;
            }
            let wait_for = match &state.job {
                None => None,
                Some(job) => {
                    let now = Instant::now();
                    if now >= job.deadline {
                        job.token.cancel();
                        state.fired += 1;
                        state.job = None;
                        continue;
                    }
                    Some(job.deadline - now)
                }
            };
            state = match wait_for {
                Some(d) => recover(
                    shared
                        .cv
                        .wait_timeout(state, d)
                        .map(|(g, _)| g)
                        .map_err(|e| PoisonError::new(e.into_inner().0)),
                ),
                None => recover(shared.cv.wait(state)),
            };
        }
    }

    /// Arms the watchdog: `token` is cancelled once `timeout` elapses,
    /// unless [`Watchdog::disarm`] is called first. Re-arming replaces any
    /// pending deadline.
    pub fn arm(&self, token: &CancelToken, timeout: Duration) {
        let mut state = recover(self.shared.state.lock());
        state.job = Some(WatchdogJob {
            deadline: Instant::now() + timeout,
            token: token.clone(),
        });
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Clears any pending deadline.
    pub fn disarm(&self) {
        let mut state = recover(self.shared.state.lock());
        state.job = None;
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Number of deadlines that actually fired.
    pub fn fired(&self) -> u64 {
        recover(self.shared.state.lock()).fired
    }

    /// True when the background thread is running.
    pub fn is_running(&self) -> bool {
        self.thread.is_some()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let mut state = recover(self.shared.state.lock());
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

/// Whether an injected fault models a transient or a persistent failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Goes away on retry (maps to [`io::ErrorKind::Interrupted`]).
    Transient,
    /// Stays broken (maps to [`io::ErrorKind::Other`]).
    Persistent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => f.write_str("transient"),
            FaultKind::Persistent => f.write_str("persistent"),
        }
    }
}

/// A fault produced by the [`FaultInjector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The operation label the fault was injected into.
    pub op: String,
    /// Transient or persistent.
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected {} fault in `{}`", self.kind, self.op)
    }
}

impl std::error::Error for InjectedFault {}

impl InjectedFault {
    /// Converts into the `io::Error` the faulted operation would report.
    pub fn into_io_error(self) -> io::Error {
        let kind = match self.kind {
            FaultKind::Transient => io::ErrorKind::Interrupted,
            FaultKind::Persistent => io::ErrorKind::Other,
        };
        io::Error::new(kind, self.to_string())
    }
}

#[derive(Debug)]
enum FailMode {
    /// Fail exactly the `nth` evaluation of the op (1-based), once.
    Nth(u64),
    /// Fail the next `remaining` evaluations.
    Next(u64),
    /// Fail every evaluation.
    Always,
    /// Fail each evaluation independently with probability `p` drawn from
    /// the injector's seeded RNG.
    Probability(f64),
}

#[derive(Debug)]
struct ArmedFault {
    op: String,
    mode: FailMode,
    kind: FaultKind,
}

#[derive(Debug, Clone, Copy, Default)]
struct OpStats {
    evaluations: u64,
    injected: u64,
}

#[derive(Debug)]
struct InjectorState {
    rng: Rng,
    arms: Vec<ArmedFault>,
    stats: BTreeMap<String, OpStats>,
}

/// A deterministic environment fault source.
///
/// I/O sites in the pipeline (telemetry sinks, `Result.txt` writes, suite
/// persistence) consult an injector before touching the real environment;
/// chaos tests arm it to make those sites fail on demand. The default
/// injector is disabled and free: `check` on it is a single `Option`
/// test.
///
/// Clones share state, so a test can keep a handle while the pipeline
/// holds another. All scheduling is deterministic: `fail_nth` counts
/// evaluations, and `fail_with_probability` draws from the in-repo
/// SplitMix64 seeded at construction.
///
/// # Examples
///
/// ```
/// use concat_runtime::{FaultInjector, FaultKind};
///
/// let inj = FaultInjector::seeded(7);
/// inj.fail_nth("sink.write", 2, FaultKind::Transient);
/// assert!(inj.check("sink.write").is_ok());
/// assert!(inj.check("sink.write").is_err()); // the 2nd evaluation
/// assert!(inj.check("sink.write").is_ok());
/// assert_eq!(inj.injected("sink.write"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Mutex<InjectorState>>>,
}

impl FaultInjector {
    /// The disabled injector: never fails anything, costs one branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled injector seeded for deterministic probability draws.
    pub fn seeded(seed: u64) -> Self {
        FaultInjector {
            inner: Some(Arc::new(Mutex::new(InjectorState {
                rng: Rng::seed_from_u64(seed),
                arms: Vec::new(),
                stats: BTreeMap::new(),
            }))),
        }
    }

    /// True when faults can be armed (i.e. not the disabled handle).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<T>(&self, f: impl FnOnce(&mut InjectorState) -> T) -> Option<T> {
        self.inner.as_ref().map(|m| f(&mut recover(m.lock())))
    }

    fn arm(&self, op: &str, mode: FailMode, kind: FaultKind) {
        self.with_state(|s| {
            s.arms.push(ArmedFault {
                op: op.to_owned(),
                mode,
                kind,
            });
        });
    }

    /// Fails the `nth` evaluation (1-based) of `op`, once.
    pub fn fail_nth(&self, op: &str, nth: u64, kind: FaultKind) {
        self.arm(op, FailMode::Nth(nth), kind);
    }

    /// Fails the next `count` evaluations of `op`.
    pub fn fail_next(&self, op: &str, count: u64, kind: FaultKind) {
        self.arm(op, FailMode::Next(count), kind);
    }

    /// Fails every evaluation of `op`.
    pub fn fail_always(&self, op: &str, kind: FaultKind) {
        self.arm(op, FailMode::Always, kind);
    }

    /// Fails each evaluation of `op` independently with probability `p`
    /// (clamped to `[0, 1]`), drawn from the seeded RNG.
    pub fn fail_with_probability(&self, op: &str, p: f64, kind: FaultKind) {
        self.arm(op, FailMode::Probability(p.clamp(0.0, 1.0)), kind);
    }

    /// Evaluates one operation: `Ok(())` to proceed, `Err` when a fault
    /// fires. Counts every evaluation.
    ///
    /// # Errors
    ///
    /// Returns the [`InjectedFault`] of the first armed fault that fires
    /// for this evaluation.
    pub fn check(&self, op: &str) -> Result<(), InjectedFault> {
        let Some(fired) = self.with_state(|s| {
            let stats = s.stats.entry(op.to_owned()).or_default();
            stats.evaluations += 1;
            let evaluation = stats.evaluations;
            let mut fired: Option<FaultKind> = None;
            let rng = &mut s.rng;
            for arm in s.arms.iter_mut().filter(|a| a.op == op) {
                let fire = match &mut arm.mode {
                    FailMode::Nth(n) => evaluation == *n,
                    FailMode::Next(remaining) => {
                        if *remaining > 0 {
                            *remaining -= 1;
                            true
                        } else {
                            false
                        }
                    }
                    FailMode::Always => true,
                    FailMode::Probability(p) => rng.float_in(0.0, 1.0) < *p,
                };
                if fire {
                    fired = Some(arm.kind);
                    break;
                }
            }
            if fired.is_some() {
                // `entry` above may have moved; re-fetch to bump the count.
                if let Some(stats) = s.stats.get_mut(op) {
                    stats.injected += 1;
                }
            }
            fired
        }) else {
            return Ok(());
        };
        match fired {
            Some(kind) => Err(InjectedFault {
                op: op.to_owned(),
                kind,
            }),
            None => Ok(()),
        }
    }

    /// Like [`FaultInjector::check`], as an `io::Result` for I/O sites.
    ///
    /// # Errors
    ///
    /// The fired fault converted via [`InjectedFault::into_io_error`].
    pub fn check_io(&self, op: &str) -> io::Result<()> {
        self.check(op).map_err(InjectedFault::into_io_error)
    }

    /// How many times `op` was evaluated.
    pub fn evaluations(&self, op: &str) -> u64 {
        self.with_state(|s| s.stats.get(op).map_or(0, |st| st.evaluations))
            .unwrap_or(0)
    }

    /// How many faults fired for `op`.
    pub fn injected(&self, op: &str) -> u64 {
        self.with_state(|s| s.stats.get(op).map_or(0, |st| st.injected))
            .unwrap_or(0)
    }

    /// Total faults fired across all operations.
    pub fn total_injected(&self) -> u64 {
        self.with_state(|s| s.stats.values().map(|st| st.injected).sum())
            .unwrap_or(0)
    }

    /// Disarms every fault (statistics are kept).
    pub fn clear(&self) {
        self.with_state(|s| s.arms.clear());
    }
}

// ---------------------------------------------------------------------------
// Retry
// ---------------------------------------------------------------------------

/// True for `io::Error` kinds worth retrying.
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff for transient I/O failures.
///
/// # Examples
///
/// ```
/// use concat_runtime::RetryPolicy;
/// use std::time::Duration;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.max_attempts, 3);
/// assert!(p.backoff_delay(10) <= p.max_delay);
/// let fast = RetryPolicy::no_delay(5); // tests: no sleeping
/// assert_eq!(fast.backoff_delay(3), Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Cap on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries without sleeping (chaos tests).
    pub fn no_delay(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The delay before retry number `retry` (1-based): `base * 2^(retry-1)`,
    /// capped at `max_delay`.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }

    /// Full-jitter exponential backoff: uniform in `[0, backoff_delay(retry)]`.
    ///
    /// Fixed exponential delays synchronize — respawned shards that all
    /// died together retry together, hammering whatever killed them in
    /// lockstep. Full jitter decorrelates the retries while keeping the
    /// exponential envelope; drawing from the caller's seeded SplitMix64
    /// [`Rng`] keeps campaigns deterministic for a given seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use concat_runtime::{RetryPolicy, Rng};
    ///
    /// let p = RetryPolicy::default();
    /// let mut a = Rng::seed_from_u64(11);
    /// let mut b = Rng::seed_from_u64(11);
    /// let d = p.jittered_delay(2, &mut a);
    /// assert_eq!(d, p.jittered_delay(2, &mut b), "seeded: reproducible");
    /// assert!(d <= p.backoff_delay(2), "jitter stays under the envelope");
    /// ```
    pub fn jittered_delay(&self, retry: u32, rng: &mut Rng) -> Duration {
        let cap = self.backoff_delay(retry);
        if cap.is_zero() {
            return Duration::ZERO;
        }
        let nanos = u64::try_from(cap.as_nanos()).unwrap_or(u64::MAX);
        Duration::from_nanos(rng.next_u64() % nanos.saturating_add(1))
    }
}

/// The result of running an operation under an [`IoPolicy`].
#[derive(Debug)]
pub struct IoAttempt<T> {
    /// Final result: the success value, or the last error after retries
    /// were exhausted (or a non-transient error was seen).
    pub result: io::Result<T>,
    /// Total attempts made (≥ 1).
    pub attempts: u32,
    /// Retries performed (`attempts - 1`).
    pub retries: u32,
}

impl<T> IoAttempt<T> {
    /// True when the operation ultimately succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Retry policy plus fault injector: everything an I/O site needs to be
/// both fail-safe and chaos-testable.
#[derive(Debug, Clone, Default)]
pub struct IoPolicy {
    /// How to retry transient failures.
    pub retry: RetryPolicy,
    /// The environment fault source (disabled by default).
    pub injector: FaultInjector,
}

impl IoPolicy {
    /// A policy with the given retry schedule and no fault injection.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        IoPolicy {
            retry,
            injector: FaultInjector::disabled(),
        }
    }

    /// A policy with the given injector and the default retry schedule.
    pub fn with_injector(injector: FaultInjector) -> Self {
        IoPolicy {
            retry: RetryPolicy::default(),
            injector,
        }
    }

    /// Sets the injector.
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Runs `f`, retrying transient failures per the policy. The injector
    /// is consulted before each attempt under the label `op`; an injected
    /// fault replaces the attempt.
    ///
    /// Non-transient errors and exhausted budgets end the loop; the caller
    /// decides whether to propagate or degrade.
    pub fn run<T>(&self, op: &str, mut f: impl FnMut() -> io::Result<T>) -> IoAttempt<T> {
        let max = self.retry.max_attempts.max(1);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let outcome = match self.injector.check_io(op) {
                Ok(()) => f(),
                Err(injected) => Err(injected),
            };
            match outcome {
                Ok(v) => {
                    return IoAttempt {
                        result: Ok(v),
                        attempts,
                        retries: attempts - 1,
                    }
                }
                Err(e) => {
                    if attempts >= max || !is_transient_io(&e) {
                        return IoAttempt {
                            result: Err(e),
                            attempts,
                            retries: attempts - 1,
                        };
                    }
                    let delay = self.retry.backoff_delay(attempts);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builders_and_default() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let b = b
            .with_max_calls(3)
            .with_max_transcript_bytes(1024)
            .with_deadline(Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_calls, Some(3));
        assert_eq!(b.max_transcript_bytes, Some(1024));
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        assert_eq!(BudgetResource::Calls.to_string(), "calls");
        assert_eq!(
            BudgetResource::TranscriptBytes.to_string(),
            "transcript bytes"
        );
    }

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        t.checkpoint(); // must not panic
        clone.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn child_token_inherits_parent_cancellation() {
        let service = CancelToken::new();
        let campaign = service.child();
        let worker = campaign.child();
        assert!(!campaign.is_cancelled() && !worker.is_cancelled());
        service.cancel();
        assert!(campaign.is_cancelled(), "parent cancel reaches children");
        assert!(worker.is_cancelled(), "…and grandchildren");
        service.reset();
        assert!(!worker.is_cancelled(), "parent reset clears the chain");
    }

    #[test]
    fn child_cancel_never_propagates_upward() {
        let service = CancelToken::new();
        let a = service.child();
        let b = service.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!service.is_cancelled(), "cancel must not flow upward");
        assert!(!b.is_cancelled(), "…nor sideways to siblings");
    }

    #[test]
    fn child_reset_cannot_clear_inherited_cancellation() {
        let service = CancelToken::new();
        let campaign = service.child();
        service.cancel();
        campaign.reset();
        assert!(
            campaign.is_cancelled(),
            "only the ancestor's own reset clears its flag"
        );
    }

    #[test]
    fn child_clones_share_flag_and_ancestry() {
        let service = CancelToken::new();
        let campaign = service.child();
        let clone = campaign.clone();
        campaign.cancel();
        assert!(clone.is_cancelled(), "clones share the child's flag");
        campaign.reset();
        service.cancel();
        assert!(clone.is_cancelled(), "clones keep the parent link");
    }

    #[test]
    fn cancelled_checkpoint_panics_with_payload() {
        let t = CancelToken::new();
        t.cancel();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(|| t.checkpoint());
        std::panic::set_hook(prev);
        let payload = r.unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&DEADLINE_PANIC_PAYLOAD)
        );
    }

    #[test]
    fn watchdog_fires_at_deadline() {
        let wd = Watchdog::spawn();
        assert!(wd.is_running());
        let token = CancelToken::new();
        wd.arm(&token, Duration::from_millis(5));
        let start = Instant::now();
        while !token.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "watchdog hung");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(wd.fired(), 1);
    }

    #[test]
    fn disarmed_watchdog_does_not_fire() {
        let wd = Watchdog::spawn();
        let token = CancelToken::new();
        wd.arm(&token, Duration::from_millis(30));
        wd.disarm();
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled());
        assert_eq!(wd.fired(), 0);
    }

    #[test]
    fn rearming_replaces_the_deadline() {
        let wd = Watchdog::spawn();
        let stale = CancelToken::new();
        wd.arm(&stale, Duration::from_millis(10));
        let fresh = CancelToken::new();
        wd.arm(&fresh, Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!stale.is_cancelled(), "replaced job must not fire");
        assert!(fresh.is_cancelled());
        assert_eq!(wd.fired(), 1);
    }

    #[test]
    fn disabled_injector_never_fails() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        inj.fail_always("x", FaultKind::Persistent); // no-op
        assert!(inj.check("x").is_ok());
        assert_eq!(inj.evaluations("x"), 0);
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn nth_next_and_always_modes() {
        let inj = FaultInjector::seeded(1);
        inj.fail_nth("a", 2, FaultKind::Transient);
        assert!(inj.check("a").is_ok());
        let fault = inj.check("a").unwrap_err();
        assert_eq!(fault.kind, FaultKind::Transient);
        assert!(inj.check("a").is_ok());

        inj.fail_next("b", 2, FaultKind::Persistent);
        assert!(inj.check("b").is_err());
        assert!(inj.check("b").is_err());
        assert!(inj.check("b").is_ok());

        inj.fail_always("c", FaultKind::Persistent);
        for _ in 0..5 {
            assert!(inj.check("c").is_err());
        }
        assert_eq!(inj.evaluations("a"), 3);
        assert_eq!(inj.injected("a"), 1);
        assert_eq!(inj.injected("b"), 2);
        assert_eq!(inj.injected("c"), 5);
        assert_eq!(inj.total_injected(), 8);
        inj.clear();
        assert!(inj.check("c").is_ok());
    }

    #[test]
    fn probability_mode_is_deterministic_per_seed() {
        let trace = |seed| {
            let inj = FaultInjector::seeded(seed);
            inj.fail_with_probability("p", 0.5, FaultKind::Transient);
            (0..32).map(|_| inj.check("p").is_err()).collect::<Vec<_>>()
        };
        assert_eq!(trace(42), trace(42), "same seed, same faults");
        assert_ne!(trace(42), trace(43), "different seed, different faults");
    }

    #[test]
    fn injected_fault_maps_to_io_kinds() {
        let t = InjectedFault {
            op: "w".into(),
            kind: FaultKind::Transient,
        };
        assert!(is_transient_io(&t.clone().into_io_error()));
        let p = InjectedFault {
            op: "w".into(),
            kind: FaultKind::Persistent,
        };
        let e = p.into_io_error();
        assert!(!is_transient_io(&e));
        assert!(e.to_string().contains("persistent fault in `w`"));
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector: FaultInjector::seeded(0),
        };
        policy.injector.fail_next("op", 2, FaultKind::Transient);
        let attempt = policy.run("op", || Ok::<_, io::Error>(7));
        assert_eq!(attempt.result.unwrap(), 7);
        assert_eq!(attempt.attempts, 3);
        assert_eq!(attempt.retries, 2);
    }

    #[test]
    fn retry_gives_up_on_persistent_failures_immediately() {
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(5),
            injector: FaultInjector::seeded(0),
        };
        policy.injector.fail_always("op", FaultKind::Persistent);
        let attempt = policy.run("op", || Ok::<_, io::Error>(()));
        assert!(attempt.result.is_err());
        assert_eq!(attempt.attempts, 1, "persistent errors are not retried");
    }

    #[test]
    fn retry_exhausts_on_endless_transients() {
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(4),
            injector: FaultInjector::seeded(0),
        };
        policy.injector.fail_always("op", FaultKind::Transient);
        let attempt = policy.run("op", || Ok::<_, io::Error>(()));
        assert!(attempt.result.is_err());
        assert_eq!(attempt.attempts, 4);
        assert_eq!(attempt.retries, 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_delay(1), Duration::from_millis(2));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(4));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(8));
        assert_eq!(p.backoff_delay(4), Duration::from_millis(10), "capped");
        assert_eq!(p.backoff_delay(30), Duration::from_millis(10));
    }

    #[test]
    fn jittered_backoff_is_seeded_bounded_and_spread() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        let mut rng = Rng::seed_from_u64(42);
        let mut replay = Rng::seed_from_u64(42);
        let mut distinct = std::collections::BTreeSet::new();
        for retry in 1..=50 {
            let d = p.jittered_delay(retry, &mut rng);
            assert!(d <= p.backoff_delay(retry), "retry {retry}: {d:?}");
            assert_eq!(d, p.jittered_delay(retry, &mut replay), "deterministic");
            distinct.insert(d);
        }
        assert!(distinct.len() > 10, "full jitter actually varies");
        let mut rng = Rng::seed_from_u64(42);
        assert_eq!(
            RetryPolicy::no_delay(3).jittered_delay(2, &mut rng),
            Duration::ZERO,
            "a zero envelope never sleeps (and draws nothing from the rng)"
        );
        assert_eq!(rng, Rng::seed_from_u64(42));
    }
}
