//! A small deterministic pseudo-random number generator.
//!
//! The toolchain runs in offline environments where the `rand` crate (and
//! any other registry dependency) may be unavailable, so the workspace
//! hand-rolls the one piece of it the pipeline needs: a seedable,
//! reproducible stream of integers, floats and choices. The generator is
//! SplitMix64 (Steele, Lea & Flood 2014) — a tiny, well-studied mixer that
//! is more than adequate for test-input sampling. It is explicitly **not**
//! cryptographic.
//!
//! Suites record their seed, and the paper's workflow depends on
//! bit-for-bit regeneration, so the algorithm is frozen: changing it would
//! silently invalidate persisted suites and golden transcripts.

/// Deterministic SplitMix64 random number generator.
///
/// # Examples
///
/// ```
/// use concat_runtime::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.int_in(1, 6);
/// assert!((1..=6).contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_in: empty range {lo}..={hi}");
        // Width of the range as u64; `hi - lo` may overflow i64, so the
        // subtraction is done in wrapping space and reinterpreted.
        let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
        if span == 0 {
            // Full 2^64-wide range: every u64 maps to a distinct value.
            return self.next_u64() as i64;
        }
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform float in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "float_in: empty range {lo}..={hi}");
        // 53 mantissa bits give a uniform unit float.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_in_stays_in_range() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.int_in(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn int_in_hits_every_value_of_a_small_range() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(r.int_in(10, 13) - 10) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn int_in_extreme_ranges() {
        let mut r = Rng::seed_from_u64(5);
        // Full-width range must not panic or loop.
        let _ = r.int_in(i64::MIN, i64::MAX);
        assert_eq!(r.int_in(7, 7), 7);
        let v = r.int_in(i64::MAX - 1, i64::MAX);
        assert!(v == i64::MAX - 1 || v == i64::MAX);
    }

    #[test]
    fn float_in_stays_in_range() {
        let mut r = Rng::seed_from_u64(6);
        for _ in 0..1000 {
            let v = r.float_in(0.25, 0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn index_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn coin_lands_on_both_sides() {
        let mut r = Rng::seed_from_u64(8);
        let heads = (0..100).filter(|_| r.coin()).count();
        assert!(heads > 10 && heads < 90);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        Rng::seed_from_u64(0).int_in(3, 2);
    }
}
