//! Crash-safe filesystem primitives: atomic replace-on-commit writes and
//! a checksummed, corruption-tolerant append-only journal.
//!
//! Everything the harness persists — `Result.txt` logs, suites, telemetry
//! traces, mutation-verdict journals — must survive a process kill at any
//! instant without leaving a torn file behind (DESIGN.md §11). Two
//! primitives cover the two write shapes:
//!
//! * **Replace-on-commit** ([`write_atomic`], [`AtomicFile`]): the new
//!   contents are written to a temporary file in the destination's
//!   directory, fsynced, then renamed over the destination. A kill before
//!   the rename leaves the old file intact; a kill after leaves the new
//!   one. Readers never observe a partial write.
//! * **Checksummed journal** ([`Journal`], [`scan_journal`],
//!   [`recover_journal`]): append-only records, one per line, each
//!   prefixed with the CRC-32 of its payload. The reader verifies every
//!   record and stops at the first bad one — a torn tail from a mid-append
//!   kill (or a flipped byte from corruption) costs only the records from
//!   that point on, never the verified prefix.
//!
//! Record layout (one line per record, `\n`-terminated):
//!
//! ```text
//! <crc32 of payload, 8 lowercase hex digits> <payload>\n
//! ```

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven. Built at
/// compile time so the checksum needs no dependency and no runtime init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) checksum of `bytes`.
///
/// # Examples
///
/// ```
/// // The standard check value for this polynomial.
/// assert_eq!(concat_runtime::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Process-unique suffix counter for temp names, so concurrent atomic
/// writes to the same destination never collide on the temp file.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(dest: &Path) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = dest
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_owned());
    dest.with_file_name(format!(".{name}.{pid}.{n}.tmp"))
}

/// Best-effort directory sync after a rename: the rename itself is already
/// atomic with respect to readers; syncing the parent only strengthens
/// durability across power loss, so failures (e.g. on filesystems that
/// refuse to open directories) are deliberately ignored.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

/// A file that becomes visible only on [`AtomicFile::commit`]: writes go
/// to a temporary sibling, and commit fsyncs then renames it over the
/// destination. Dropped uncommitted, the temporary is removed and the
/// destination is untouched — a kill mid-write can never leave a torn
/// file under the destination name.
///
/// # Examples
///
/// ```
/// use std::io::Write;
/// let dir = std::env::temp_dir().join("concat-atomic-file-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let dest = dir.join("out.txt");
/// let mut file = concat_runtime::AtomicFile::create(&dest).unwrap();
/// file.write_all(b"whole or nothing").unwrap();
/// file.commit().unwrap();
/// assert_eq!(std::fs::read_to_string(&dest).unwrap(), "whole or nothing");
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct AtomicFile {
    file: Option<File>,
    tmp: PathBuf,
    dest: PathBuf,
    committed: bool,
}

impl AtomicFile {
    /// Opens a temporary file next to `dest`; nothing is visible at
    /// `dest` until [`AtomicFile::commit`].
    ///
    /// # Errors
    ///
    /// Propagates the temporary-file creation error.
    pub fn create(dest: impl AsRef<Path>) -> io::Result<AtomicFile> {
        let dest = dest.as_ref().to_path_buf();
        let tmp = temp_path(&dest);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            file: Some(file),
            tmp,
            dest,
            committed: false,
        })
    }

    /// The destination the commit will rename onto.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Fsyncs the temporary and renames it over the destination, making
    /// the new contents visible atomically. Returns the destination path.
    ///
    /// # Errors
    ///
    /// Propagates fsync/rename errors; on error the temporary is removed
    /// and the destination keeps its previous contents.
    pub fn commit(mut self) -> io::Result<PathBuf> {
        if let Some(file) = self.file.take() {
            file.sync_all()?;
        }
        fs::rename(&self.tmp, &self.dest)?;
        self.committed = true;
        sync_parent_dir(&self.dest);
        Ok(self.dest.clone())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &mut self.file {
            Some(file) => file.write(buf),
            None => Err(io::Error::other("atomic file already committed")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.file {
            Some(file) => file.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.committed {
            drop(self.file.take());
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Atomically replaces the contents of `path` with `bytes`: write a
/// temporary sibling, fsync, rename into place. Readers observe either
/// the old contents or the new — never a prefix.
///
/// # Errors
///
/// Propagates I/O errors; the destination is untouched on error.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let mut file = AtomicFile::create(path)?;
    file.write_all(bytes)?;
    file.commit()?;
    Ok(())
}

/// An append-only journal of checksummed records, fsynced per append.
///
/// Each record is one line: the CRC-32 of the payload in eight hex
/// digits, a space, the payload. Appends are durable when they return —
/// the write-ahead property resumable campaigns rely on.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join("concat-journal-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("j.journal");
/// let mut journal = concat_runtime::Journal::open(&path).unwrap();
/// journal.append("verdict 0 survived").unwrap();
/// let scan = concat_runtime::scan_journal(&path).unwrap();
/// assert_eq!(scan.records, vec!["verdict 0 survived".to_owned()]);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if missing) a journal for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open/create error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed record and fsyncs it: when this returns
    /// `Ok`, the record survives a kill.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the payload contains a newline (records are
    /// line-framed); otherwise the underlying write/sync error.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        if payload.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal records are line-framed and cannot contain newlines",
            ));
        }
        let record = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        self.file.write_all(record.as_bytes())?;
        self.file.sync_data()
    }

    /// Appends a batch of checksummed records with a single fsync: every
    /// payload is validated first, then the whole batch is written and
    /// synced once. When this returns `Ok` the entire batch survives a
    /// kill; a kill mid-write tears at most the batch's tail, which the
    /// scanner drops record-by-record like any torn append.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when any payload contains a newline (nothing is
    /// written in that case); otherwise the underlying write/sync error.
    pub fn append_all<S: AsRef<str>>(&mut self, payloads: &[S]) -> io::Result<()> {
        let mut batch = String::new();
        for payload in payloads {
            let payload = payload.as_ref();
            if payload.contains('\n') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "journal records are line-framed and cannot contain newlines",
                ));
            }
            let _ = std::fmt::Write::write_fmt(
                &mut batch,
                format_args!("{:08x} {payload}\n", crc32(payload.as_bytes())),
            );
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.file.write_all(batch.as_bytes())?;
        self.file.sync_data()
    }

    /// Discards every record (used when a journal belongs to a different
    /// campaign than the one resuming).
    ///
    /// # Errors
    ///
    /// Propagates the truncate/sync error.
    pub fn clear(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()
    }
}

/// What [`scan_journal`] verified: the records of the longest valid
/// prefix, and how many trailing bytes failed verification (a torn final
/// append, or corruption anywhere after the prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Payloads of the verified records, in append order.
    pub records: Vec<String>,
    /// Length in bytes of the verified prefix.
    pub valid_bytes: u64,
    /// Bytes after the verified prefix that failed verification; `0` for
    /// a clean journal.
    pub truncated_bytes: u64,
}

impl JournalScan {
    /// True when every byte of the journal verified.
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes == 0
    }
}

/// Verifies one framed line (sans `\n`); returns its payload when the
/// frame and checksum hold.
fn verify_record(line: &[u8]) -> Option<String> {
    if line.len() < 9 || line[8] != b' ' {
        return None;
    }
    let crc_text = std::str::from_utf8(&line[..8]).ok()?;
    let expected = u32::from_str_radix(crc_text, 16).ok()?;
    let payload = &line[9..];
    if crc32(payload) != expected {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

/// Reads a journal, verifying record checksums, and returns the longest
/// valid prefix. Verification stops at the first bad record — an
/// unterminated final line (torn append) or a checksum mismatch — and
/// everything from there on is reported as truncated, not returned. A
/// missing file scans as an empty, clean journal.
///
/// # Errors
///
/// Propagates read errors other than `NotFound`.
pub fn scan_journal(path: impl AsRef<Path>) -> io::Result<JournalScan> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // no terminator: a torn final append
        };
        let Some(payload) = verify_record(&bytes[offset..offset + nl]) else {
            break; // bad frame or checksum: drop this record and the rest
        };
        records.push(payload);
        offset += nl + 1;
    }
    Ok(JournalScan {
        records,
        valid_bytes: offset as u64,
        truncated_bytes: (bytes.len() - offset) as u64,
    })
}

/// Scans a journal, truncates any torn/corrupt tail off the file so
/// future appends extend the verified prefix, and opens it for appending.
/// Returns the journal and the scan of what survived.
///
/// # Errors
///
/// Propagates scan, truncate and open errors.
pub fn recover_journal(path: impl AsRef<Path>) -> io::Result<(Journal, JournalScan)> {
    let path = path.as_ref();
    let scan = scan_journal(path)?;
    if scan.truncated_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.sync_data()?;
    }
    Ok((Journal::open(path)?, scan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concat-atomic-io-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn write_atomic_creates_and_replaces() {
        let dir = scratch("write");
        let path = dir.join("out.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp litter: the directory holds exactly the destination.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_atomic_file_leaves_destination_untouched() {
        let dir = scratch("uncommitted");
        let path = dir.join("out.txt");
        write_atomic(&path, b"original").unwrap();
        {
            let mut file = AtomicFile::create(&path).unwrap();
            file.write_all(b"half-writ").unwrap();
            // dropped without commit
        }
        assert_eq!(fs::read_to_string(&path).unwrap(), "original");
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "temp file cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_round_trips_records() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.journal");
        let mut journal = Journal::open(&path).unwrap();
        journal.append("alpha").unwrap();
        journal.append("beta gamma").unwrap();
        journal.append("").unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.records, vec!["alpha", "beta gamma", ""]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_all_writes_a_verifiable_batch() {
        let dir = scratch("batch");
        let path = dir.join("j.journal");
        let mut journal = Journal::open(&path).unwrap();
        journal.append("single").unwrap();
        journal.append_all(&["batch one", "batch two", ""]).unwrap();
        journal.append_all::<&str>(&[]).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.records, vec!["single", "batch one", "batch two", ""]);
        // A newline anywhere in the batch rejects the whole batch.
        let err = journal.append_all(&["fine", "two\nlines"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records.len(), 4, "rejected batch wrote nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newline_payloads_are_rejected() {
        let dir = scratch("newline");
        let mut journal = Journal::open(dir.join("j.journal")).unwrap();
        let err = journal.append("two\nlines").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join("j.journal");
        let mut journal = Journal::open(&path).unwrap();
        journal.append("kept one").unwrap();
        journal.append("kept two").unwrap();
        // Simulate a kill mid-append: a record without its terminator.
        let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
        raw.write_all(b"01234567 torn rec").unwrap();
        drop(raw);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records, vec!["kept one", "kept two"]);
        assert!(!scan.is_clean());
        // Recovery chops the torn tail; subsequent appends verify.
        let (mut journal, scan) = recover_journal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        journal.append("after recovery").unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.records, vec!["kept one", "kept two", "after recovery"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_everything_after_it() {
        let dir = scratch("corrupt");
        let path = dir.join("j.journal");
        let mut journal = Journal::open(&path).unwrap();
        for i in 0..4 {
            journal.append(&format!("record {i}")).unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = fs::read(&path).unwrap();
        let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        let offset = lines[0].len() + 1 + 9; // second line, first payload byte
        bytes[offset] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(
            scan.records,
            vec!["record 0"],
            "prefix before corruption survives"
        );
        assert!(scan.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_scans_empty_and_clean() {
        let dir = scratch("missing");
        let scan = scan_journal(dir.join("nope.journal")).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_empties_the_journal() {
        let dir = scratch("clear");
        let path = dir.join("j.journal");
        let mut journal = Journal::open(&path).unwrap();
        journal.append("old campaign").unwrap();
        journal.clear().unwrap();
        journal.append("new campaign").unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records, vec!["new campaign"]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
