//! Dynamically typed values exchanged between test drivers and components.
//!
//! The paper's driver generator emits C++ code, so the compiler provides the
//! bridge between generated test cases and the component under test. Rust has
//! no runtime reflection, so generated test cases instead carry [`Value`]s and
//! components dispatch on method names (see [`crate::Component`]). `Value`
//! deliberately mirrors the parameter kinds the t-spec format of the paper
//! can describe: numeric ranges, value sets, strings, object references and
//! pointers (nullable references).

use std::fmt;

/// A dynamically typed value passed to or returned from a component method.
///
/// # Examples
///
/// ```
/// use concat_runtime::Value;
///
/// let v = Value::Int(42);
/// assert_eq!(v.kind(), concat_runtime::ValueKind::Int);
/// assert_eq!(v.as_int().unwrap(), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The absence of a value: `void` returns and null pointers.
    #[default]
    Null,
    /// A boolean flag.
    Bool(bool),
    /// A signed integer. All integral t-spec domains map onto `i64`.
    Int(i64),
    /// A floating point number. Compared bitwise for oracle purposes.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence of values (arrays and variadic captures).
    List(Vec<Value>),
    /// A reference to another object, identified by class name and key.
    ///
    /// The paper passes `Provider*` style pointers; we pass opaque named
    /// handles that factories and stores can resolve.
    Obj(ObjRef),
}

/// An opaque reference to a component instance or domain object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    /// Class of the referenced object (e.g. `"Provider"`).
    pub class_name: String,
    /// Identifying key within that class (e.g. a provider id).
    pub key: String,
}

impl ObjRef {
    /// Creates a new object reference.
    ///
    /// ```
    /// use concat_runtime::ObjRef;
    /// let r = ObjRef::new("Provider", "acme");
    /// assert_eq!(r.class_name, "Provider");
    /// ```
    pub fn new(class_name: impl Into<String>, key: impl Into<String>) -> Self {
        ObjRef {
            class_name: class_name.into(),
            key: key.into(),
        }
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}:{}", self.class_name, self.key)
    }
}

/// The kind (dynamic type tag) of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// [`Value::Null`].
    Null,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`].
    Float,
    /// [`Value::Str`].
    Str,
    /// [`Value::List`].
    List,
    /// [`Value::Obj`].
    Obj,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "string",
            ValueKind::List => "list",
            ValueKind::Obj => "object",
        };
        f.write_str(s)
    }
}

impl Value {
    /// Returns the dynamic type tag of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::List(_) => ValueKind::List,
            Value::Obj(_) => ValueKind::Obj,
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts a boolean, or reports the actual kind.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is not a `Bool`.
    pub fn as_bool(&self) -> Result<bool, ValueKind> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.kind()),
        }
    }

    /// Extracts an integer, or reports the actual kind.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is not an `Int`.
    pub fn as_int(&self) -> Result<i64, ValueKind> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.kind()),
        }
    }

    /// Extracts a float. Integers are widened, matching C++ implicit
    /// conversion in the generated drivers.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is neither `Float`
    /// nor `Int`.
    pub fn as_float(&self) -> Result<f64, ValueKind> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(other.kind()),
        }
    }

    /// Extracts a string slice, or reports the actual kind.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is not a `Str`.
    pub fn as_str(&self) -> Result<&str, ValueKind> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.kind()),
        }
    }

    /// Extracts a list slice, or reports the actual kind.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is not a `List`.
    pub fn as_list(&self) -> Result<&[Value], ValueKind> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(other.kind()),
        }
    }

    /// Extracts an object reference, or reports the actual kind.
    ///
    /// # Errors
    ///
    /// Returns the actual [`ValueKind`] when the value is not an `Obj`.
    pub fn as_obj(&self) -> Result<&ObjRef, ValueKind> {
        match self {
            Value::Obj(r) => Ok(r),
            other => Err(other.kind()),
        }
    }

    /// Total ordering used by the subject components when sorting lists of
    /// values (the paper sorts `CObject*` lists with user comparators).
    ///
    /// Kind order: Null < Bool < Int/Float (numeric, compared numerically)
    /// < Str < List < Obj. NaN floats compare greater than all numbers so
    /// the order stays total.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::List(_) => 4,
                Value::Obj(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Obj(a), Value::Obj(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Renders the value the way generated drivers print arguments
    /// (Figure 6 of the paper): strings quoted, objects as `&Class:key`.
    pub fn to_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    format!("{x:.1}")
                } else {
                    x.to_string()
                }
            }
            Value::Str(s) => format!("\"{}\"", s.escape_default()),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_literal).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Obj(r) => r.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_literal())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Obj(r)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn kind_reports_every_variant() {
        assert_eq!(Value::Null.kind(), ValueKind::Null);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::Str("x".into()).kind(), ValueKind::Str);
        assert_eq!(Value::List(vec![]).kind(), ValueKind::List);
        assert_eq!(Value::Obj(ObjRef::new("A", "k")).kind(), ValueKind::Obj);
    }

    #[test]
    fn as_int_accepts_only_ints() {
        assert_eq!(Value::Int(7).as_int(), Ok(7));
        assert_eq!(Value::Str("7".into()).as_int(), Err(ValueKind::Str));
    }

    #[test]
    fn as_float_widens_ints() {
        assert_eq!(Value::Int(2).as_float(), Ok(2.0));
        assert_eq!(Value::Float(2.5).as_float(), Ok(2.5));
        assert_eq!(Value::Null.as_float(), Err(ValueKind::Null));
    }

    #[test]
    fn as_str_borrows() {
        let v = Value::Str("hello".into());
        assert_eq!(v.as_str(), Ok("hello"));
        assert_eq!(Value::Int(1).as_str(), Err(ValueKind::Int));
    }

    #[test]
    fn as_bool_and_as_obj_and_as_list() {
        assert_eq!(Value::Bool(true).as_bool(), Ok(true));
        assert_eq!(Value::Int(0).as_bool(), Err(ValueKind::Int));
        let r = ObjRef::new("Provider", "p1");
        assert_eq!(Value::Obj(r.clone()).as_obj(), Ok(&r));
        let l = Value::List(vec![Value::Int(1)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
    }

    #[test]
    fn total_cmp_orders_numbers_across_variants() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn total_cmp_ranks_kinds() {
        assert_eq!(Value::Null.total_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(99)),
            Ordering::Greater
        );
    }

    #[test]
    fn total_cmp_is_total_on_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn total_cmp_lists_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn literals_match_driver_rendering() {
        assert_eq!(Value::Null.to_literal(), "NULL");
        assert_eq!(Value::Int(-3).to_literal(), "-3");
        assert_eq!(Value::Float(2.0).to_literal(), "2.0");
        assert_eq!(Value::Str("Mary".into()).to_literal(), "\"Mary\"");
        assert_eq!(
            Value::Obj(ObjRef::new("Provider", "p1")).to_literal(),
            "&Provider:p1"
        );
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_literal(),
            "[1, \"a\"]"
        );
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(7usize), Value::Int(7));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
        let collected: Value = vec![Value::Int(1)].into_iter().collect();
        assert_eq!(collected, Value::List(vec![Value::Int(1)]));
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }
}
