//! Parsing the textual literal form of [`Value`]s.
//!
//! [`Value::to_literal`] renders values the way generated drivers print
//! arguments; [`parse_value_literal`] inverts that rendering so test
//! suites and histories can be persisted as text (the paper's test
//! infrastructure includes "test history creation and maintenance" and
//! "test retrieval", §3.4). The pair round-trips:
//! `parse_value_literal(&v.to_literal()) == Ok(v)`.

use crate::value::{ObjRef, Value};
use std::fmt;
use std::iter::Peekable;
use std::str::Chars;

/// A literal parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value literal: {}", self.message)
    }
}

impl std::error::Error for ParseValueError {}

fn err(message: impl Into<String>) -> ParseValueError {
    ParseValueError {
        message: message.into(),
    }
}

struct Cursor<'a> {
    chars: Peekable<Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.next_if(|c| c.is_whitespace()).is_some() {}
    }

    fn parse_value(&mut self) -> Result<Value, ParseValueError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            None => Err(err("empty input")),
            Some('"') => self.parse_string(),
            Some('[') => self.parse_list(),
            Some('&') => self.parse_obj(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() => self.parse_word(),
            Some(c) => Err(err(format!("unexpected character `{c}`"))),
        }
    }

    fn parse_word(&mut self) -> Result<Value, ParseValueError> {
        let mut w = String::new();
        while let Some(c) = self.chars.next_if(|c| c.is_ascii_alphanumeric()) {
            w.push(c);
        }
        match w.as_str() {
            "NULL" => Ok(Value::Null),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "inf" => Ok(Value::Float(f64::INFINITY)),
            "NaN" => Ok(Value::Float(f64::NAN)),
            other => Err(err(format!("unknown word `{other}`"))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseValueError> {
        let mut s = String::new();
        let mut is_float = false;
        if let Some(c) = self.chars.next_if(|c| *c == '-' || *c == '+') {
            s.push(c);
        }
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.chars.next();
            } else if c == '.' || c == 'e' || c == 'E' {
                is_float = true;
                s.push(c);
                self.chars.next();
                if (c == 'e' || c == 'E') && matches!(self.chars.peek(), Some('+') | Some('-')) {
                    if let Some(sign) = self.chars.next() {
                        s.push(sign);
                    }
                }
            } else {
                break;
            }
        }
        // `inf`/`NaN` renderings from f64::to_string.
        if matches!(self.chars.peek(), Some('i') | Some('N')) {
            let rest: String = self.chars.clone().collect();
            if rest.starts_with("inf") {
                for _ in 0..3 {
                    self.chars.next();
                }
                let sign = if s.starts_with('-') { -1.0 } else { 1.0 };
                return Ok(Value::Float(sign * f64::INFINITY));
            }
            if rest.starts_with("NaN") {
                for _ in 0..3 {
                    self.chars.next();
                }
                return Ok(Value::Float(f64::NAN));
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err(format!("bad float `{s}`")))
        } else {
            s.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| err(format!("bad integer `{s}`")))
        }
    }

    fn parse_string(&mut self) -> Result<Value, ParseValueError> {
        self.chars.next(); // opening quote
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err(err("unterminated string")),
                Some('"') => return Ok(Value::Str(out)),
                Some('\\') => match self.chars.next() {
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('\'') => out.push('\''),
                    Some('0') => out.push('\0'),
                    Some('u') => {
                        if self.chars.next() != Some('{') {
                            return Err(err("bad unicode escape"));
                        }
                        let mut hex = String::new();
                        loop {
                            match self.chars.next() {
                                Some('}') => break,
                                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                                _ => return Err(err("bad unicode escape")),
                            }
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| err("bad unicode escape"))?;
                        out.push(cp);
                    }
                    other => return Err(err(format!("bad escape `\\{}`", other.unwrap_or(' ')))),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_list(&mut self) -> Result<Value, ParseValueError> {
        self.chars.next(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.next_if(|c| *c == ']').is_some() {
            return Ok(Value::List(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some(']') => return Ok(Value::List(items)),
                _ => return Err(err("expected `,` or `]` in list")),
            }
        }
    }

    fn parse_obj(&mut self) -> Result<Value, ParseValueError> {
        self.chars.next(); // '&'
        let mut class = String::new();
        while let Some(c) = self.chars.next_if(|c| *c != ':') {
            class.push(c);
        }
        if self.chars.next() != Some(':') {
            return Err(err("object reference needs `:`"));
        }
        // The key runs to the next list/structure delimiter (keys may
        // therefore not contain `,` or `]`; see `ObjRef` docs).
        let mut key = String::new();
        while let Some(c) = self.chars.next_if(|c| !matches!(c, ',' | ']')) {
            key.push(c);
        }
        if class.is_empty() {
            return Err(err("empty object class"));
        }
        Ok(Value::Obj(ObjRef::new(class, key)))
    }
}

/// Parses the textual literal form produced by [`Value::to_literal`].
///
/// # Errors
///
/// Returns [`ParseValueError`] on malformed input or trailing garbage.
///
/// # Examples
///
/// ```
/// use concat_runtime::{parse_value_literal, Value};
///
/// let v = Value::List(vec![Value::Int(1), Value::Str("a".into())]);
/// assert_eq!(parse_value_literal(&v.to_literal()), Ok(v));
/// ```
pub fn parse_value_literal(s: &str) -> Result<Value, ParseValueError> {
    let mut cur = Cursor::new(s);
    let v = cur.parse_value()?;
    cur.skip_ws();
    if cur.chars.next().is_some() {
        return Err(err("trailing characters after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let text = v.to_literal();
        let back = parse_value_literal(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(back, v, "literal was {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Int(0));
        round_trip(Value::Int(-42));
        round_trip(Value::Int(i64::MAX));
        round_trip(Value::Int(i64::MIN));
        round_trip(Value::Float(2.0));
        round_trip(Value::Float(-0.125));
        round_trip(Value::Float(1e300));
    }

    #[test]
    fn strings_round_trip_with_escapes() {
        round_trip(Value::Str(String::new()));
        round_trip(Value::Str("Mary".into()));
        round_trip(Value::Str("line\nbreak\tand \"quotes\" and \\".into()));
        round_trip(Value::Str("unicode: é λ 中".into()));
    }

    #[test]
    fn objects_round_trip() {
        round_trip(Value::Obj(ObjRef::new("Provider", "p1")));
        round_trip(Value::Obj(ObjRef::new("Node", "key with spaces")));
    }

    #[test]
    fn lists_round_trip_nested() {
        round_trip(Value::List(vec![]));
        round_trip(Value::List(vec![
            Value::Int(1),
            Value::Str("a,b]".into()),
            Value::List(vec![Value::Null, Value::Obj(ObjRef::new("P", "k"))]),
        ]));
    }

    #[test]
    fn special_floats() {
        round_trip(Value::Float(f64::INFINITY));
        round_trip(Value::Float(f64::NEG_INFINITY));
        // NaN != NaN, so compare structurally.
        let back = parse_value_literal(&Value::Float(f64::NAN).to_literal()).unwrap();
        match back {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value_literal("").is_err());
        assert!(parse_value_literal("nope").is_err());
        assert!(parse_value_literal("\"open").is_err());
        assert!(parse_value_literal("[1, 2").is_err());
        assert!(parse_value_literal("1 trailing").is_err());
        assert!(parse_value_literal("&:key").is_err());
        assert!(parse_value_literal("@wat").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            parse_value_literal("  [ 1 , 2 ]  ").unwrap(),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
