//! # concat-runtime
//!
//! Dynamic invocation runtime for self-testable components.
//!
//! This crate is the foundation of the `concat-rs` workspace, a Rust
//! reproduction of *"Constructing Self-Testable Software Components"*
//! (Martins, Toyota & Yanagawa, DSN 2001). The paper's Concat prototype
//! generates C++ test drivers and relies on the C++ compiler to bind the
//! generated calls to the component under test. Rust has no runtime
//! reflection, so this crate provides the macro/trait-based workaround:
//!
//! * [`Value`] — dynamically typed arguments and return values covering the
//!   parameter kinds a t-spec can declare;
//! * [`Component`] — name-based method dispatch, so generated test cases can
//!   drive any component;
//! * [`TestException`] — the uniform set of exceptional outcomes (assertion
//!   violations, arity/type errors, domain errors, caught panics) that the
//!   driver and the mutation-analysis kill classifier consume.
//!
//! # Examples
//!
//! ```
//! use concat_runtime::{args, Component, InvokeResult, Value, unknown_method};
//!
//! struct Cell { v: i64 }
//! impl Component for Cell {
//!     fn class_name(&self) -> &'static str { "Cell" }
//!     fn method_names(&self) -> Vec<&'static str> { vec!["Set", "Get"] }
//!     fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
//!         match m {
//!             "Set" => { self.v = args::int(m, a, 0)?; Ok(Value::Null) }
//!             "Get" => Ok(Value::Int(self.v)),
//!             _ => Err(unknown_method(self.class_name(), m)),
//!         }
//!     }
//! }
//!
//! let mut c = Cell { v: 0 };
//! c.invoke("Set", &[Value::Int(9)]).unwrap();
//! assert_eq!(c.invoke("Get", &[]).unwrap(), Value::Int(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod atomic_io;
mod clock;
mod component;
mod corpus;
mod error;
mod frame;
mod harden;
mod literal;
mod rng;
mod supervise;
mod value;

pub use atomic_io::{
    crc32, recover_journal, scan_journal, write_atomic, AtomicFile, Journal, JournalScan,
};
pub use clock::monotonic_nanos;
pub use component::{args, unknown_method, Component};
pub use corpus::{CorpusEntry, CorpusLoad, CorpusStore};
pub use error::{AssertionKind, AssertionViolation, InvokeResult, TestException};
pub use frame::{encode_frame, FrameDecoder};
pub use harden::{
    is_transient_io, recommended_workers, Budget, BudgetResource, CancelToken, FaultInjector,
    FaultKind, InjectedFault, IoAttempt, IoPolicy, RetryPolicy, Watchdog, DEADLINE_PANIC_PAYLOAD,
};
pub use literal::{parse_value_literal, ParseValueError};
pub use rng::Rng;
pub use supervise::{classify_exit, terminate_child, wait_with_deadline, ExitClass, Liveness};
pub use value::{ObjRef, Value, ValueKind};
