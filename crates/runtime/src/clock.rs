//! A process-wide monotonic clock for trace timestamps.
//!
//! Span durations are measured with per-span [`std::time::Instant`]s, but
//! a causal trace (the flight recorder's Chrome-trace export) needs every
//! event stamped against one shared epoch so spans from different threads
//! line up on a common timeline. The epoch is the first call in the
//! process; all subsequent readings are nanoseconds since then.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (the first call to this
/// function). Monotonic, thread-safe, and consistent across threads —
/// two readings ordered by happens-before are ordered numerically.
pub fn monotonic_nanos() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }

    #[test]
    fn readings_advance_with_time() {
        let a = monotonic_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = monotonic_nanos();
        assert!(b > a, "clock must advance: {a} -> {b}");
    }
}
