//! The dynamic component interface: name-based method dispatch.
//!
//! This is the Rust substitute for the C++ compile-the-generated-driver
//! step of the paper (see DESIGN.md §2). A [`Component`] exposes its public
//! features by name; generated test cases invoke them with [`Value`]
//! arguments. The [`args`] module provides checked extraction helpers so
//! component implementations stay terse and produce uniform
//! [`TestException`]s.

use crate::error::{InvokeResult, TestException};
use crate::value::{ObjRef, Value, ValueKind};

/// A component under test, invocable by method name.
///
/// Implementations are usually produced through a factory (one instance per
/// test case, created by the constructor the transaction starts with and
/// destroyed at the end of the transaction).
///
/// # Examples
///
/// ```
/// use concat_runtime::{args, Component, InvokeResult, TestException, Value};
///
/// struct Counter { n: i64 }
///
/// impl Component for Counter {
///     fn class_name(&self) -> &'static str { "Counter" }
///     fn method_names(&self) -> Vec<&'static str> { vec!["Add", "Total"] }
///     fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
///         match method {
///             "Add" => { self.n += args::int(method, a, 0)?; Ok(Value::Null) }
///             "Total" => Ok(Value::Int(self.n)),
///             _ => Err(TestException::UnknownMethod {
///                 class_name: "Counter".into(), method: method.into(),
///             }),
///         }
///     }
/// }
///
/// let mut c = Counter { n: 0 };
/// c.invoke("Add", &[Value::Int(4)]).unwrap();
/// assert_eq!(c.invoke("Total", &[]).unwrap(), Value::Int(4));
/// ```
pub trait Component {
    /// The class name this component publishes in its t-spec.
    fn class_name(&self) -> &'static str;

    /// Invokes a public method by name.
    ///
    /// # Errors
    ///
    /// Returns a [`TestException`] when the method is unknown, the arguments
    /// do not match, a contract assertion fires, or the method detects a
    /// domain error.
    fn invoke(&mut self, method: &str, args: &[Value]) -> InvokeResult;

    /// Names of the invocable public methods, for introspection and
    /// specification-conformance checks.
    fn method_names(&self) -> Vec<&'static str>;

    /// Returns `true` if `method` is part of the public interface.
    fn has_method(&self, method: &str) -> bool {
        self.method_names().contains(&method)
    }
}

/// Checked argument extraction used by [`Component::invoke`] implementations.
///
/// Every helper returns the uniform [`TestException`] variants so drivers can
/// classify failures without knowing the component.
pub mod args {
    use super::*;

    /// Requires exactly `expected` arguments.
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] when the count differs.
    pub fn expect_arity(
        method: &str,
        args: &[Value],
        expected: usize,
    ) -> Result<(), TestException> {
        if args.len() == expected {
            Ok(())
        } else {
            Err(TestException::ArityMismatch {
                method: method.to_owned(),
                expected,
                got: args.len(),
            })
        }
    }

    fn get<'a>(method: &str, args: &'a [Value], index: usize) -> Result<&'a Value, TestException> {
        args.get(index).ok_or_else(|| TestException::ArityMismatch {
            method: method.to_owned(),
            expected: index + 1,
            got: args.len(),
        })
    }

    fn mismatch(method: &str, index: usize, expected: ValueKind, got: ValueKind) -> TestException {
        TestException::TypeMismatch {
            method: method.to_owned(),
            index,
            expected,
            got,
        }
    }

    /// Extracts argument `index` as an integer.
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing,
    /// [`TestException::TypeMismatch`] if not an `Int`.
    pub fn int(method: &str, args: &[Value], index: usize) -> Result<i64, TestException> {
        let v = get(method, args, index)?;
        v.as_int()
            .map_err(|got| mismatch(method, index, ValueKind::Int, got))
    }

    /// Extracts argument `index` as a float (ints widen).
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing,
    /// [`TestException::TypeMismatch`] if not numeric.
    pub fn float(method: &str, args: &[Value], index: usize) -> Result<f64, TestException> {
        let v = get(method, args, index)?;
        v.as_float()
            .map_err(|got| mismatch(method, index, ValueKind::Float, got))
    }

    /// Extracts argument `index` as a string.
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing,
    /// [`TestException::TypeMismatch`] if not a `Str`.
    pub fn str<'a>(
        method: &str,
        args: &'a [Value],
        index: usize,
    ) -> Result<&'a str, TestException> {
        let v = get(method, args, index)?;
        v.as_str()
            .map_err(|got| mismatch(method, index, ValueKind::Str, got))
    }

    /// Extracts argument `index` as a boolean.
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing,
    /// [`TestException::TypeMismatch`] if not a `Bool`.
    pub fn bool(method: &str, args: &[Value], index: usize) -> Result<bool, TestException> {
        let v = get(method, args, index)?;
        v.as_bool()
            .map_err(|got| mismatch(method, index, ValueKind::Bool, got))
    }

    /// Extracts argument `index` as an object reference; `Null` is allowed
    /// and maps to `None` (the paper passes nullable `Provider*` pointers).
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing,
    /// [`TestException::TypeMismatch`] if neither `Obj` nor `Null`.
    pub fn obj_opt<'a>(
        method: &str,
        args: &'a [Value],
        index: usize,
    ) -> Result<Option<&'a ObjRef>, TestException> {
        let v = get(method, args, index)?;
        match v {
            Value::Null => Ok(None),
            Value::Obj(r) => Ok(Some(r)),
            other => Err(mismatch(method, index, ValueKind::Obj, other.kind())),
        }
    }

    /// Extracts argument `index` as any value (clone).
    ///
    /// # Errors
    ///
    /// [`TestException::ArityMismatch`] if missing.
    pub fn any(method: &str, args: &[Value], index: usize) -> Result<Value, TestException> {
        get(method, args, index).cloned()
    }
}

/// Builds the canonical [`TestException::UnknownMethod`] for a dispatch miss.
pub fn unknown_method(class_name: &str, method: &str) -> TestException {
    TestException::UnknownMethod {
        class_name: class_name.to_owned(),
        method: method.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Component for Echo {
        fn class_name(&self) -> &'static str {
            "Echo"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Echo"]
        }
        fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
            match method {
                "Echo" => args::any(method, a, 0),
                _ => Err(unknown_method(self.class_name(), method)),
            }
        }
    }

    #[test]
    fn has_method_uses_method_names() {
        let e = Echo;
        assert!(e.has_method("Echo"));
        assert!(!e.has_method("Nope"));
    }

    #[test]
    fn dispatch_miss_produces_unknown_method() {
        let mut e = Echo;
        let err = e.invoke("Nope", &[]).unwrap_err();
        assert_eq!(err.tag(), "UNKNOWN_METHOD");
    }

    #[test]
    fn expect_arity_checks_count() {
        assert!(args::expect_arity("m", &[Value::Int(1)], 1).is_ok());
        let err = args::expect_arity("m", &[], 2).unwrap_err();
        assert_eq!(err.tag(), "ARITY");
    }

    #[test]
    fn int_extraction_and_type_mismatch() {
        assert_eq!(args::int("m", &[Value::Int(5)], 0).unwrap(), 5);
        let err = args::int("m", &[Value::Str("x".into())], 0).unwrap_err();
        assert_eq!(err.tag(), "TYPE");
        let err = args::int("m", &[], 0).unwrap_err();
        assert_eq!(err.tag(), "ARITY");
    }

    #[test]
    fn float_accepts_int() {
        assert_eq!(args::float("m", &[Value::Int(2)], 0).unwrap(), 2.0);
    }

    #[test]
    fn str_and_bool_extraction() {
        assert_eq!(args::str("m", &[Value::Str("a".into())], 0).unwrap(), "a");
        assert!(args::bool("m", &[Value::Bool(true)], 0).unwrap());
        assert_eq!(
            args::bool("m", &[Value::Null], 0).unwrap_err().tag(),
            "TYPE"
        );
    }

    #[test]
    fn obj_opt_allows_null() {
        assert_eq!(args::obj_opt("m", &[Value::Null], 0).unwrap(), None);
        let r = ObjRef::new("Provider", "p");
        assert_eq!(
            args::obj_opt("m", &[Value::Obj(r.clone())], 0).unwrap(),
            Some(&r)
        );
        assert_eq!(
            args::obj_opt("m", &[Value::Int(1)], 0).unwrap_err().tag(),
            "TYPE"
        );
    }
}
