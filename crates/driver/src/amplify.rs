//! Candidate synthesis for mutation-driven test amplification.
//!
//! The amplification loop (in `concat-mutation`) asks the generator for
//! *targeted* candidate cases aimed at the features (interface methods)
//! whose mutants survived the current suite. Three complementary
//! strategies are combined per round:
//!
//! 1. **boundary** — re-generate the covering suite drawing every
//!    argument from its domain's boundary set (min/max of ranges,
//!    empty/max-length collections) via
//!    [`GeneratorConfig::boundary_inputs`];
//! 2. **re-seed** — a fresh uniform draw under a round-derived seed, so
//!    each round explores new argument values;
//! 3. **deeper paths** — raise the TFM cycle bound by one and generate
//!    only the longest transactions that traverse a surviving feature,
//!    exercising the mutated method in longer call contexts.
//!
//! Candidates that cannot reach any surviving feature are dropped at the
//! source (the same static coverage argument the selection fast path
//! uses), duplicates of existing or earlier candidate cases are removed,
//! and ids are renumbered to continue after the existing suite so an
//! amplified suite remains a well-formed [`TestSuite`].

use crate::generator::{DriverGenerator, Expansion, GenerateError, GeneratorConfig};
use crate::inputs::InputGenerator;
use crate::testcase::{TestCase, TestSuite};
use concat_tfm::{enumerate_transactions_with, EnumerationConfig};
use concat_tspec::ClassSpec;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Mixes the round number into the base seed so every amplification
/// round draws fresh values, deterministically per (seed, round).
fn round_seed(base: u64, round: usize) -> u64 {
    base ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// How many feature-traversing transactions the deeper-path strategy
/// expands per round (the longest ones are preferred).
const DEEPER_TRANSACTIONS: usize = 6;

/// The outcome of one round of candidate synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSynthesis {
    /// Deduplicated candidate cases, ids numbered after the existing
    /// suite's largest id. `transaction_index` values of deeper-path
    /// candidates refer to the widened (cycle bound + 1) enumeration.
    pub suite: TestSuite,
    /// Candidates contributed by the boundary-value strategy.
    pub from_boundary: usize,
    /// Candidates contributed by the re-seeded uniform strategy.
    pub from_reseed: usize,
    /// Candidates contributed by the deeper-path strategy.
    pub from_deeper: usize,
}

/// Synthesizes up to `max_candidates` targeted candidate cases for the
/// given surviving `features`, deterministic per (spec, base config,
/// existing suite, features, round).
///
/// `configure` is applied to each strategy's [`InputGenerator`] before
/// generation — register object providers there.
///
/// # Errors
///
/// Propagates [`GenerateError`] from the underlying generator runs.
pub fn synthesize_candidates(
    spec: &ClassSpec,
    base: GeneratorConfig,
    existing: &TestSuite,
    features: &[String],
    round: usize,
    max_candidates: usize,
    configure: impl Fn(&mut InputGenerator),
) -> Result<CandidateSynthesis, GenerateError> {
    let seed = round_seed(base.seed, round);
    let generate = |config: GeneratorConfig, selection: Option<&[usize]>| {
        let mut generator = DriverGenerator::new(config);
        configure(generator.inputs_mut());
        generator.generate_selected(spec, selection)
    };

    let boundary = generate(
        GeneratorConfig {
            seed,
            expansion: Expansion::Covering { repeats: 1 },
            boundary_inputs: true,
            ..base
        },
        None,
    )?;
    let reseed = generate(
        GeneratorConfig {
            seed: seed ^ 0x5EED_5EED,
            ..base
        },
        None,
    )?;
    let deeper_config = GeneratorConfig {
        seed: seed ^ 0xD00D,
        cycle_bound: base.cycle_bound + 1,
        expansion: Expansion::Covering { repeats: 1 },
        ..base
    };
    let deeper_selection = feature_transactions(spec, deeper_config, features);
    let deeper = if deeper_selection.is_empty() {
        None
    } else {
        Some(generate(deeper_config, Some(&deeper_selection))?)
    };

    let mut seen: BTreeSet<String> = existing.iter().map(signature).collect();
    let mut next_id = existing.iter().map(|c| c.id + 1).max().unwrap_or(0);
    let mut cases = Vec::new();
    let mut counts = [0usize; 3];
    let sources = [(0, Some(boundary)), (1, Some(reseed)), (2, deeper)];
    for (strategy, source) in sources {
        let Some(suite) = source else { continue };
        for case in &suite {
            if cases.len() >= max_candidates {
                break;
            }
            let touches_feature = case
                .method_names()
                .iter()
                .any(|m| features.iter().any(|f| f == m));
            if !touches_feature || !seen.insert(signature(case)) {
                continue;
            }
            let mut candidate = case.clone();
            candidate.id = next_id;
            next_id += 1;
            counts[strategy] += 1;
            cases.push(candidate);
        }
    }

    let mut stats = existing.stats;
    stats.cases = cases.len();
    stats.manual_args = cases.iter().filter(|c| c.needs_manual_completion()).count();
    Ok(CandidateSynthesis {
        suite: TestSuite {
            class_name: spec.class_name.clone(),
            seed,
            cases,
            stats,
        },
        from_boundary: counts[0],
        from_reseed: counts[1],
        from_deeper: counts[2],
    })
}

/// The outcome of replaying persisted corpus cases as amplification
/// candidates (see [`corpus_candidates`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReplay {
    /// Deduplicated feature-touching candidate cases, ids numbered after
    /// the existing suite's largest id.
    pub suite: TestSuite,
    /// Payloads that did not parse as a persisted suite (skipped, never
    /// fatal: a corpus survives format drift by losing entries, not by
    /// failing the campaign).
    pub rejected: usize,
}

/// Replays corpus payloads — each the [`crate::save_suite`] text of a
/// previously deposited killer case — as amplification candidates for
/// the surviving `features`. Cases that cannot reach a surviving feature
/// are dropped, duplicates of existing or earlier corpus cases are
/// removed, and ids are renumbered to continue after the existing suite,
/// mirroring [`synthesize_candidates`]. Deterministic: payload order is
/// the corpus's deposit order.
pub fn corpus_candidates(
    existing: &TestSuite,
    payloads: &[String],
    features: &[String],
    max_candidates: usize,
) -> CorpusReplay {
    let mut seen: BTreeSet<String> = existing.iter().map(signature).collect();
    let mut next_id = existing.iter().map(|c| c.id + 1).max().unwrap_or(0);
    let mut cases = Vec::new();
    let mut rejected = 0usize;
    for payload in payloads {
        let Ok(stored) = crate::persist::load_suite(payload) else {
            rejected += 1;
            continue;
        };
        for case in &stored {
            if cases.len() >= max_candidates {
                break;
            }
            let touches_feature = case
                .method_names()
                .iter()
                .any(|m| features.iter().any(|f| f == m));
            if !touches_feature || !seen.insert(signature(case)) {
                continue;
            }
            let mut candidate = case.clone();
            candidate.id = next_id;
            next_id += 1;
            cases.push(candidate);
        }
    }
    let mut stats = existing.stats;
    stats.cases = cases.len();
    stats.manual_args = cases.iter().filter(|c| c.needs_manual_completion()).count();
    CorpusReplay {
        suite: TestSuite {
            class_name: existing.class_name.clone(),
            seed: existing.seed,
            cases,
            stats,
        },
        rejected,
    }
}

/// Indices (in the widened enumeration of `config`) of the longest
/// transactions that traverse at least one of `features`, capped at
/// [`DEEPER_TRANSACTIONS`]; returned in ascending index order.
fn feature_transactions(
    spec: &ClassSpec,
    config: GeneratorConfig,
    features: &[String],
) -> Vec<usize> {
    let set = enumerate_transactions_with(
        &spec.tfm,
        EnumerationConfig {
            cycle_bound: config.cycle_bound,
            max_transactions: config.max_transactions,
        },
    );
    let mut matching: Vec<(usize, usize)> = set
        .iter()
        .enumerate()
        .filter(|(_, txn)| {
            txn.nodes.iter().any(|id| {
                spec.tfm.node(*id).methods.iter().any(|method_id| {
                    spec.method(method_id)
                        .is_some_and(|m| features.contains(&m.name))
                })
            })
        })
        .map(|(index, txn)| (index, txn.nodes.len()))
        .collect();
    matching.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    matching.truncate(DEEPER_TRANSACTIONS);
    let mut indices: Vec<usize> = matching.into_iter().map(|(index, _)| index).collect();
    indices.sort_unstable();
    indices
}

/// Behavioural identity of a case for deduplication: methods and
/// argument values, ignoring ids and argument origins.
fn signature(case: &TestCase) -> String {
    let mut s = format!("{}{:?}", case.constructor.method, case.constructor.args);
    for call in &case.calls {
        let _ = write!(s, "|{}{:?}", call.method, call.args);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_tspec::{ClassSpecBuilder, Domain, MethodCategory};

    fn spec() -> ClassSpec {
        ClassSpecBuilder::new("Counter")
            .constructor("m1", "Counter")
            .method("m2", "Add", MethodCategory::Update)
            .param("q", Domain::int_range(0, 9))
            .method("m3", "Reset", MethodCategory::Update)
            .destructor("m4", "~Counter")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .task_node("n3", ["m3"])
            .death_node("n4", ["m4"])
            .edge("n1", "n2")
            .edge("n2", "n2")
            .edge("n2", "n3")
            .edge("n2", "n4")
            .edge("n3", "n4")
            .edge("n1", "n4")
            .build()
            .unwrap()
    }

    fn base_suite() -> TestSuite {
        DriverGenerator::with_seed(7).generate(&spec()).unwrap()
    }

    #[test]
    fn candidates_target_features_and_renumber() {
        let existing = base_suite();
        let next_id = existing.cases.iter().map(|c| c.id + 1).max().unwrap();
        let out = synthesize_candidates(
            &spec(),
            GeneratorConfig {
                seed: 7,
                ..GeneratorConfig::default()
            },
            &existing,
            &["Add".to_owned()],
            1,
            64,
            |_| {},
        )
        .unwrap();
        assert!(!out.suite.cases.is_empty());
        for (offset, case) in out.suite.iter().enumerate() {
            assert_eq!(case.id, next_id + offset);
            assert!(case.method_names().contains(&"Add"));
        }
        assert_eq!(
            out.from_boundary + out.from_reseed + out.from_deeper,
            out.suite.len()
        );
    }

    #[test]
    fn boundary_values_present_among_candidates() {
        let out = synthesize_candidates(
            &spec(),
            GeneratorConfig::default(),
            &base_suite(),
            &["Add".to_owned()],
            1,
            256,
            |_| {},
        )
        .unwrap();
        let args: Vec<i64> = out
            .suite
            .iter()
            .flat_map(|c| &c.calls)
            .filter(|call| call.method == "Add")
            .filter_map(|call| call.args[0].as_int().ok())
            .collect();
        assert!(
            args.contains(&0) || args.contains(&9),
            "boundary draws reach range ends: {args:?}"
        );
        assert!(args.iter().all(|v| (0..=9).contains(v)));
    }

    #[test]
    fn deterministic_per_round_and_distinct_across_rounds() {
        let existing = base_suite();
        let features = ["Add".to_owned()];
        let run = |round| {
            synthesize_candidates(
                &spec(),
                GeneratorConfig::default(),
                &existing,
                &features,
                round,
                64,
                |_| {},
            )
            .unwrap()
        };
        assert_eq!(run(1), run(1));
        let (one, two) = (run(1), run(2));
        assert_ne!(one.suite.seed, two.suite.seed);
    }

    #[test]
    fn duplicates_of_existing_cases_are_dropped() {
        let existing = base_suite();
        // Synthesizing against an existing suite that already contains
        // every candidate (same seed derivation) yields nothing new.
        let first = synthesize_candidates(
            &spec(),
            GeneratorConfig::default(),
            &existing,
            &["Add".to_owned()],
            1,
            256,
            |_| {},
        )
        .unwrap();
        let mut amplified = existing.clone();
        amplified.cases.extend(first.suite.cases.iter().cloned());
        let second = synthesize_candidates(
            &spec(),
            GeneratorConfig::default(),
            &amplified,
            &["Add".to_owned()],
            1,
            256,
            |_| {},
        )
        .unwrap();
        assert!(second.suite.cases.is_empty(), "{:?}", second.suite.cases);
    }

    #[test]
    fn corpus_candidates_filter_dedup_and_renumber() {
        let existing = base_suite();
        let next_id = existing.cases.iter().map(|c| c.id + 1).max().unwrap();
        // A deposited killer case is the save_suite text of a one-case
        // suite; replay one that touches the feature, one that doesn't,
        // one duplicate of an existing case, and one garbage payload.
        let one_case = |case: &TestCase| {
            let mut suite = existing.clone();
            suite.cases = vec![case.clone()];
            suite.stats.cases = 1;
            crate::persist::save_suite(&suite)
        };
        let touching = existing
            .iter()
            .find(|c| c.method_names().contains(&"Add"))
            .unwrap();
        let mut fresh = touching.clone();
        fresh.calls[0].args = vec![concat_runtime::Value::Int(8)];
        let payloads = vec![
            one_case(&fresh),
            one_case(touching),
            "not a suite\n".to_owned(),
        ];
        let replay = corpus_candidates(&existing, &payloads, &["Add".to_owned()], 64);
        assert_eq!(replay.rejected, 1);
        assert_eq!(replay.suite.len(), 1, "duplicate of existing dropped");
        assert_eq!(replay.suite.cases[0].id, next_id);
        assert!(replay.suite.cases[0].method_names().contains(&"Add"));
        // A feature no corpus case touches yields nothing.
        let replay = corpus_candidates(&existing, &payloads, &["Nope".to_owned()], 64);
        assert!(replay.suite.cases.is_empty());
        assert_eq!(replay.rejected, 1);
    }

    #[test]
    fn unknown_feature_yields_no_candidates() {
        let out = synthesize_candidates(
            &spec(),
            GeneratorConfig::default(),
            &base_suite(),
            &["Nope".to_owned()],
            1,
            64,
            |_| {},
        )
        .unwrap();
        assert!(out.suite.cases.is_empty());
    }
}
