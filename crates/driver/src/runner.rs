//! Test execution: the specific driver of the paper.
//!
//! The generated driver (Figure 6) creates the object, checks the class
//! invariant before and after every call, logs progress into `Result.txt`,
//! captures exceptions, and dumps the reporter state at the end. The
//! [`TestRunner`] reproduces that behaviour and additionally records a full
//! [`Transcript`] per case so the mutation oracle can compare runs.

use crate::coverage::CoverageMatrix;
use crate::log::TestLog;
use crate::testcase::{TestCase, TestSuite};
use concat_bit::{BitControl, ComponentFactory, StateReport};
use concat_obs::{SpanId, Telemetry};
use concat_runtime::{
    Budget, BudgetResource, CancelToken, TestException, Value, Watchdog, DEADLINE_PANIC_PAYLOAD,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one method invocation, as recorded in the transcript.
#[derive(Debug, Clone, PartialEq)]
pub enum CallOutcome {
    /// The call returned a value (possibly `Null`).
    Returned(Value),
    /// The call raised a [`TestException`]; tag and message are recorded.
    Raised {
        /// The exception's machine tag (`INVARIANT`, `PANIC`, …).
        tag: String,
        /// Human-readable description.
        message: String,
    },
}

impl CallOutcome {
    /// True when the call completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, CallOutcome::Returned(_))
    }
}

/// One line of a transcript: the call and what it did.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Rendered call, e.g. `UpdateQty(5)`.
    pub call: String,
    /// What happened.
    pub outcome: CallOutcome,
}

/// Everything observable about one test case execution.
///
/// Two runs are behaviourally indistinguishable exactly when their
/// transcripts are equal — this is the oracle's comparison unit (crash,
/// exception, output and final state all participate).
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Per-call records in execution order (constructor first).
    pub records: Vec<CallRecord>,
    /// Reporter snapshot at the end of the case (absent if the object was
    /// never successfully constructed or the case panicked).
    pub final_report: Option<StateReport>,
}

/// Terminal status of one test case.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseStatus {
    /// Every call completed; the paper logs `TestCase<id> OK!`.
    Passed,
    /// An assertion (invariant / pre / post) fired — the partial oracle
    /// detected an error.
    AssertionViolated {
        /// The violated assertion's message.
        message: String,
        /// The call after which it fired.
        at_call: usize,
    },
    /// A non-assertion exception was raised.
    ExceptionRaised {
        /// Exception tag.
        tag: String,
        /// Exception message.
        message: String,
        /// The call that raised.
        at_call: usize,
    },
    /// The component panicked (the paper's "program crashed").
    Panicked {
        /// Rendered panic payload.
        message: String,
        /// The call that panicked.
        at_call: usize,
    },
    /// The case hit its wall-clock deadline: the watchdog cancelled the
    /// execution and a cooperative checkpoint unwound it. A verdict, not
    /// a crash — mutation analysis quarantines rather than kills on it.
    DeadlineExceeded {
        /// The call that was interrupted (or about to run).
        at_call: usize,
    },
    /// The case ran out of a budgeted resource (calls, transcript bytes).
    BudgetExhausted {
        /// Which resource ran out.
        resource: BudgetResource,
        /// The call at which the budget tripped.
        at_call: usize,
    },
}

impl CaseStatus {
    /// True for [`CaseStatus::Passed`].
    pub fn is_pass(&self) -> bool {
        matches!(self, CaseStatus::Passed)
    }

    /// True when the failure came from the BIT partial oracle.
    pub fn is_assertion(&self) -> bool {
        matches!(self, CaseStatus::AssertionViolated { .. })
    }

    /// True when the harness (not the component) terminated the case:
    /// deadline or budget. Such outcomes describe the execution
    /// environment, so the oracle must not treat them as behaviour.
    pub fn is_harness_stop(&self) -> bool {
        matches!(
            self,
            CaseStatus::DeadlineExceeded { .. } | CaseStatus::BudgetExhausted { .. }
        )
    }
}

impl fmt::Display for CaseStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseStatus::Passed => f.write_str("OK"),
            CaseStatus::AssertionViolated { message, .. } => {
                write!(f, "assertion violated: {message}")
            }
            CaseStatus::ExceptionRaised { tag, message, .. } => {
                write!(f, "exception [{tag}]: {message}")
            }
            CaseStatus::Panicked { message, .. } => write!(f, "panicked: {message}"),
            CaseStatus::DeadlineExceeded { at_call } => {
                write!(f, "deadline exceeded at call {at_call}")
            }
            CaseStatus::BudgetExhausted { resource, at_call } => {
                write!(f, "budget exhausted ({resource}) at call {at_call}")
            }
        }
    }
}

/// Result of one executed test case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Id of the executed case.
    pub case_id: usize,
    /// Terminal status.
    pub status: CaseStatus,
    /// Full transcript for oracle comparison.
    pub transcript: Transcript,
}

/// Result of a suite execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Class under test.
    pub class_name: String,
    /// Per-case results, in suite order.
    pub cases: Vec<CaseResult>,
    /// Harness-level annotations: deadline/budget stops, degraded I/O.
    /// Empty for a fully clean run; reports surface these verbatim.
    pub notes: Vec<String>,
}

impl SuiteResult {
    /// Number of passed cases.
    pub fn passed(&self) -> usize {
        self.cases.iter().filter(|c| c.status.is_pass()).count()
    }

    /// Number of failed cases (any non-pass status).
    pub fn failed(&self) -> usize {
        self.cases.len() - self.passed()
    }

    /// Number of failures attributable to assertion violations.
    pub fn assertion_failures(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.status.is_assertion())
            .count()
    }

    /// Number of cases the harness stopped (deadline/budget).
    pub fn harness_stops(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.status.is_harness_stop())
            .count()
    }

    /// Appends a harness note (degraded I/O, etc.).
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

/// Executes test suites against a component factory.
///
/// # Examples
///
/// See the crate-level documentation of `concat-driver` for an end-to-end
/// generate→run example.
#[derive(Debug)]
pub struct TestRunner {
    ctl: BitControl,
    check_invariants: bool,
    telemetry: Telemetry,
    budget: Budget,
    token: CancelToken,
    watchdog: Option<Watchdog>,
}

impl TestRunner {
    /// Creates a runner that puts components in test mode and checks the
    /// class invariant around every call (the Figure-6 behaviour).
    pub fn new() -> Self {
        TestRunner {
            ctl: BitControl::new_enabled(),
            check_invariants: true,
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
            token: CancelToken::new(),
            watchdog: None,
        }
    }

    /// Creates a runner with BIT disabled — the assertions-off ablation.
    pub fn without_bit() -> Self {
        TestRunner {
            ctl: BitControl::new(),
            check_invariants: false,
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
            token: CancelToken::new(),
            watchdog: None,
        }
    }

    /// Applies per-case execution limits. When the budget carries a
    /// wall-clock deadline a watchdog thread is started; it cancels the
    /// runner's [`CancelToken`] at the deadline, and cooperative
    /// checkpoints (the mutation switch's read sites, or a component's own
    /// [`CancelToken::checkpoint`] calls) unwind the hung execution back
    /// to the `catch_unwind` boundary, where the case is classified
    /// [`CaseStatus::DeadlineExceeded`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self.watchdog = budget.deadline.map(|_| Watchdog::spawn());
        self
    }

    /// The per-case budget (unlimited unless [`TestRunner::with_budget`]).
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The cancellation token the watchdog trips at the deadline. Share
    /// it with anything that should stop when a case overruns — the
    /// mutation harness hands it to its `MutationSwitch`.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.token
    }

    /// Replaces the runner's cancellation token — typically with a
    /// [`CancelToken::child`] of a campaign- or service-level token, so
    /// an external cancellation interrupts the in-flight case exactly
    /// like a watchdog deadline while the runner's own per-case
    /// `cancel`/`reset` cycle stays contained in its child flag.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// Attaches a telemetry handle: suite/case spans, per-status case
    /// counters and per-call outcome counters are emitted into it, and the
    /// runner's [`BitControl`] is wired up so assertion checks land as
    /// `bit.<kind>.*` counters too. The default handle is disabled and
    /// free.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.ctl.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle this runner emits into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The control shared with every component this runner constructs.
    pub fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    /// Runs a whole suite, logging into `log`.
    pub fn run_suite(
        &self,
        factory: &dyn ComponentFactory,
        suite: &TestSuite,
        log: &mut TestLog,
    ) -> SuiteResult {
        self.run_suite_with_coverage(factory, suite, log).0
    }

    /// [`TestRunner::run_suite`] with the suite span parented under
    /// `parent` — how the mutation engine attributes a suite execution to
    /// the mutant (and transitively the worker and campaign) that caused
    /// it. [`SpanId::NONE`] leaves the suite a root span.
    pub fn run_suite_under(
        &self,
        factory: &dyn ComponentFactory,
        suite: &TestSuite,
        log: &mut TestLog,
        parent: SpanId,
    ) -> SuiteResult {
        self.run_suite_with_coverage_under(factory, suite, log, parent)
            .0
    }

    /// Runs a whole suite while recording the case × feature
    /// [`CoverageMatrix`]: for each executed case, the static set of
    /// interface methods its transaction invokes. Mutation analysis uses
    /// the matrix of the golden run to skip cases that cannot reach a
    /// mutated method.
    pub fn run_suite_with_coverage(
        &self,
        factory: &dyn ComponentFactory,
        suite: &TestSuite,
        log: &mut TestLog,
    ) -> (SuiteResult, CoverageMatrix) {
        self.run_suite_with_coverage_under(factory, suite, log, SpanId::NONE)
    }

    /// [`TestRunner::run_suite_with_coverage`] with the suite span
    /// parented under `parent`.
    pub fn run_suite_with_coverage_under(
        &self,
        factory: &dyn ComponentFactory,
        suite: &TestSuite,
        log: &mut TestLog,
        parent: SpanId,
    ) -> (SuiteResult, CoverageMatrix) {
        let span = self.telemetry.at(parent).span("suite", &suite.class_name);
        // Case spans nest under the suite span.
        let scoped = self.telemetry.at(span.id());
        let mut coverage = CoverageMatrix::new(suite.class_name.clone());
        let mut cases = Vec::with_capacity(suite.len());
        let mut notes = Vec::new();
        for case in suite {
            coverage.record(case.id, case.method_names().iter().map(|m| (*m).to_owned()));
            let result = self.run_case_with(&scoped, factory, case, log);
            if result.status.is_harness_stop() {
                notes.push(format!("case {}: {}", result.case_id, result.status));
            }
            cases.push(result);
        }
        let result = SuiteResult {
            class_name: suite.class_name.clone(),
            cases,
            notes,
        };
        (result, coverage)
    }

    /// Runs one test case: construct → (invariant, call)* → reporter.
    ///
    /// Exceptions and panics terminate the case (the paper's catch block),
    /// are logged, and leave a truncated transcript — which is itself a
    /// comparable observation.
    pub fn run_case(
        &self,
        factory: &dyn ComponentFactory,
        case: &TestCase,
        log: &mut TestLog,
    ) -> CaseResult {
        self.run_case_with(&self.telemetry, factory, case, log)
    }

    /// [`TestRunner::run_case`] emitting into `telemetry` — the handle a
    /// suite run positions under its own span so case spans nest.
    fn run_case_with(
        &self,
        telemetry: &Telemetry,
        factory: &dyn ComponentFactory,
        case: &TestCase,
        log: &mut TestLog,
    ) -> CaseResult {
        let span = telemetry.span("case", &case.name());
        // Arm the deadline; the token is reset afterwards so a firing
        // near the end of one case can never bleed into the next.
        if let (Some(wd), Some(deadline)) = (&self.watchdog, self.budget.deadline) {
            self.token.reset();
            wd.arm(&self.token, deadline);
        }
        let result = self.run_case_impl(factory, case, log);
        if let Some(wd) = &self.watchdog {
            wd.disarm();
            self.token.reset();
        }
        span.finish();
        if telemetry.is_enabled() {
            let ok = result
                .transcript
                .records
                .iter()
                .filter(|r| r.outcome.is_ok())
                .count() as u64;
            let raised = result.transcript.records.len() as u64 - ok;
            telemetry.incr_by("call.ok", ok);
            telemetry.incr_by("call.raised", raised);
            telemetry.incr(match result.status {
                CaseStatus::Passed => "case.passed",
                CaseStatus::AssertionViolated { .. } => "case.assertion_violated",
                CaseStatus::ExceptionRaised { .. } => "case.exception",
                CaseStatus::Panicked { .. } => "case.panicked",
                CaseStatus::DeadlineExceeded { .. } => "case.deadline_exceeded",
                CaseStatus::BudgetExhausted { .. } => "case.budget_exhausted",
            });
        }
        result
    }

    fn run_case_impl(
        &self,
        factory: &dyn ComponentFactory,
        case: &TestCase,
        log: &mut TestLog,
    ) -> CaseResult {
        let mut records = Vec::new();
        let mut call_index = 0usize;

        // Construct the object via the factory (birth node).
        let ctor_render = case.constructor.render();
        let constructed = catch_unwind(AssertUnwindSafe(|| {
            factory.construct(
                &case.constructor.method,
                &case.constructor.args,
                self.ctl.clone(),
            )
        }));
        let mut component = match constructed {
            Ok(Ok(c)) => {
                records.push(CallRecord {
                    call: ctor_render,
                    outcome: CallOutcome::Returned(Value::Null),
                });
                c
            }
            Ok(Err(exc)) => {
                records.push(CallRecord {
                    call: ctor_render,
                    outcome: CallOutcome::Raised {
                        tag: exc.tag().to_owned(),
                        message: exc.to_string(),
                    },
                });
                let status = status_from_exception(&exc, call_index);
                log.log_failure(&case.name(), &case.constructor.render(), &exc.to_string());
                return CaseResult {
                    case_id: case.id,
                    status,
                    transcript: Transcript {
                        records,
                        final_report: None,
                    },
                };
            }
            Err(panic) => {
                let deadline = is_deadline_payload(panic.as_ref());
                let message = panic_message(panic);
                records.push(CallRecord {
                    call: ctor_render,
                    outcome: CallOutcome::Raised {
                        tag: if deadline { "DEADLINE" } else { "PANIC" }.into(),
                        message: message.clone(),
                    },
                });
                log.log_failure(&case.name(), &case.constructor.render(), &message);
                let status = if deadline {
                    CaseStatus::DeadlineExceeded {
                        at_call: call_index,
                    }
                } else {
                    CaseStatus::Panicked {
                        message,
                        at_call: call_index,
                    }
                };
                return CaseResult {
                    case_id: case.id,
                    status,
                    transcript: Transcript {
                        records,
                        final_report: None,
                    },
                };
            }
        };

        // Invariant after construction (Figure 6 checks before the first
        // task method).
        if self.check_invariants {
            if let Err(v) = component.invariant_test() {
                let message = v.to_string();
                records.push(CallRecord {
                    call: "InvariantTest()".into(),
                    outcome: CallOutcome::Raised {
                        tag: "INVARIANT".into(),
                        message: message.clone(),
                    },
                });
                log.log_failure(&case.name(), "InvariantTest()", &message);
                return CaseResult {
                    case_id: case.id,
                    status: CaseStatus::AssertionViolated {
                        message,
                        at_call: call_index,
                    },
                    transcript: Transcript {
                        records,
                        final_report: Some(component.reporter()),
                    },
                };
            }
        }

        let mut transcript_bytes: usize = records.iter().map(record_size).sum();
        for call in &case.calls {
            if let Some(max) = self.budget.max_calls {
                if call_index >= max {
                    log.log_failure(&case.name(), &call.render(), "call budget exhausted");
                    return CaseResult {
                        case_id: case.id,
                        status: CaseStatus::BudgetExhausted {
                            resource: BudgetResource::Calls,
                            at_call: call_index,
                        },
                        transcript: Transcript {
                            records,
                            final_report: Some(component.reporter()),
                        },
                    };
                }
            }
            // A deadline that fired between checkpoints preempts the
            // *next* call. A call that already returned keeps its
            // recorded outcome — a late-firing watchdog must never flip
            // finished work into a deadline stop; mid-call overruns
            // unwind with the deadline payload and are classified below.
            if self.token.is_cancelled() {
                call_index += 1;
                log.log_failure(&case.name(), &call.render(), "execution deadline exceeded");
                return CaseResult {
                    case_id: case.id,
                    status: CaseStatus::DeadlineExceeded {
                        at_call: call_index,
                    },
                    transcript: Transcript {
                        records,
                        final_report: None,
                    },
                };
            }
            call_index += 1;
            let rendered = call.render();
            let invoked = catch_unwind(AssertUnwindSafe(|| {
                component.invoke(&call.method, &call.args)
            }));
            match invoked {
                Ok(Ok(value)) => {
                    records.push(CallRecord {
                        call: rendered,
                        outcome: CallOutcome::Returned(value),
                    });
                }
                Ok(Err(exc)) => {
                    let message = exc.to_string();
                    records.push(CallRecord {
                        call: rendered.clone(),
                        outcome: CallOutcome::Raised {
                            tag: exc.tag().to_owned(),
                            message: message.clone(),
                        },
                    });
                    log.log_failure(&case.name(), &rendered, &message);
                    return CaseResult {
                        case_id: case.id,
                        status: status_from_exception(&exc, call_index),
                        transcript: Transcript {
                            records,
                            final_report: Some(component.reporter()),
                        },
                    };
                }
                Err(panic) => {
                    let deadline = is_deadline_payload(panic.as_ref());
                    let message = panic_message(panic);
                    records.push(CallRecord {
                        call: rendered.clone(),
                        outcome: CallOutcome::Raised {
                            tag: if deadline { "DEADLINE" } else { "PANIC" }.into(),
                            message: message.clone(),
                        },
                    });
                    log.log_failure(&case.name(), &rendered, &message);
                    let status = if deadline {
                        CaseStatus::DeadlineExceeded {
                            at_call: call_index,
                        }
                    } else {
                        CaseStatus::Panicked {
                            message,
                            at_call: call_index,
                        }
                    };
                    return CaseResult {
                        case_id: case.id,
                        status,
                        transcript: Transcript {
                            records,
                            final_report: None,
                        },
                    };
                }
            }
            if let Some(max) = self.budget.max_transcript_bytes {
                transcript_bytes += records.last().map_or(0, record_size);
                if transcript_bytes > max {
                    let last_call = records.last().map_or("", |r| r.call.as_str()).to_owned();
                    log.log_failure(&case.name(), &last_call, "transcript byte budget exhausted");
                    return CaseResult {
                        case_id: case.id,
                        status: CaseStatus::BudgetExhausted {
                            resource: BudgetResource::TranscriptBytes,
                            at_call: call_index,
                        },
                        transcript: Transcript {
                            records,
                            final_report: Some(component.reporter()),
                        },
                    };
                }
            }
            if self.check_invariants {
                if let Err(v) = component.invariant_test() {
                    let message = v.to_string();
                    records.push(CallRecord {
                        call: "InvariantTest()".into(),
                        outcome: CallOutcome::Raised {
                            tag: "INVARIANT".into(),
                            message: message.clone(),
                        },
                    });
                    log.log_failure(&case.name(), "InvariantTest()", &message);
                    return CaseResult {
                        case_id: case.id,
                        status: CaseStatus::AssertionViolated {
                            message,
                            at_call: call_index,
                        },
                        transcript: Transcript {
                            records,
                            final_report: Some(component.reporter()),
                        },
                    };
                }
            }
        }

        let final_report = component.reporter();
        log.log_pass(&case.name(), &final_report);
        CaseResult {
            case_id: case.id,
            status: CaseStatus::Passed,
            transcript: Transcript {
                records,
                final_report: Some(final_report),
            },
        }
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new()
    }
}

fn status_from_exception(exc: &TestException, at_call: usize) -> CaseStatus {
    match exc {
        TestException::Assertion(v) => CaseStatus::AssertionViolated {
            message: v.to_string(),
            at_call,
        },
        TestException::Panicked { message, .. } => CaseStatus::Panicked {
            message: message.clone(),
            at_call,
        },
        other => CaseStatus::ExceptionRaised {
            tag: other.tag().to_owned(),
            message: other.to_string(),
            at_call,
        },
    }
}

/// Approximate transcript footprint of one record, for the byte budget.
/// Returned values count a small constant; raised outcomes count their
/// rendered tag + message (the parts that actually grow unbounded when a
/// mutant spews output).
fn record_size(record: &CallRecord) -> usize {
    record.call.len()
        + match &record.outcome {
            CallOutcome::Returned(_) => 8,
            CallOutcome::Raised { tag, message } => tag.len() + message.len(),
        }
}

fn is_deadline_payload(panic: &(dyn std::any::Any + Send)) -> bool {
    panic.downcast_ref::<&str>() == Some(&DEADLINE_PANIC_PAYLOAD)
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::MethodCall;
    use concat_bit::{BuiltInTest, TestableComponent};
    use concat_runtime::{args, unknown_method, AssertionViolation, Component, InvokeResult};

    /// A counter that corrupts its state when asked, to exercise every
    /// runner path: domain exceptions, invariant violations and panics.
    struct Chaos {
        n: i64,
        ctl: BitControl,
    }

    impl Component for Chaos {
        fn class_name(&self) -> &'static str {
            "Chaos"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec![
                "Add", "Corrupt", "Panic", "Stall", "Refuse", "Total", "~Chaos",
            ]
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            match m {
                "Add" => {
                    self.n += args::int(m, a, 0)?;
                    Ok(Value::Null)
                }
                "Corrupt" => {
                    self.n = -1;
                    Ok(Value::Null)
                }
                "Panic" => panic!("chaos reigns"),
                "Stall" => std::panic::panic_any(DEADLINE_PANIC_PAYLOAD),
                "Refuse" => Err(TestException::domain(m, "refused")),
                "Total" => Ok(Value::Int(self.n)),
                "~Chaos" => Ok(Value::Null),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for Chaos {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            concat_bit::check(
                &self.ctl,
                concat_runtime::AssertionKind::Invariant,
                "Chaos",
                "",
                "n >= 0",
                self.n >= 0,
            )
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            r.set("n", Value::Int(self.n));
            r
        }
    }

    struct ChaosFactory;
    impl ComponentFactory for ChaosFactory {
        fn class_name(&self) -> &str {
            "Chaos"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Chaos" => Ok(Box::new(Chaos { n: 0, ctl })),
                "ChaosBroken" => Err(TestException::domain(constructor, "cannot build")),
                other => Err(unknown_method("Chaos", other)),
            }
        }
    }

    fn case_with(calls: Vec<MethodCall>) -> TestCase {
        TestCase {
            id: 0,
            transaction_index: 0,
            node_path: vec!["n1".into()],
            constructor: MethodCall::generated("m1", "Chaos", vec![]),
            calls,
        }
    }

    fn dtor() -> MethodCall {
        MethodCall::generated("mD", "~Chaos", vec![])
    }

    #[test]
    fn passing_case_produces_full_transcript() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Add", vec![Value::Int(4)]),
            MethodCall::generated("m3", "Total", vec![]),
            dtor(),
        ]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        assert!(r.status.is_pass());
        assert_eq!(r.transcript.records.len(), 4);
        assert_eq!(
            r.transcript.records[2].outcome,
            CallOutcome::Returned(Value::Int(4))
        );
        let report = r.transcript.final_report.unwrap();
        assert_eq!(report.get("n"), Some(&Value::Int(4)));
        assert!(log.render().contains("TestCaseTC0 OK!"));
    }

    #[test]
    fn invariant_violation_detected_after_corrupting_call() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let case = case_with(vec![MethodCall::generated("m2", "Corrupt", vec![]), dtor()]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        assert!(r.status.is_assertion());
        // corrupting call itself succeeded; the invariant check caught it
        assert!(r
            .transcript
            .records
            .iter()
            .any(|rec| rec.call == "InvariantTest()"));
        assert!(log.render().contains("Invariant") || log.render().contains("invariant"));
    }

    #[test]
    fn panic_is_caught_and_classified() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let case = case_with(vec![MethodCall::generated("m2", "Panic", vec![]), dtor()]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        std::panic::set_hook(prev);
        match &r.status {
            CaseStatus::Panicked { message, at_call } => {
                assert_eq!(message, "chaos reigns");
                assert_eq!(*at_call, 1);
            }
            other => panic!("expected panic status, got {other:?}"),
        }
        assert!(r.transcript.final_report.is_none());
    }

    #[test]
    fn deadline_payload_is_classified_not_treated_as_crash() {
        // Regression: the payload check must inspect the *panic payload*,
        // not the Box around it — `&Box<dyn Any>` unsize-coerces to a
        // `&dyn Any` whose concrete type is the Box, and every downcast
        // fails, turning every deadline into a phantom component crash.
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let case = case_with(vec![MethodCall::generated("m2", "Stall", vec![]), dtor()]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        std::panic::set_hook(prev);
        assert_eq!(r.status, CaseStatus::DeadlineExceeded { at_call: 1 });
        assert_eq!(
            r.transcript.records.last().map(|rec| match &rec.outcome {
                CallOutcome::Raised { tag, .. } => tag.clone(),
                other => format!("{other:?}"),
            }),
            Some("DEADLINE".into())
        );
    }

    /// A component whose `CancelThenOk` method trips the captured token
    /// *during* an otherwise successful invocation — the late-firing
    /// watchdog race: the call completes, the cancellation lands after.
    struct LateCancel {
        token: CancelToken,
        ctl: BitControl,
    }

    impl Component for LateCancel {
        fn class_name(&self) -> &'static str {
            "LateCancel"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["CancelThenOk", "Total", "~LateCancel"]
        }
        fn invoke(&mut self, m: &str, _a: &[Value]) -> InvokeResult {
            match m {
                "CancelThenOk" => {
                    self.token.cancel();
                    Ok(Value::Int(7))
                }
                "Total" => Ok(Value::Int(0)),
                "~LateCancel" => Ok(Value::Null),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for LateCancel {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            Ok(())
        }
        fn reporter(&self) -> StateReport {
            StateReport::new()
        }
    }

    struct LateCancelFactory {
        token: CancelToken,
    }

    impl ComponentFactory for LateCancelFactory {
        fn class_name(&self) -> &str {
            "LateCancel"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "LateCancel" => Ok(Box::new(LateCancel {
                    token: self.token.clone(),
                    ctl,
                })),
                other => Err(unknown_method("LateCancel", other)),
            }
        }
    }

    fn late_cancel_case(calls: Vec<MethodCall>) -> TestCase {
        TestCase {
            id: 0,
            transaction_index: 0,
            node_path: vec!["n1".into()],
            constructor: MethodCall::generated("m1", "LateCancel", vec![]),
            calls,
        }
    }

    #[test]
    fn token_cancelled_post_invoke_keeps_the_finished_case() {
        // Regression for the late-firing watchdog race: the token trips
        // while the final call is returning successfully. The completed
        // case must stay Passed with its full transcript — not flip to
        // DeadlineExceeded.
        let runner = TestRunner::new();
        let factory = LateCancelFactory {
            token: runner.cancel_token().clone(),
        };
        let mut log = TestLog::new();
        let case = late_cancel_case(vec![MethodCall::generated("m2", "CancelThenOk", vec![])]);
        let r = runner.run_case(&factory, &case, &mut log);
        assert!(r.status.is_pass(), "finished work kept: {:?}", r.status);
        assert_eq!(r.transcript.records.len(), 2);
        assert_eq!(
            r.transcript.records[1].outcome,
            CallOutcome::Returned(Value::Int(7))
        );
    }

    #[test]
    fn token_cancelled_post_invoke_preempts_only_the_next_call() {
        // Same race with a following call: the completed call keeps its
        // recorded outcome, and the deadline stop lands on the call the
        // cancellation actually preempted.
        let runner = TestRunner::new();
        let factory = LateCancelFactory {
            token: runner.cancel_token().clone(),
        };
        let mut log = TestLog::new();
        let case = late_cancel_case(vec![
            MethodCall::generated("m2", "CancelThenOk", vec![]),
            MethodCall::generated("m3", "Total", vec![]),
        ]);
        let r = runner.run_case(&factory, &case, &mut log);
        assert_eq!(r.status, CaseStatus::DeadlineExceeded { at_call: 2 });
        assert_eq!(
            r.transcript.records[1].outcome,
            CallOutcome::Returned(Value::Int(7)),
            "the call that finished before the stop keeps its outcome"
        );
        assert!(log.render().contains("deadline"));
    }

    #[test]
    fn domain_exception_ends_case_with_report() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Refuse", vec![]),
            MethodCall::generated("m3", "Total", vec![]),
            dtor(),
        ]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        match &r.status {
            CaseStatus::ExceptionRaised { tag, at_call, .. } => {
                assert_eq!(tag, "DOMAIN");
                assert_eq!(*at_call, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Total was never called: only the constructor and the raising call.
        assert_eq!(r.transcript.records.len(), 2);
        assert!(r.transcript.final_report.is_some());
    }

    #[test]
    fn constructor_failure_recorded() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let mut case = case_with(vec![dtor()]);
        case.constructor = MethodCall::generated("m1", "ChaosBroken", vec![]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        assert!(matches!(r.status, CaseStatus::ExceptionRaised { .. }));
        assert!(r.transcript.final_report.is_none());
        assert_eq!(r.transcript.records.len(), 1);
    }

    #[test]
    fn without_bit_runner_skips_invariants() {
        let runner = TestRunner::without_bit();
        let mut log = TestLog::new();
        let case = case_with(vec![MethodCall::generated("m2", "Corrupt", vec![]), dtor()]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        // With BIT off the corruption goes unnoticed.
        assert!(r.status.is_pass());
    }

    #[test]
    fn suite_statistics() {
        let runner = TestRunner::new();
        let mut log = TestLog::new();
        let suite = TestSuite {
            class_name: "Chaos".into(),
            seed: 0,
            cases: vec![
                {
                    let mut c = case_with(vec![dtor()]);
                    c.id = 0;
                    c
                },
                {
                    let mut c =
                        case_with(vec![MethodCall::generated("m2", "Corrupt", vec![]), dtor()]);
                    c.id = 1;
                    c
                },
            ],
            stats: Default::default(),
        };
        let result = runner.run_suite(&ChaosFactory, &suite, &mut log);
        assert_eq!(result.passed(), 1);
        assert_eq!(result.failed(), 1);
        assert_eq!(result.assertion_failures(), 1);
    }

    #[test]
    fn transcripts_equal_for_identical_runs() {
        let runner = TestRunner::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Add", vec![Value::Int(2)]),
            dtor(),
        ]);
        let mut l1 = TestLog::new();
        let mut l2 = TestLog::new();
        let a = runner.run_case(&ChaosFactory, &case, &mut l1);
        let b = runner.run_case(&ChaosFactory, &case, &mut l2);
        assert_eq!(a.transcript, b.transcript);
    }

    #[test]
    fn status_display() {
        assert_eq!(CaseStatus::Passed.to_string(), "OK");
        let s = CaseStatus::Panicked {
            message: "boom".into(),
            at_call: 2,
        };
        assert!(s.to_string().contains("boom"));
        let d = CaseStatus::DeadlineExceeded { at_call: 3 };
        assert!(d.to_string().contains("deadline"));
        let b = CaseStatus::BudgetExhausted {
            resource: BudgetResource::Calls,
            at_call: 1,
        };
        assert!(b.to_string().contains("calls"));
    }

    #[test]
    fn call_budget_stops_the_case() {
        let runner = TestRunner::new().with_budget(Budget::unlimited().with_max_calls(1));
        let mut log = TestLog::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Add", vec![Value::Int(1)]),
            MethodCall::generated("m3", "Add", vec![Value::Int(1)]),
            dtor(),
        ]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        match &r.status {
            CaseStatus::BudgetExhausted { resource, at_call } => {
                assert_eq!(*resource, BudgetResource::Calls);
                assert_eq!(*at_call, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.status.is_harness_stop());
        // Constructor plus the single budgeted call made it in.
        assert_eq!(r.transcript.records.len(), 2);
        assert!(r.transcript.final_report.is_some(), "state still reported");
    }

    #[test]
    fn transcript_byte_budget_stops_the_case() {
        let runner =
            TestRunner::new().with_budget(Budget::unlimited().with_max_transcript_bytes(1));
        let mut log = TestLog::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Add", vec![Value::Int(1)]),
            dtor(),
        ]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        assert!(matches!(
            r.status,
            CaseStatus::BudgetExhausted {
                resource: BudgetResource::TranscriptBytes,
                ..
            }
        ));
    }

    #[test]
    fn suite_notes_surface_harness_stops() {
        let runner = TestRunner::new().with_budget(Budget::unlimited().with_max_calls(0));
        let mut log = TestLog::new();
        let suite = TestSuite {
            class_name: "Chaos".into(),
            seed: 0,
            cases: vec![case_with(vec![dtor()])],
            stats: Default::default(),
        };
        let result = runner.run_suite(&ChaosFactory, &suite, &mut log);
        assert_eq!(result.harness_stops(), 1);
        assert_eq!(result.notes.len(), 1);
        assert!(
            result.notes[0].contains("budget exhausted"),
            "{:?}",
            result.notes
        );
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let runner = TestRunner::new().with_budget(Budget::unlimited());
        assert!(runner.budget().is_unlimited());
        assert!(!runner.cancel_token().is_cancelled());
        let mut log = TestLog::new();
        let case = case_with(vec![
            MethodCall::generated("m2", "Add", vec![Value::Int(4)]),
            dtor(),
        ]);
        let r = runner.run_case(&ChaosFactory, &case, &mut log);
        assert!(r.status.is_pass());
        assert!(!r.status.is_harness_stop());
    }
}
