//! The case × feature coverage matrix behind mutation-selection.
//!
//! Every generated test case exercises a statically known set of interface
//! methods: the constructor plus every call in the transaction path. A
//! mutant of method *M* can only be reached by cases that invoke *M* — the
//! shipped components key every instrumented read by the dispatched
//! interface method, so a case that never names *M* can never arm a
//! mutated site (the **coverage contract**; see DESIGN.md §12). The
//! [`CoverageMatrix`] records that relation per suite; mutation analysis
//! uses it to skip statically unreachable cases, and the test amplifier
//! uses it to aim candidate synthesis at surviving features.

use crate::persist::PersistError;
use crate::testcase::TestSuite;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Case × feature coverage for one test suite: which interface methods
/// each case invokes.
///
/// Rows are keyed by case id and hold the *static* method set of the
/// case (constructor first, then every call). Lookups for unknown case
/// ids are conservative: [`CoverageMatrix::covers`] returns `true`, so a
/// matrix can never cause a case to be wrongly skipped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoverageMatrix {
    /// Class whose suite this matrix describes.
    pub class_name: String,
    rows: BTreeMap<usize, BTreeSet<String>>,
}

impl CoverageMatrix {
    /// Creates an empty matrix for `class_name`.
    pub fn new(class_name: impl Into<String>) -> Self {
        CoverageMatrix {
            class_name: class_name.into(),
            rows: BTreeMap::new(),
        }
    }

    /// Builds the matrix of a whole suite without executing it — the
    /// method sets are static properties of the generated cases.
    pub fn from_suite(suite: &TestSuite) -> Self {
        let mut matrix = CoverageMatrix::new(suite.class_name.clone());
        for case in suite {
            matrix.record(case.id, case.method_names().iter().map(|m| (*m).to_owned()));
        }
        matrix
    }

    /// Records the method set of one case. Re-recording a case id merges
    /// into the existing row.
    pub fn record(&mut self, case_id: usize, methods: impl IntoIterator<Item = String>) {
        self.rows.entry(case_id).or_default().extend(methods);
    }

    /// True when `case_id` invokes `method`. Unknown case ids are
    /// conservatively covered (the matrix only licenses skipping cases it
    /// has positively recorded as unreachable).
    pub fn covers(&self, case_id: usize, method: &str) -> bool {
        self.rows
            .get(&case_id)
            .is_none_or(|row| row.contains(method))
    }

    /// Ids of the recorded cases that invoke `method`, in id order.
    pub fn cases_covering(&self, method: &str) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|(_, row)| row.contains(method))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of recorded cases.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no case has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the matrix in the crate's line-oriented persistence
    /// format:
    ///
    /// ```text
    /// coverage CObList
    /// case 0 CObList AddHead ~CObList
    /// ```
    ///
    /// Method names are identifiers (no whitespace), so rows are
    /// space-separated; rows appear in case-id order.
    pub fn to_text(&self) -> String {
        let mut out = format!("coverage {}\n", self.class_name);
        for (id, row) in &self.rows {
            let _ = write!(out, "case {id}");
            for method in row {
                let _ = write!(out, " {method}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`CoverageMatrix::to_text`] format.
    ///
    /// # Errors
    ///
    /// [`PersistError`] with the 1-based offending line on malformed
    /// headers, rows, or case ids.
    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| perr(1, "empty coverage text"))?;
        let class_name = header
            .strip_prefix("coverage ")
            .ok_or_else(|| perr(1, "expected `coverage <class>` header"))?;
        let mut matrix = CoverageMatrix::new(class_name);
        for (index, line) in lines {
            let line_no = index + 1;
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("case ")
                .ok_or_else(|| perr(line_no, "expected `case <id> <methods…>`"))?;
            let mut fields = rest.split(' ');
            let id: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| perr(line_no, "case id is not a number"))?;
            matrix.record(id, fields.map(str::to_owned));
        }
        Ok(matrix)
    }
}

fn perr(line: usize, message: impl Into<String>) -> PersistError {
    PersistError {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoverageMatrix {
        let mut m = CoverageMatrix::new("C");
        m.record(0, ["C".to_owned(), "AddHead".to_owned(), "~C".to_owned()]);
        m.record(2, ["C".to_owned(), "Sort1".to_owned(), "~C".to_owned()]);
        m
    }

    #[test]
    fn covers_and_cases_covering() {
        let m = sample();
        assert!(m.covers(0, "AddHead"));
        assert!(!m.covers(0, "Sort1"));
        assert!(m.covers(2, "Sort1"));
        // Unknown cases are conservatively covered.
        assert!(m.covers(99, "Anything"));
        assert_eq!(m.cases_covering("C"), vec![0, 2]);
        assert_eq!(m.cases_covering("Sort1"), vec![2]);
        assert!(m.cases_covering("Absent").is_empty());
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let text = m.to_text();
        assert!(text.starts_with("coverage C\n"), "{text}");
        assert!(text.contains("case 0 AddHead C ~C"), "{text}");
        let back = CoverageMatrix::from_text(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_text_rejected_with_line_numbers() {
        assert_eq!(CoverageMatrix::from_text("").unwrap_err().line, 1);
        assert_eq!(CoverageMatrix::from_text("bogus").unwrap_err().line, 1);
        let err = CoverageMatrix::from_text("coverage C\nrow 1 A").unwrap_err();
        assert_eq!(err.line, 2);
        let err = CoverageMatrix::from_text("coverage C\ncase x A").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn merges_re_recorded_rows() {
        let mut m = CoverageMatrix::new("C");
        m.record(1, ["A".to_owned()]);
        m.record(1, ["B".to_owned()]);
        assert!(m.covers(1, "A") && m.covers(1, "B"));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
