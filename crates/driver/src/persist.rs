//! Persistence of test suites and testing histories.
//!
//! The paper's test infrastructure includes "test history creation and
//! maintenance" and "test retrieval" (§3.4) — a consumer stores the
//! generated suite with the component and retrieves it on the next reuse.
//! This module provides a line-oriented text format (in the spirit of the
//! t-spec's own Figure-3 format; no external serialization dependency):
//!
//! ```text
//! suite CObList
//! seed 2001
//! stats 13 105 false 0
//! case 0 0 ["n1", "n2", "n10"]
//! ctor m1 CObList - []
//! call m2 AddHead g [5]
//! endcase
//! ```
//!
//! Argument vectors are [`Value`] literal lists (see
//! [`concat_runtime::parse_value_literal`]); argument origins are encoded
//! one letter per argument (`g`enerated / `b`oundary / `p`rovided /
//! `m`anual), `-` when there are none.

use crate::history::{HistoryEntry, TestingHistory};
use crate::testcase::{ArgOrigin, MethodCall, SuiteStats, TestCase, TestSuite};
use concat_runtime::{parse_value_literal, IoPolicy, Value};
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Operation label for guarded suite saves (fault-injection hook).
pub const SUITE_SAVE_OP: &str = "driver.suite.save";
/// Operation label for guarded suite loads (fault-injection hook).
pub const SUITE_LOAD_OP: &str = "driver.suite.load";

/// A persistence parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PersistError {}

fn perr(line: usize, message: impl Into<String>) -> PersistError {
    PersistError {
        line,
        message: message.into(),
    }
}

fn origin_code(o: ArgOrigin) -> char {
    match o {
        ArgOrigin::Generated => 'g',
        ArgOrigin::Boundary => 'b',
        ArgOrigin::Provided => 'p',
        ArgOrigin::Manual => 'm',
    }
}

fn origin_from(c: char, line: usize) -> Result<ArgOrigin, PersistError> {
    match c {
        'g' => Ok(ArgOrigin::Generated),
        'b' => Ok(ArgOrigin::Boundary),
        'p' => Ok(ArgOrigin::Provided),
        'm' => Ok(ArgOrigin::Manual),
        other => Err(perr(line, format!("unknown origin code `{other}`"))),
    }
}

fn write_call(out: &mut String, keyword: &str, call: &MethodCall) {
    let origins: String = if call.origins.is_empty() {
        "-".into()
    } else {
        call.origins.iter().map(|o| origin_code(*o)).collect()
    };
    let args = Value::List(call.args.clone()).to_literal();
    let _ = writeln!(
        out,
        "{keyword} {} {} {origins} {args}",
        call.method_id, call.method
    );
}

fn parse_call(rest: &str, line: usize) -> Result<MethodCall, PersistError> {
    let mut parts = rest.splitn(4, ' ');
    let method_id = parts.next().filter(|s| !s.is_empty());
    let method = parts.next();
    let origins = parts.next();
    let args = parts.next();
    let (Some(method_id), Some(method), Some(origins), Some(args)) =
        (method_id, method, origins, args)
    else {
        return Err(perr(line, "call needs: <id> <name> <origins> <args>"));
    };
    let args = match parse_value_literal(args) {
        Ok(Value::List(items)) => items,
        Ok(_) => return Err(perr(line, "arguments must be a list literal")),
        Err(e) => return Err(perr(line, e.to_string())),
    };
    let origins: Vec<ArgOrigin> = if origins == "-" {
        Vec::new()
    } else {
        origins
            .chars()
            .map(|c| origin_from(c, line))
            .collect::<Result<_, _>>()?
    };
    if origins.len() != args.len() {
        return Err(perr(line, "origin count differs from argument count"));
    }
    Ok(MethodCall {
        method_id: method_id.to_owned(),
        method: method.to_owned(),
        args,
        origins,
    })
}

/// Renders a suite in the persistence text format.
pub fn save_suite(suite: &TestSuite) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "suite {}", suite.class_name);
    let _ = writeln!(out, "seed {}", suite.seed);
    let _ = writeln!(
        out,
        "stats {} {} {} {}",
        suite.stats.transactions, suite.stats.cases, suite.stats.truncated, suite.stats.manual_args
    );
    for case in suite {
        let path = Value::List(
            case.node_path
                .iter()
                .map(|p| Value::Str(p.clone()))
                .collect(),
        )
        .to_literal();
        let _ = writeln!(out, "case {} {} {path}", case.id, case.transaction_index);
        write_call(&mut out, "ctor", &case.constructor);
        for call in &case.calls {
            write_call(&mut out, "call", call);
        }
        let _ = writeln!(out, "endcase");
    }
    out
}

/// A failure saving or loading a suite through the filesystem: either the
/// environment (I/O, possibly injected) or the stored text (parse).
#[derive(Debug)]
pub enum SuiteIoError {
    /// The filesystem operation failed after any retries; the error
    /// message names the path.
    Io(io::Error),
    /// The file was read but did not parse as a persisted suite.
    Parse(PersistError),
}

impl fmt::Display for SuiteIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteIoError::Io(e) => write!(f, "suite I/O failed: {e}"),
            SuiteIoError::Parse(e) => write!(f, "suite parse failed: {e}"),
        }
    }
}

impl std::error::Error for SuiteIoError {}

fn path_context(e: io::Error, verb: &str, path: &Path) -> io::Error {
    io::Error::new(
        e.kind(),
        format!("failed to {verb} suite at {}: {e}", path.display()),
    )
}

/// Saves a suite to a file under an [`IoPolicy`]: transient write
/// failures (including injected ones, op [`SUITE_SAVE_OP`]) retry with
/// backoff, and the write is atomic (temp + fsync + rename) so a kill
/// mid-save leaves the previous file intact. Returns the number of
/// retries spent, for `harden.retry` accounting.
///
/// # Errors
///
/// [`SuiteIoError::Io`] with the path named, after retries are exhausted
/// or on a persistent failure.
pub fn save_suite_to_path(
    suite: &TestSuite,
    path: impl AsRef<Path>,
    policy: &IoPolicy,
) -> Result<u32, SuiteIoError> {
    let path = path.as_ref();
    let text = save_suite(suite);
    // Atomic temp + fsync + rename: a kill mid-save can never leave a
    // torn suite file behind.
    let attempt = policy.run(SUITE_SAVE_OP, || {
        concat_runtime::write_atomic(path, text.as_bytes())
    });
    match attempt.result {
        Ok(()) => Ok(attempt.retries),
        Err(e) => Err(SuiteIoError::Io(path_context(e, "save", path))),
    }
}

/// Loads a suite from a file under an [`IoPolicy`] (op
/// [`SUITE_LOAD_OP`]). Returns the suite and the retries spent.
///
/// # Errors
///
/// [`SuiteIoError::Io`] when reading fails past the retry budget,
/// [`SuiteIoError::Parse`] when the text is not a persisted suite.
pub fn load_suite_from_path(
    path: impl AsRef<Path>,
    policy: &IoPolicy,
) -> Result<(TestSuite, u32), SuiteIoError> {
    let path = path.as_ref();
    let attempt = policy.run(SUITE_LOAD_OP, || std::fs::read_to_string(path));
    match attempt.result {
        Ok(text) => match load_suite(&text) {
            Ok(suite) => Ok((suite, attempt.retries)),
            Err(e) => Err(SuiteIoError::Parse(e)),
        },
        Err(e) => Err(SuiteIoError::Io(path_context(e, "load", path))),
    }
}

/// Parses a suite from the persistence text format.
///
/// # Errors
///
/// Returns the first [`PersistError`] with its line number.
///
/// # Examples
///
/// ```
/// use concat_driver::{load_suite, save_suite, SuiteStats, TestSuite};
///
/// let suite = TestSuite {
///     class_name: "C".into(),
///     seed: 1,
///     cases: vec![],
///     stats: SuiteStats::default(),
/// };
/// assert_eq!(load_suite(&save_suite(&suite)).unwrap(), suite);
/// ```
pub fn load_suite(text: &str) -> Result<TestSuite, PersistError> {
    let mut class_name: Option<String> = None;
    let mut seed = 0u64;
    let mut stats = SuiteStats::default();
    let mut cases: Vec<TestCase> = Vec::new();
    let mut current: Option<TestCase> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "suite" => class_name = Some(rest.trim().to_owned()),
            "seed" => {
                seed = rest.trim().parse().map_err(|_| perr(line_no, "bad seed"))?;
            }
            "stats" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(perr(line_no, "stats needs 4 fields"));
                }
                stats = SuiteStats {
                    transactions: parts[0].parse().map_err(|_| perr(line_no, "bad count"))?,
                    cases: parts[1].parse().map_err(|_| perr(line_no, "bad count"))?,
                    truncated: parts[2].parse().map_err(|_| perr(line_no, "bad flag"))?,
                    manual_args: parts[3].parse().map_err(|_| perr(line_no, "bad count"))?,
                };
            }
            "case" => {
                if current.is_some() {
                    return Err(perr(line_no, "previous case not closed"));
                }
                let mut parts = rest.splitn(3, ' ');
                let id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| perr(line_no, "bad case id"))?;
                let txn: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| perr(line_no, "bad transaction index"))?;
                let path = match parts.next().map(parse_value_literal) {
                    Some(Ok(Value::List(items))) => items
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) => Ok(s),
                            _ => Err(perr(line_no, "path entries must be strings")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(perr(line_no, "bad node path")),
                };
                current = Some(TestCase {
                    id,
                    transaction_index: txn,
                    node_path: path,
                    constructor: MethodCall::generated("", "", vec![]),
                    calls: Vec::new(),
                });
            }
            "ctor" => match current.as_mut() {
                Some(case) => case.constructor = parse_call(rest, line_no)?,
                None => return Err(perr(line_no, "ctor outside a case")),
            },
            "call" => match current.as_mut() {
                Some(case) => case.calls.push(parse_call(rest, line_no)?),
                None => return Err(perr(line_no, "call outside a case")),
            },
            "endcase" => match current.take() {
                Some(case) => cases.push(case),
                None => return Err(perr(line_no, "endcase without a case")),
            },
            other => return Err(perr(line_no, format!("unknown record `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(perr(text.lines().count(), "unterminated case"));
    }
    let class_name = class_name.ok_or_else(|| perr(1, "missing suite header"))?;
    Ok(TestSuite {
        class_name,
        seed,
        cases,
        stats,
    })
}

/// Renders a testing history in the persistence text format.
pub fn save_history(history: &TestingHistory) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "history {}", history.class_name);
    for e in &history.entries {
        let methods =
            Value::List(e.methods.iter().map(|m| Value::Str(m.clone())).collect()).to_literal();
        let _ = writeln!(out, "entry {} {} {methods}", e.case_id, e.transaction_index);
    }
    out
}

/// Parses a testing history from the persistence text format.
///
/// # Errors
///
/// Returns the first [`PersistError`] with its line number.
pub fn load_history(text: &str) -> Result<TestingHistory, PersistError> {
    let mut class_name: Option<String> = None;
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "history" => class_name = Some(rest.trim().to_owned()),
            "entry" => {
                let mut parts = rest.splitn(3, ' ');
                let case_id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| perr(line_no, "bad case id"))?;
                let transaction_index: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| perr(line_no, "bad transaction index"))?;
                let methods = match parts.next().map(parse_value_literal) {
                    Some(Ok(Value::List(items))) => items
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) => Ok(s),
                            _ => Err(perr(line_no, "methods must be strings")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(perr(line_no, "bad method list")),
                };
                entries.push(HistoryEntry {
                    case_id,
                    transaction_index,
                    methods,
                });
            }
            other => return Err(perr(line_no, format!("unknown record `{other}`"))),
        }
    }
    let class_name = class_name.ok_or_else(|| perr(1, "missing history header"))?;
    Ok(TestingHistory {
        class_name,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_suite() -> TestSuite {
        TestSuite {
            class_name: "Product".into(),
            seed: 2001,
            cases: vec![
                TestCase {
                    id: 0,
                    transaction_index: 0,
                    node_path: vec!["n1".into(), "n7".into()],
                    constructor: MethodCall::generated("m1", "Product", vec![]),
                    calls: vec![MethodCall::generated("m12", "~Product", vec![])],
                },
                TestCase {
                    id: 1,
                    transaction_index: 2,
                    node_path: vec!["n1".into(), "n2".into(), "n7".into()],
                    constructor: MethodCall {
                        method_id: "m2".into(),
                        method: "Product".into(),
                        args: vec![
                            Value::Int(3),
                            Value::Str("Soap, \"special\"".into()),
                            Value::Float(2.5),
                            Value::Null,
                        ],
                        origins: vec![
                            ArgOrigin::Generated,
                            ArgOrigin::Generated,
                            ArgOrigin::Boundary,
                            ArgOrigin::Manual,
                        ],
                    },
                    calls: vec![MethodCall {
                        method_id: "m5".into(),
                        method: "UpdateQty".into(),
                        args: vec![Value::Int(7)],
                        origins: vec![ArgOrigin::Provided],
                    }],
                },
            ],
            stats: SuiteStats {
                transactions: 3,
                cases: 2,
                truncated: true,
                manual_args: 1,
            },
        }
    }

    #[test]
    fn suite_round_trips() {
        let suite = sample_suite();
        let text = save_suite(&suite);
        let back = load_suite(&text).unwrap();
        assert_eq!(back, suite);
    }

    #[test]
    fn history_round_trips() {
        let history = TestingHistory::from_suite(&sample_suite());
        let text = save_history(&history);
        assert_eq!(load_history(&text).unwrap(), history);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let suite = sample_suite();
        let mut text = String::from("# saved by concat\n\n");
        text.push_str(&save_suite(&suite));
        assert_eq!(load_suite(&text).unwrap(), suite);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = load_suite("suite C\nbogus record").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown record"));
    }

    #[test]
    fn structural_errors_detected() {
        assert!(load_suite("ctor m1 C - []")
            .unwrap_err()
            .message
            .contains("outside"));
        assert!(load_suite("suite C\ncase 0 0 [\"n1\"]\nctor m1 C - []")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(load_suite("seed 1")
            .unwrap_err()
            .message
            .contains("missing suite header"));
        assert!(
            load_history("entry 0 0 []")
                .unwrap_err()
                .message
                .contains("unknown record")
                || load_history("entry 0 0 []").is_err()
        );
    }

    #[test]
    fn origin_mismatch_rejected() {
        let text = "suite C\ncase 0 0 []\nctor m1 C gg [5]\nendcase";
        let err = load_suite(text).unwrap_err();
        assert!(err.message.contains("origin count"));
    }

    #[test]
    fn bad_args_literal_rejected() {
        let text = "suite C\ncase 0 0 []\nctor m1 C g [oops]\nendcase";
        assert!(load_suite(text).is_err());
        let text2 = "suite C\ncase 0 0 []\nctor m1 C g 5\nendcase";
        assert!(load_suite(text2)
            .unwrap_err()
            .message
            .contains("list literal"));
    }

    #[test]
    fn generated_real_suite_round_trips() {
        use crate::generator::DriverGenerator;
        let spec = concat_tspec::ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .method("m2", "Add", concat_tspec::MethodCategory::Update)
            .param("q", concat_tspec::Domain::int_range(-5, 5))
            .method("m3", "Name", concat_tspec::MethodCategory::Update)
            .param("s", concat_tspec::Domain::string(12))
            .destructor("m4", "~C")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2", "m3"])
            .death_node("n3", ["m4"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .build()
            .unwrap();
        let suite = DriverGenerator::with_seed(17).generate(&spec).unwrap();
        let text = save_suite(&suite);
        assert_eq!(load_suite(&text).unwrap(), suite);
    }

    #[test]
    fn guarded_save_load_round_trips_through_injected_transients() {
        use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};
        let suite = TestSuite {
            class_name: "C".into(),
            seed: 5,
            cases: vec![],
            stats: SuiteStats::default(),
        };
        let dir = std::env::temp_dir().join("concat_persist_guarded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.txt");

        let injector = FaultInjector::seeded(23);
        injector.fail_nth(SUITE_SAVE_OP, 1, FaultKind::Transient);
        injector.fail_nth(SUITE_LOAD_OP, 1, FaultKind::Transient);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let save_retries = save_suite_to_path(&suite, &path, &policy).unwrap();
        assert_eq!(save_retries, 1);
        let (loaded, load_retries) = load_suite_from_path(&path, &policy).unwrap();
        assert_eq!(loaded, suite);
        assert_eq!(load_retries, 1);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn guarded_save_surfaces_persistent_failures_with_path() {
        use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};
        let suite = TestSuite {
            class_name: "C".into(),
            seed: 5,
            cases: vec![],
            stats: SuiteStats::default(),
        };
        let injector = FaultInjector::seeded(23);
        injector.fail_always(SUITE_SAVE_OP, FaultKind::Persistent);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let err = save_suite_to_path(&suite, "/tmp/concat_never_saved.txt", &policy).unwrap_err();
        match err {
            SuiteIoError::Io(e) => assert!(e.to_string().contains("concat_never_saved.txt")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn guarded_load_distinguishes_parse_errors() {
        let dir = std::env::temp_dir().join("concat_persist_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "not a suite\n").unwrap();
        let err = load_suite_from_path(&path, &IoPolicy::default()).unwrap_err();
        assert!(matches!(err, SuiteIoError::Parse(_)));
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
