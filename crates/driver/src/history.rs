//! Testing history and hierarchical incremental test reuse.
//!
//! The paper (§3.4.2) adapts Harrold, McGregor & Fitzpatrick's incremental
//! class-testing technique, associating each test case with a *transaction*
//! instead of an individual feature:
//!
//! * a transaction whose methods are all **inherited unmodified**
//!   (constructors and destructors excluded from the comparison) keeps its
//!   parent test case and **is not re-run** in the subclass's test set;
//! * a transaction containing **modified (redefined)** methods reuses the
//!   parent test case but must be re-executed;
//! * a transaction containing **new** methods needs freshly generated test
//!   cases.
//!
//! Table 3 of the paper measures exactly the danger of the first rule.

use crate::testcase::{TestCase, TestSuite};
use std::collections::BTreeSet;
use std::fmt;

/// One history entry: a test case and the transaction it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Id of the test case within its suite.
    pub case_id: usize,
    /// Index of the covered transaction.
    pub transaction_index: usize,
    /// Method names exercised, constructor first (destructor last).
    pub methods: Vec<String>,
}

/// The testing history of one class: which test case covers which
/// transaction with which methods.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TestingHistory {
    /// Class the history belongs to.
    pub class_name: String,
    /// Entries in suite order.
    pub entries: Vec<HistoryEntry>,
}

impl TestingHistory {
    /// Builds the history of a generated suite.
    pub fn from_suite(suite: &TestSuite) -> Self {
        let entries = suite
            .iter()
            .map(|c| HistoryEntry {
                case_id: c.id,
                transaction_index: c.transaction_index,
                methods: c.method_names().iter().map(|s| (*s).to_owned()).collect(),
            })
            .collect();
        TestingHistory {
            class_name: suite.class_name.clone(),
            entries,
        }
    }

    /// Number of recorded cases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the history is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How each method of the parent class relates to the subclass.
///
/// Matches the Harrold-style classification the paper assumes: single
/// inheritance, signatures preserved, attributes private (a modified
/// attribute marks its accessor methods as modified).
#[derive(Debug, Clone, Default)]
pub struct InheritanceMap {
    /// Methods inherited without modification.
    pub inherited: BTreeSet<String>,
    /// Methods redefined (or touching modified attributes) in the subclass.
    pub redefined: BTreeSet<String>,
    /// Methods newly introduced by the subclass.
    pub new_methods: BTreeSet<String>,
    /// Constructor/destructor names, excluded from reuse comparisons.
    pub lifecycle: BTreeSet<String>,
}

impl InheritanceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares inherited-unmodified methods.
    pub fn inherit<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.inherited.extend(it.into_iter().map(Into::into));
        self
    }

    /// Declares redefined methods.
    pub fn redefine<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.redefined.extend(it.into_iter().map(Into::into));
        self
    }

    /// Declares newly introduced methods.
    pub fn add_new<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.new_methods.extend(it.into_iter().map(Into::into));
        self
    }

    /// Declares constructor/destructor names (excluded from comparison).
    pub fn lifecycle<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.lifecycle.extend(it.into_iter().map(Into::into));
        self
    }

    /// Classification of one method name.
    pub fn classify(&self, method: &str) -> MethodStatus {
        if self.lifecycle.contains(method) {
            MethodStatus::Lifecycle
        } else if self.redefined.contains(method) {
            MethodStatus::Redefined
        } else if self.new_methods.contains(method) {
            MethodStatus::New
        } else if self.inherited.contains(method) {
            MethodStatus::Inherited
        } else {
            MethodStatus::Unknown
        }
    }
}

/// Status of a method relative to the subclass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodStatus {
    /// Inherited without modification.
    Inherited,
    /// Redefined in the subclass.
    Redefined,
    /// Newly introduced in the subclass.
    New,
    /// A constructor or destructor (excluded from comparisons).
    Lifecycle,
    /// Not declared in the map at all.
    Unknown,
}

/// Reuse decision for one parent test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Transaction contains only unmodified inherited methods: the parent
    /// case remains valid and **is not re-run** for the subclass.
    SkipRetest,
    /// Transaction touches redefined methods: reuse the parent case but
    /// re-run it against the subclass.
    RetestReused,
    /// Transaction references methods unknown to the subclass (removed or
    /// renamed): the case is obsolete.
    Obsolete,
}

impl fmt::Display for ReuseDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReuseDecision::SkipRetest => "skip (inherited only)",
            ReuseDecision::RetestReused => "retest (reused)",
            ReuseDecision::Obsolete => "obsolete",
        };
        f.write_str(s)
    }
}

/// The reuse plan derived from a parent history and an inheritance map.
#[derive(Debug, Clone, PartialEq)]
pub struct ReusePlan {
    /// Per-parent-case decisions, aligned with the history's entries.
    pub decisions: Vec<(usize, ReuseDecision)>,
}

impl ReusePlan {
    /// Applies the paper's transaction-level rule to every parent case.
    pub fn analyze(parent: &TestingHistory, map: &InheritanceMap) -> ReusePlan {
        let decisions = parent
            .entries
            .iter()
            .map(|e| {
                let mut decision = ReuseDecision::SkipRetest;
                for m in &e.methods {
                    match map.classify(m) {
                        MethodStatus::Lifecycle | MethodStatus::Inherited => {}
                        MethodStatus::Redefined | MethodStatus::New => {
                            decision = ReuseDecision::RetestReused;
                        }
                        MethodStatus::Unknown => {
                            decision = ReuseDecision::Obsolete;
                            break;
                        }
                    }
                }
                (e.case_id, decision)
            })
            .collect();
        ReusePlan { decisions }
    }

    /// Ids of parent cases to re-run against the subclass (the *reduced*
    /// reused test set — 329 cases in the paper's experiment).
    pub fn reused_case_ids(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .filter(|(_, d)| *d == ReuseDecision::RetestReused)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of parent cases that are skipped (inherited-only transactions).
    pub fn skipped_case_ids(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .filter(|(_, d)| *d == ReuseDecision::SkipRetest)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of obsolete parent cases.
    pub fn obsolete_case_ids(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .filter(|(_, d)| *d == ReuseDecision::Obsolete)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Summary counts `(skipped, reused, obsolete)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.skipped_case_ids().len(),
            self.reused_case_ids().len(),
            self.obsolete_case_ids().len(),
        )
    }
}

/// Transactions of a *subclass* suite that must be freshly generated:
/// those whose cases exercise at least one new method.
pub fn new_method_cases<'a>(
    subclass_suite: &'a TestSuite,
    map: &InheritanceMap,
) -> Vec<&'a TestCase> {
    subclass_suite
        .iter()
        .filter(|c| {
            c.method_names()
                .iter()
                .any(|m| map.classify(m) == MethodStatus::New)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{MethodCall, SuiteStats};

    fn suite_with(methods: Vec<Vec<&str>>) -> TestSuite {
        let cases = methods
            .into_iter()
            .enumerate()
            .map(|(i, ms)| TestCase {
                id: i,
                transaction_index: i,
                node_path: vec![],
                constructor: MethodCall::generated("m0", ms[0], vec![]),
                calls: ms[1..]
                    .iter()
                    .map(|m| MethodCall::generated("mx", *m, vec![]))
                    .collect(),
            })
            .collect();
        TestSuite {
            class_name: "CObList".into(),
            seed: 0,
            cases,
            stats: SuiteStats::default(),
        }
    }

    fn map() -> InheritanceMap {
        InheritanceMap::new()
            .lifecycle(["CObList", "~CObList", "CSortableObList", "~CSortableObList"])
            .inherit(["AddHead", "RemoveAt", "RemoveHead"])
            .redefine(["SetAt"])
            .add_new(["Sort1", "FindMax"])
    }

    #[test]
    fn history_records_all_cases() {
        let suite = suite_with(vec![vec!["CObList", "AddHead", "~CObList"]]);
        let h = TestingHistory::from_suite(&suite);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        assert_eq!(h.entries[0].methods, vec!["CObList", "AddHead", "~CObList"]);
    }

    #[test]
    fn inherited_only_transactions_are_skipped() {
        let suite = suite_with(vec![vec!["CObList", "AddHead", "RemoveHead", "~CObList"]]);
        let plan = ReusePlan::analyze(&TestingHistory::from_suite(&suite), &map());
        assert_eq!(plan.decisions[0].1, ReuseDecision::SkipRetest);
        assert_eq!(plan.counts(), (1, 0, 0));
    }

    #[test]
    fn redefined_methods_force_retest() {
        let suite = suite_with(vec![vec!["CObList", "AddHead", "SetAt", "~CObList"]]);
        let plan = ReusePlan::analyze(&TestingHistory::from_suite(&suite), &map());
        assert_eq!(plan.decisions[0].1, ReuseDecision::RetestReused);
        assert_eq!(plan.reused_case_ids(), vec![0]);
    }

    #[test]
    fn unknown_methods_make_cases_obsolete() {
        let suite = suite_with(vec![vec!["CObList", "RemovedMethod", "~CObList"]]);
        let plan = ReusePlan::analyze(&TestingHistory::from_suite(&suite), &map());
        assert_eq!(plan.obsolete_case_ids(), vec![0]);
    }

    #[test]
    fn lifecycle_methods_do_not_trigger_retest() {
        // Constructor differs between classes but is excluded from the
        // comparison (the paper's explicit rule).
        let suite = suite_with(vec![vec!["CSortableObList", "AddHead", "~CSortableObList"]]);
        let plan = ReusePlan::analyze(&TestingHistory::from_suite(&suite), &map());
        assert_eq!(plan.decisions[0].1, ReuseDecision::SkipRetest);
    }

    #[test]
    fn mixed_suite_partitions() {
        let suite = suite_with(vec![
            vec!["CObList", "AddHead", "~CObList"],           // skip
            vec!["CObList", "SetAt", "~CObList"],             // retest
            vec!["CObList", "Gone", "~CObList"],              // obsolete
            vec!["CObList", "RemoveAt", "SetAt", "~CObList"], // retest
        ]);
        let plan = ReusePlan::analyze(&TestingHistory::from_suite(&suite), &map());
        assert_eq!(plan.counts(), (1, 2, 1));
        assert_eq!(plan.reused_case_ids(), vec![1, 3]);
        assert_eq!(plan.skipped_case_ids(), vec![0]);
    }

    #[test]
    fn new_method_cases_found_in_subclass_suite() {
        let suite = suite_with(vec![
            vec!["CSortableObList", "AddHead", "~CSortableObList"],
            vec!["CSortableObList", "Sort1", "~CSortableObList"],
        ]);
        let fresh = new_method_cases(&suite, &map());
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].id, 1);
    }

    #[test]
    fn decision_display() {
        assert!(ReuseDecision::SkipRetest.to_string().contains("skip"));
        assert!(ReuseDecision::RetestReused.to_string().contains("retest"));
        assert!(ReuseDecision::Obsolete.to_string().contains("obsolete"));
    }

    #[test]
    fn classify_statuses() {
        let m = map();
        assert_eq!(m.classify("AddHead"), MethodStatus::Inherited);
        assert_eq!(m.classify("SetAt"), MethodStatus::Redefined);
        assert_eq!(m.classify("Sort1"), MethodStatus::New);
        assert_eq!(m.classify("CObList"), MethodStatus::Lifecycle);
        assert_eq!(m.classify("Mystery"), MethodStatus::Unknown);
    }
}
