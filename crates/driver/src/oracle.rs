//! The test oracle.
//!
//! The paper combines two oracle mechanisms (§3.3, §4): the *partial
//! oracle* of contract assertions, already enforced inline by the runner,
//! and a golden-output comparison — "the output of the program that
//! finished execution was different of the output of the original program
//! (these outputs were validated by hand before experiments began)".
//!
//! [`compare_transcripts`] implements the golden comparison over the
//! runner's [`Transcript`]s; [`Verdict`] explains the first divergence.

use crate::runner::{CaseResult, SuiteResult, Transcript};
use std::fmt;

/// How two runs of the same test case differ (first difference only).
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Call `index` produced a different outcome (value or exception).
    CallOutcome {
        /// Index into the transcript's records.
        index: usize,
        /// Rendered golden record.
        expected: String,
        /// Rendered observed record.
        observed: String,
    },
    /// The runs executed a different number of calls (early abort).
    Length {
        /// Golden record count.
        expected: usize,
        /// Observed record count.
        observed: usize,
    },
    /// The final reporter state differs.
    FinalState {
        /// Rendered golden report (or `<none>`).
        expected: String,
        /// Rendered observed report (or `<none>`).
        observed: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::CallOutcome {
                index,
                expected,
                observed,
            } => {
                write!(f, "call {index}: expected {expected}, observed {observed}")
            }
            Divergence::Length { expected, observed } => {
                write!(f, "executed {observed} call(s), expected {expected}")
            }
            Divergence::FinalState { expected, observed } => {
                write!(
                    f,
                    "final state differs: expected {expected:?}, observed {observed:?}"
                )
            }
        }
    }
}

/// Outcome of comparing an observed transcript against the golden one.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Behaviourally indistinguishable runs.
    Match,
    /// The runs diverge; the payload explains where first.
    Differs(Divergence),
}

impl Verdict {
    /// True for [`Verdict::Match`].
    pub fn is_match(&self) -> bool {
        matches!(self, Verdict::Match)
    }
}

fn render_record(t: &Transcript, index: usize) -> String {
    let r = &t.records[index];
    match &r.outcome {
        crate::runner::CallOutcome::Returned(v) => format!("{} -> {}", r.call, v.to_literal()),
        crate::runner::CallOutcome::Raised { tag, message } => {
            format!("{} !! [{tag}] {message}", r.call)
        }
    }
}

/// Compares an observed transcript against the golden transcript of the
/// same test case.
///
/// The comparison covers, in order: per-call outcomes (return values and
/// raised exceptions), transcript length (early aborts), and the final
/// reporter state. The *first* difference is reported.
///
/// # Examples
///
/// ```
/// use concat_driver::{compare_transcripts, Transcript};
/// let golden = Transcript { records: vec![], final_report: None };
/// let observed = golden.clone();
/// assert!(compare_transcripts(&golden, &observed).is_match());
/// ```
pub fn compare_transcripts(golden: &Transcript, observed: &Transcript) -> Verdict {
    let n = golden.records.len().min(observed.records.len());
    for i in 0..n {
        if golden.records[i] != observed.records[i] {
            return Verdict::Differs(Divergence::CallOutcome {
                index: i,
                expected: render_record(golden, i),
                observed: render_record(observed, i),
            });
        }
    }
    if golden.records.len() != observed.records.len() {
        return Verdict::Differs(Divergence::Length {
            expected: golden.records.len(),
            observed: observed.records.len(),
        });
    }
    if golden.final_report != observed.final_report {
        let render = |r: &Option<concat_bit::StateReport>| {
            r.as_ref()
                .map_or_else(|| "<none>".to_owned(), |s| s.render())
        };
        return Verdict::Differs(Divergence::FinalState {
            expected: render(&golden.final_report),
            observed: render(&observed.final_report),
        });
    }
    Verdict::Match
}

/// Compares two whole suite runs case-by-case.
///
/// Returns the ids of the cases whose transcripts differ — the set of test
/// cases that *distinguish* the two programs. In mutation analysis a
/// non-empty result means the mutant is killed by output difference.
pub fn differing_cases(golden: &SuiteResult, observed: &SuiteResult) -> Vec<usize> {
    let mut out = Vec::new();
    for (g, o) in golden.cases.iter().zip(observed.cases.iter()) {
        debug_assert_eq!(g.case_id, o.case_id, "suite results must align");
        if !compare_transcripts(&g.transcript, &o.transcript).is_match() {
            out.push(g.case_id);
        }
    }
    out
}

/// A manually supplied expected outcome for a case (the paper's
/// hand-validated outputs). `None` entries mean "any behaviour accepted".
#[derive(Debug, Clone, Default)]
pub struct ManualOracle {
    expectations: Vec<(usize, Transcript)>,
}

impl ManualOracle {
    /// Creates an oracle with no expectations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the expected transcript for a case id.
    pub fn expect(&mut self, case_id: usize, transcript: Transcript) {
        self.expectations.retain(|(id, _)| *id != case_id);
        self.expectations.push((case_id, transcript));
    }

    /// Number of registered expectations.
    pub fn len(&self) -> usize {
        self.expectations.len()
    }

    /// True when no expectations are registered.
    pub fn is_empty(&self) -> bool {
        self.expectations.is_empty()
    }

    /// Checks an executed case against its expectation, if any.
    pub fn check(&self, result: &CaseResult) -> Verdict {
        match self
            .expectations
            .iter()
            .find(|(id, _)| *id == result.case_id)
        {
            Some((_, expected)) => compare_transcripts(expected, &result.transcript),
            None => Verdict::Match,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CallOutcome, CallRecord, CaseStatus};
    use concat_bit::StateReport;
    use concat_runtime::Value;

    fn transcript(vals: &[i64], report: Option<i64>) -> Transcript {
        Transcript {
            records: vals
                .iter()
                .map(|v| CallRecord {
                    call: format!("M({v})"),
                    outcome: CallOutcome::Returned(Value::Int(*v)),
                })
                .collect(),
            final_report: report.map(|n| {
                let mut r = StateReport::new();
                r.set("n", Value::Int(n));
                r
            }),
        }
    }

    #[test]
    fn identical_transcripts_match() {
        let t = transcript(&[1, 2], Some(3));
        assert!(compare_transcripts(&t, &t.clone()).is_match());
    }

    #[test]
    fn differing_return_value_detected_with_index() {
        let g = transcript(&[1, 2], Some(3));
        let o = transcript(&[1, 5], Some(3));
        match compare_transcripts(&g, &o) {
            Verdict::Differs(Divergence::CallOutcome {
                index,
                expected,
                observed,
            }) => {
                assert_eq!(index, 1);
                assert!(expected.contains("2"));
                assert!(observed.contains("5"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn early_abort_detected_as_length() {
        let g = transcript(&[1, 2, 3], Some(0));
        let o = transcript(&[1, 2], Some(0));
        assert!(matches!(
            compare_transcripts(&g, &o),
            Verdict::Differs(Divergence::Length {
                expected: 3,
                observed: 2
            })
        ));
    }

    #[test]
    fn final_state_difference_detected() {
        let g = transcript(&[1], Some(10));
        let o = transcript(&[1], Some(11));
        assert!(matches!(
            compare_transcripts(&g, &o),
            Verdict::Differs(Divergence::FinalState { .. })
        ));
    }

    #[test]
    fn missing_report_is_a_difference() {
        let g = transcript(&[1], Some(10));
        let o = transcript(&[1], None);
        assert!(!compare_transcripts(&g, &o).is_match());
    }

    #[test]
    fn exception_vs_return_is_a_difference() {
        let g = transcript(&[1], None);
        let mut o = g.clone();
        o.records[0].outcome = CallOutcome::Raised {
            tag: "PANIC".into(),
            message: "x".into(),
        };
        match compare_transcripts(&g, &o) {
            Verdict::Differs(Divergence::CallOutcome { observed, .. }) => {
                assert!(observed.contains("[PANIC]"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn differing_cases_across_suites() {
        let mk = |vals: &[i64]| CaseResult {
            case_id: 0,
            status: CaseStatus::Passed,
            transcript: transcript(vals, None),
        };
        let golden = SuiteResult {
            class_name: "C".into(),
            cases: vec![mk(&[1]), {
                let mut c = mk(&[2]);
                c.case_id = 1;
                c
            }],
            notes: vec![],
        };
        let observed = SuiteResult {
            class_name: "C".into(),
            cases: vec![mk(&[1]), {
                let mut c = mk(&[9]);
                c.case_id = 1;
                c
            }],
            notes: vec![],
        };
        assert_eq!(differing_cases(&golden, &observed), vec![1]);
    }

    #[test]
    fn manual_oracle_checks_registered_cases_only() {
        let mut oracle = ManualOracle::new();
        assert!(oracle.is_empty());
        oracle.expect(0, transcript(&[1], None));
        assert_eq!(oracle.len(), 1);
        let good = CaseResult {
            case_id: 0,
            status: CaseStatus::Passed,
            transcript: transcript(&[1], None),
        };
        let bad = CaseResult {
            case_id: 0,
            status: CaseStatus::Passed,
            transcript: transcript(&[2], None),
        };
        let unregistered = CaseResult {
            case_id: 7,
            status: CaseStatus::Passed,
            transcript: transcript(&[99], None),
        };
        assert!(oracle.check(&good).is_match());
        assert!(!oracle.check(&bad).is_match());
        assert!(oracle.check(&unregistered).is_match());
    }

    #[test]
    fn divergence_display() {
        let d = Divergence::Length {
            expected: 3,
            observed: 1,
        };
        assert!(d.to_string().contains("expected 3"));
    }
}
