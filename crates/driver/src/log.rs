//! The test log: the paper's `Result.txt`.
//!
//! Figure 6's generated driver appends progress lines ("TestCaseTC0 OK!"),
//! failure descriptions, and reporter dumps into a log file. [`TestLog`]
//! accumulates the same text in memory; callers may persist it wherever
//! they like ([`TestLog::write_to`]).

use concat_bit::StateReport;
use std::fmt;
use std::io::{self, Write};

/// An append-only textual test log in the `Result.txt` format.
///
/// # Examples
///
/// ```
/// use concat_driver::TestLog;
/// use concat_bit::StateReport;
///
/// let mut log = TestLog::new();
/// log.log_pass("TC0", &StateReport::new());
/// assert!(log.render().contains("TestCaseTC0 OK!"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestLog {
    lines: Vec<String>,
}

impl TestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a free-form line.
    pub fn line(&mut self, text: impl Into<String>) {
        self.lines.push(text.into());
    }

    /// Logs a passed case plus its reporter dump (Figure 6's happy path).
    pub fn log_pass(&mut self, case_name: &str, report: &StateReport) {
        self.lines.push(format!("TestCase{case_name} OK!"));
        for (k, v) in report.iter() {
            self.lines.push(format!("  {k} = {v}"));
        }
        self.lines.push(String::new());
    }

    /// Logs a failed case: the exception text and the method that raised
    /// (Figure 6's catch block).
    pub fn log_failure(&mut self, case_name: &str, method_called: &str, message: &str) {
        self.lines.push(format!("TestCase{case_name}"));
        self.lines.push(format!("  {message}"));
        self.lines.push(format!("  Method called: {method_called}"));
        self.lines.push(String::new());
    }

    /// Number of logged lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The complete log text.
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Writes the log to any writer (e.g. a real `Result.txt`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.render().as_bytes())
    }
}

impl fmt::Display for TestLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::Value;

    #[test]
    fn pass_entries_include_report() {
        let mut log = TestLog::new();
        let mut r = StateReport::new();
        r.set("qty", Value::Int(3));
        log.log_pass("TC1", &r);
        let text = log.render();
        assert!(text.contains("TestCaseTC1 OK!"));
        assert!(text.contains("qty = 3"));
    }

    #[test]
    fn failure_entries_name_the_method() {
        let mut log = TestLog::new();
        log.log_failure("TC2", "UpdateQty(0)", "pre-condition is violated");
        let text = log.render();
        assert!(text.contains("TestCaseTC2"));
        assert!(text.contains("Method called: UpdateQty(0)"));
        assert!(text.contains("pre-condition is violated"));
    }

    #[test]
    fn empty_log_renders_empty() {
        let log = TestLog::new();
        assert!(log.is_empty());
        assert_eq!(log.render(), "");
        assert_eq!(log.to_string(), "");
    }

    #[test]
    fn write_to_round_trips() {
        let mut log = TestLog::new();
        log.line("hello");
        let mut buf = Vec::new();
        log.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "hello\n");
        assert_eq!(log.len(), 1);
    }
}
