//! The test log: the paper's `Result.txt`.
//!
//! Figure 6's generated driver appends progress lines ("TestCaseTC0 OK!"),
//! failure descriptions, and reporter dumps into a log file. [`TestLog`]
//! accumulates the same text in memory; callers may persist it wherever
//! they like ([`TestLog::write_to`], [`TestLog::write_to_path`]).
//!
//! By default the rendered text is exactly the Figure 6 format. An
//! elapsed-mode log ([`TestLog::with_elapsed`]) additionally prefixes each
//! line with the monotonic time since the log was created — the same
//! `Instant` clock telemetry spans are timed with, so the prefixes line up
//! with `case` span durations in a `concat-obs` trace.

use concat_bit::StateReport;
use concat_runtime::{IoAttempt, IoPolicy};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::time::Instant;

/// Operation label under which guarded log writes consult the fault
/// injector of their [`IoPolicy`].
pub const LOG_WRITE_OP: &str = "driver.log.write";

/// An append-only textual test log in the `Result.txt` format.
///
/// # Examples
///
/// ```
/// use concat_driver::TestLog;
/// use concat_bit::StateReport;
///
/// let mut log = TestLog::new();
/// log.log_pass("TC0", &StateReport::new());
/// assert!(log.render().contains("TestCaseTC0 OK!"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TestLog {
    lines: Vec<String>,
    /// Epoch of elapsed mode; `None` renders plain Figure 6 lines.
    epoch: Option<Instant>,
}

/// Logs compare by content: two logs are equal when they render the same
/// text, regardless of when they were created.
impl PartialEq for TestLog {
    fn eq(&self, other: &Self) -> bool {
        self.lines == other.lines
    }
}

impl TestLog {
    /// Creates an empty log (plain Figure 6 format).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log in elapsed mode: every line is prefixed with
    /// `[+  12.345ms]`, the monotonic time since this call.
    pub fn with_elapsed() -> Self {
        TestLog {
            lines: Vec::new(),
            epoch: Some(Instant::now()),
        }
    }

    /// True when lines carry elapsed-time prefixes.
    pub fn elapsed_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    fn push(&mut self, text: String) {
        match self.epoch {
            Some(epoch) if !text.is_empty() => {
                let millis = epoch.elapsed().as_secs_f64() * 1_000.0;
                self.lines.push(format!("[+{millis:>10.3}ms] {text}"));
            }
            _ => self.lines.push(text),
        }
    }

    /// Appends a free-form line.
    pub fn line(&mut self, text: impl Into<String>) {
        self.push(text.into());
    }

    /// Logs a passed case plus its reporter dump (Figure 6's happy path).
    pub fn log_pass(&mut self, case_name: &str, report: &StateReport) {
        self.push(format!("TestCase{case_name} OK!"));
        for (k, v) in report.iter() {
            self.push(format!("  {k} = {v}"));
        }
        self.push(String::new());
    }

    /// Logs a failed case: the exception text and the method that raised
    /// (Figure 6's catch block).
    pub fn log_failure(&mut self, case_name: &str, method_called: &str, message: &str) {
        self.push(format!("TestCase{case_name}"));
        self.push(format!("  {message}"));
        self.push(format!("  Method called: {method_called}"));
        self.push(String::new());
    }

    /// Number of logged lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The complete log text.
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Writes the log to any writer (e.g. a real `Result.txt`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.render().as_bytes())
    }

    /// Writes the log to a file atomically: the text lands in a temp file
    /// that is fsynced and renamed over `path`, so a kill mid-write can
    /// never leave a torn `Result.txt` — readers see the old log or the
    /// new one, nothing in between.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors with the offending path named in the error
    /// message — a bare `"permission denied"` with no path has cost
    /// debugging time before.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        concat_runtime::write_atomic(path, self.render().as_bytes()).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("failed to write test log to {}: {e}", path.display()),
            )
        })
    }

    /// Writes the log to a file under an [`IoPolicy`]: transient failures
    /// (including injected ones, op [`LOG_WRITE_OP`]) are retried with
    /// backoff; the returned [`IoAttempt`] carries the retry count so
    /// callers can account `harden.retry` telemetry. Errors name the path.
    /// The write itself is atomic (temp + fsync + rename), so even an
    /// attempt that dies mid-write leaves the previous log intact.
    pub fn write_to_path_guarded(
        &self,
        path: impl AsRef<Path>,
        policy: &IoPolicy,
    ) -> IoAttempt<()> {
        let path = path.as_ref();
        let mut attempt = policy.run(LOG_WRITE_OP, || {
            concat_runtime::write_atomic(path, self.render().as_bytes())
        });
        attempt.result = attempt.result.map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("failed to write test log to {}: {e}", path.display()),
            )
        });
        attempt
    }
}

impl fmt::Display for TestLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::Value;

    #[test]
    fn pass_entries_include_report() {
        let mut log = TestLog::new();
        let mut r = StateReport::new();
        r.set("qty", Value::Int(3));
        log.log_pass("TC1", &r);
        let text = log.render();
        assert!(text.contains("TestCaseTC1 OK!"));
        assert!(text.contains("qty = 3"));
    }

    #[test]
    fn failure_entries_name_the_method() {
        let mut log = TestLog::new();
        log.log_failure("TC2", "UpdateQty(0)", "pre-condition is violated");
        let text = log.render();
        assert!(text.contains("TestCaseTC2"));
        assert!(text.contains("Method called: UpdateQty(0)"));
        assert!(text.contains("pre-condition is violated"));
    }

    #[test]
    fn empty_log_renders_empty() {
        let log = TestLog::new();
        assert!(log.is_empty());
        assert_eq!(log.render(), "");
        assert_eq!(log.to_string(), "");
    }

    #[test]
    fn write_to_round_trips() {
        let mut log = TestLog::new();
        log.line("hello");
        let mut buf = Vec::new();
        log.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "hello\n");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn default_format_has_no_prefixes() {
        let mut log = TestLog::new();
        assert!(!log.elapsed_enabled());
        log.log_pass("TC0", &StateReport::new());
        assert!(log.render().starts_with("TestCaseTC0 OK!"));
    }

    #[test]
    fn elapsed_mode_prefixes_nonempty_lines() {
        let mut log = TestLog::with_elapsed();
        assert!(log.elapsed_enabled());
        log.log_pass("TC0", &StateReport::new());
        log.line("done");
        let text = log.render();
        for line in text.lines().filter(|l| !l.is_empty()) {
            assert!(
                line.starts_with("[+") && line.contains("ms] "),
                "line lacks elapsed prefix: {line:?}"
            );
        }
        // the blank separator line stays blank (block structure preserved)
        assert!(text.lines().any(str::is_empty));
        assert!(text.contains("ms] TestCaseTC0 OK!"));
    }

    #[test]
    fn logs_compare_by_content_not_epoch() {
        let mut a = TestLog::new();
        let mut b = TestLog::with_elapsed();
        assert_eq!(a, b, "both empty");
        a.line("x");
        assert_ne!(a, b);
        b.lines = a.lines.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn write_to_path_round_trips_and_names_path_on_error() {
        let dir = std::env::temp_dir().join("concat_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Result.txt");
        let mut log = TestLog::new();
        log.line("persisted");
        log.write_to_path(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "persisted\n");
        std::fs::remove_file(&path).unwrap();

        let bad = dir.join("no/such/dir/Result.txt");
        let err = log.write_to_path(&bad).unwrap_err();
        assert!(
            err.to_string().contains("no/such/dir"),
            "error must name the path: {err}"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn guarded_write_retries_injected_transients() {
        use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};
        let dir = std::env::temp_dir().join("concat_log_guarded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Result.txt");
        let injector = FaultInjector::seeded(11);
        injector.fail_nth(LOG_WRITE_OP, 1, FaultKind::Transient);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let mut log = TestLog::new();
        log.line("guarded");
        let attempt = log.write_to_path_guarded(&path, &policy);
        assert!(attempt.result.is_ok());
        assert_eq!(attempt.retries, 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "guarded\n");
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn guarded_write_reports_persistent_failure_with_path() {
        use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};
        let injector = FaultInjector::seeded(11);
        injector.fail_always(LOG_WRITE_OP, FaultKind::Persistent);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let log = TestLog::new();
        let attempt = log.write_to_path_guarded("/tmp/concat_never_written.txt", &policy);
        let err = attempt.result.unwrap_err();
        assert!(err.to_string().contains("concat_never_written.txt"));
        assert_eq!(attempt.attempts, 1, "persistent faults are not retried");
    }
}
