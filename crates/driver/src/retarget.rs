//! Retargeting test cases at a subclass.
//!
//! The paper implements each test case "as a template function in C++, to
//! allow its reuse when testing a subclass" (§3.4.1, Figure 6) — the same
//! call sequence is instantiated with the subclass as the class under
//! test, with only the constructor/destructor methods differing ("which
//! for this reason are not part of a test case", §3.4.2).
//!
//! [`retarget_suite`] is the Rust analogue: it rewrites a parent suite's
//! class name and lifecycle method names so the identical transactions run
//! against a subclass factory.

use crate::testcase::TestSuite;
use std::collections::BTreeMap;

/// How to map a parent suite onto a subclass.
#[derive(Debug, Clone, Default)]
pub struct RetargetMap {
    class_name: String,
    method_renames: BTreeMap<String, String>,
}

impl RetargetMap {
    /// Starts a map targeting the subclass `class_name`.
    pub fn new(class_name: impl Into<String>) -> Self {
        RetargetMap {
            class_name: class_name.into(),
            method_renames: BTreeMap::new(),
        }
    }

    /// Renames a lifecycle (or redefined-signature-compatible) method.
    pub fn rename(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.method_renames.insert(from.into(), to.into());
        self
    }

    /// The conventional constructor/destructor rename pair for a
    /// `Parent` → `Sub` hierarchy: `Parent`→`Sub`, `~Parent`→`~Sub`.
    pub fn for_subclass(parent: &str, subclass: &str) -> Self {
        RetargetMap::new(subclass)
            .rename(parent, subclass)
            .rename(format!("~{parent}"), format!("~{subclass}"))
    }

    fn apply(&self, name: &str) -> String {
        self.method_renames
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_owned())
    }
}

/// Instantiates a parent test suite against a subclass: the paper's
/// template-function reuse.
///
/// Every case keeps its id, transaction index, node path, calls and
/// argument values; only the class name and the mapped method names
/// (typically the constructor and destructor) change.
///
/// # Examples
///
/// ```
/// use concat_driver::{retarget_suite, RetargetMap, SuiteStats, TestSuite, MethodCall};
///
/// let parent = TestSuite {
///     class_name: "CObList".into(),
///     seed: 1,
///     cases: vec![],
///     stats: SuiteStats::default(),
/// };
/// let map = RetargetMap::for_subclass("CObList", "CSortableObList");
/// let sub = retarget_suite(&parent, &map);
/// assert_eq!(sub.class_name, "CSortableObList");
/// # let _ = MethodCall::generated("m", "M", vec![]);
/// ```
pub fn retarget_suite(parent: &TestSuite, map: &RetargetMap) -> TestSuite {
    let mut suite = parent.clone();
    suite.class_name = map.class_name.clone();
    for case in &mut suite.cases {
        case.constructor.method = map.apply(&case.constructor.method);
        for call in &mut case.calls {
            call.method = map.apply(&call.method);
        }
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{MethodCall, SuiteStats, TestCase};
    use concat_runtime::Value;

    fn parent_suite() -> TestSuite {
        TestSuite {
            class_name: "CObList".into(),
            seed: 9,
            cases: vec![TestCase {
                id: 0,
                transaction_index: 0,
                node_path: vec!["n1".into(), "n2".into(), "n10".into()],
                constructor: MethodCall::generated("m1", "CObList", vec![]),
                calls: vec![
                    MethodCall::generated("m2", "AddHead", vec![Value::Int(5)]),
                    MethodCall::generated("m16", "~CObList", vec![]),
                ],
            }],
            stats: SuiteStats {
                transactions: 1,
                cases: 1,
                truncated: false,
                manual_args: 0,
            },
        }
    }

    #[test]
    fn lifecycle_methods_renamed_others_kept() {
        let map = RetargetMap::for_subclass("CObList", "CSortableObList");
        let sub = retarget_suite(&parent_suite(), &map);
        assert_eq!(sub.class_name, "CSortableObList");
        let case = &sub.cases[0];
        assert_eq!(case.constructor.method, "CSortableObList");
        assert_eq!(case.calls[0].method, "AddHead");
        assert_eq!(case.calls[1].method, "~CSortableObList");
        // ids, paths and arguments untouched
        assert_eq!(case.id, 0);
        assert_eq!(case.calls[0].args, vec![Value::Int(5)]);
        assert_eq!(case.node_path, vec!["n1", "n2", "n10"]);
    }

    #[test]
    fn retarget_is_idempotent_without_renames() {
        let map = RetargetMap::new("CObList");
        let sub = retarget_suite(&parent_suite(), &map);
        assert_eq!(sub, parent_suite());
    }
}
