//! Stateful invariant fuzzing: seeded random walks over the TFM.
//!
//! Transaction-coverage generation ([`crate::DriverGenerator`]) exercises
//! each birth→death path once with a fresh object — which can never reach
//! bugs that need *long* histories or *interleaved* lifecycles. The walk
//! engine complements it: a seeded random traversal of the transaction
//! flow model drives hundreds of method calls across several concurrently
//! live objects, invoking the BIT class invariant (and the t-spec's
//! declarative invariant clauses) after every call.
//!
//! When a walk fails, [`shrink_sequence`] delta-debugs the call sequence
//! down to a shortest reproducer — dropping calls chunk-wise, then
//! shrinking generated argument values toward domain boundaries — and the
//! result is an ordinary [`WalkSequence`] that replays byte-identically
//! from its text form ([`save_sequence`] / [`load_sequence`]) and converts
//! to plain [`TestCase`]s for the committed regression suite.
//!
//! Everything is deterministic in the seed: generation never consults the
//! component, so the same seed produces the same walk, the same failure
//! and the same shrunk reproducer on every run.

use crate::inputs::InputGenerator;
use crate::persist::PersistError;
use crate::testcase::{ArgOrigin, MethodCall, TestCase};
use concat_bit::{BitControl, ComponentFactory};
use concat_runtime::{crc32, parse_value_literal, CancelToken, Rng, Value, DEADLINE_PANIC_PAYLOAD};
use concat_tfm::{NodeKind, WalkPolicy};
use concat_tspec::{ClassSpec, MethodCategory, MethodSpec};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of an invariant-fuzzing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// Master seed; each walk derives its own seed from it.
    pub seed: u64,
    /// Number of independent walks.
    pub walks: usize,
    /// Steps (constructor and method calls) per walk.
    pub calls_per_walk: usize,
    /// Concurrently live objects interleaved by one walk.
    pub objects: usize,
    /// Edge-selection policy.
    pub policy: WalkPolicy,
}

impl WalkConfig {
    /// Defaults: 8 walks × 256 calls over 2 interleaved objects with the
    /// coverage-guaranteeing least-visited policy.
    pub fn new(seed: u64) -> Self {
        WalkConfig {
            seed,
            walks: 8,
            calls_per_walk: 256,
            objects: 2,
            policy: WalkPolicy::LeastVisited,
        }
    }

    /// Sets the number of walks.
    pub fn with_walks(mut self, walks: usize) -> Self {
        self.walks = walks.max(1);
        self
    }

    /// Sets the per-walk step count.
    pub fn with_calls_per_walk(mut self, calls: usize) -> Self {
        self.calls_per_walk = calls.max(1);
        self
    }

    /// Sets the number of interleaved objects.
    pub fn with_objects(mut self, objects: usize) -> Self {
        self.objects = objects.max(1);
        self
    }

    /// Sets the edge-selection policy.
    pub fn with_policy(mut self, policy: WalkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The derived seed of walk `index`. Walks are independent streams:
    /// resuming a campaign at walk *k* reproduces walks *k..* exactly,
    /// whatever happened before.
    pub fn walk_seed(&self, index: usize) -> u64 {
        self.seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1))
    }
}

/// What a walk step does to its object slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Create the object through a birth-node constructor.
    Construct,
    /// Invoke a task/death-node method on the live object.
    Invoke,
}

/// One step of a walk: which object slot, what call, at which TFM node.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkStep {
    /// Object slot index (walks interleave several live objects).
    pub object: usize,
    /// Construct or invoke.
    pub kind: StepKind,
    /// Label of the TFM node the call was drawn from.
    pub node: String,
    /// The concrete call.
    pub call: MethodCall,
}

/// A complete generated walk: the unit of execution, shrinking, corpus
/// persistence and replay.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkSequence {
    /// Class under test.
    pub class_name: String,
    /// The derived seed this walk was generated from (0 for shrunk or
    /// hand-built sequences — the steps, not the seed, are authoritative).
    pub seed: u64,
    /// The steps, in execution order.
    pub steps: Vec<WalkStep>,
}

impl WalkSequence {
    /// Number of steps (constructors included).
    pub fn call_count(&self) -> usize {
        self.steps.len()
    }

    /// True when the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Canonical text rendering, one line per step:
    /// `s2 o0 . n3 AddHead(17)` (`+` marks constructors). Byte-equal
    /// renderings mean byte-equal sequences — the fingerprint hashes this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let mark = match s.kind {
                StepKind::Construct => '+',
                StepKind::Invoke => '.',
            };
            let _ = writeln!(
                out,
                "s{i} o{} {mark} {} {}",
                s.object,
                s.node,
                s.call.render()
            );
        }
        out
    }

    /// Content fingerprint of the rendered sequence, for corpus
    /// deduplication.
    pub fn fingerprint(&self) -> u32 {
        crc32(self.render().as_bytes())
    }

    /// Splits the walk into ordinary per-lifecycle [`TestCase`]s: each
    /// `Construct` opens a case for its slot, subsequent `Invoke`s on the
    /// slot append to it. Cases are ordered by their constructor step and
    /// numbered sequentially — ready to join a committed regression suite.
    pub fn to_test_cases(&self) -> Vec<TestCase> {
        let mut open: Vec<Option<TestCase>> = Vec::new();
        let mut done: Vec<TestCase> = Vec::new();
        let mut next_id = 0usize;
        for step in &self.steps {
            if step.object >= open.len() {
                open.resize_with(step.object + 1, || None);
            }
            match step.kind {
                StepKind::Construct => {
                    if let Some(finished) = open[step.object].take() {
                        done.push(finished);
                    }
                    open[step.object] = Some(TestCase {
                        id: next_id,
                        transaction_index: next_id,
                        node_path: vec![step.node.clone()],
                        constructor: step.call.clone(),
                        calls: Vec::new(),
                    });
                    next_id += 1;
                }
                StepKind::Invoke => {
                    if let Some(case) = open[step.object].as_mut() {
                        case.node_path.push(step.node.clone());
                        case.calls.push(step.call.clone());
                    }
                }
            }
        }
        for case in open.into_iter().flatten() {
            done.push(case);
        }
        done.sort_by_key(|c| c.id);
        done
    }
}

/// Generates one walk of `config.calls_per_walk` steps from `walk_seed`.
///
/// Generation only reads the t-spec (graph shape, method signatures,
/// parameter domains) — never the component — so a sequence regenerates
/// byte-identically from its seed regardless of how past executions went.
/// Parameters whose domains need manual completion (object/pointer kinds
/// without a provider) get a `Null` placeholder with [`ArgOrigin::Manual`].
pub fn generate_walk(spec: &ClassSpec, config: &WalkConfig, walk_seed: u64) -> WalkSequence {
    let mut rng = Rng::seed_from_u64(walk_seed);
    // A separate input stream, so adding a parameter to one method cannot
    // reshuffle every later structural choice.
    let mut inputs = InputGenerator::new(walk_seed ^ 0x5DEE_CE66_DAB0_F00Du64);
    let mut walkers: Vec<concat_tfm::EdgeWalker> = (0..config.objects)
        .map(|_| concat_tfm::EdgeWalker::new(config.policy))
        .collect();
    let mut alive = vec![false; config.objects];
    let mut steps = Vec::with_capacity(config.calls_per_walk);
    let mut stalls = 0usize;
    while steps.len() < config.calls_per_walk {
        let object = rng.index(config.objects);
        if alive[object] {
            let next = {
                let rng = &mut rng;
                let mut pick = |n: usize| rng.index(n);
                walkers[object].step(&spec.tfm, &mut pick)
            };
            match next {
                Some(node_id) => {
                    let node = spec.tfm.node(node_id);
                    let method_id = node.methods[rng.index(node.methods.len())].clone();
                    let Some(m) = spec.method(&method_id) else {
                        // Spec validation rejects dangling ids; skip
                        // defensively rather than panic mid-fuzz.
                        continue;
                    };
                    let call = draw_call(&mut inputs, m);
                    if node.kind == NodeKind::Death {
                        alive[object] = false;
                    }
                    steps.push(WalkStep {
                        object,
                        kind: StepKind::Invoke,
                        node: node.label.clone(),
                        call,
                    });
                }
                None => {
                    // Dead end without a death node: the lifecycle simply
                    // ends and the slot is reborn on its next selection.
                    alive[object] = false;
                    stalls += 1;
                    if stalls > config.calls_per_walk * 4 {
                        break;
                    }
                }
            }
        } else {
            let birth = {
                let rng = &mut rng;
                let mut pick = |n: usize| rng.index(n);
                walkers[object].restart(&spec.tfm, &mut pick)
            };
            let node = spec.tfm.node(birth);
            let method_id = node.methods[rng.index(node.methods.len())].clone();
            let Some(m) = spec.method(&method_id) else {
                continue;
            };
            let call = draw_call(&mut inputs, m);
            alive[object] = true;
            steps.push(WalkStep {
                object,
                kind: StepKind::Construct,
                node: node.label.clone(),
                call,
            });
        }
    }
    WalkSequence {
        class_name: spec.class_name.clone(),
        seed: walk_seed,
        steps,
    }
}

fn draw_call(inputs: &mut InputGenerator, m: &MethodSpec) -> MethodCall {
    let mut args = Vec::with_capacity(m.params.len());
    let mut origins = Vec::with_capacity(m.params.len());
    for p in &m.params {
        match inputs.generate(&p.domain) {
            Ok((v, o)) => {
                args.push(v);
                origins.push(o);
            }
            Err(_) => {
                args.push(Value::Null);
                origins.push(ArgOrigin::Manual);
            }
        }
    }
    MethodCall {
        method_id: m.id.clone(),
        method: m.name.clone(),
        args,
        origins,
    }
}

/// Why a walk failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The BIT class invariant fired.
    Invariant {
        /// The violation's message.
        message: String,
    },
    /// A declarative t-spec invariant clause evaluated to false.
    SpecClause {
        /// Id of the violated clause (`i1`, …).
        id: String,
    },
    /// The component panicked (exceptions are tolerated; panics are not).
    Panic {
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Invariant { message } => write!(f, "invariant violated: {message}"),
            FailureKind::SpecClause { id } => write!(f, "spec clause {id} violated"),
            FailureKind::Panic { message } => write!(f, "panicked: {message}"),
        }
    }
}

/// A failure localized to one step of a walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkFailure {
    /// Index of the step after which the failure surfaced.
    pub step: usize,
    /// Object slot the failing check belongs to.
    pub object: usize,
    /// What failed.
    pub kind: FailureKind,
}

/// Everything observable about one executed walk.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkOutcome {
    /// Deterministic per-step transcript (byte-comparable across runs).
    pub transcript: String,
    /// Invariant + clause evaluations performed.
    pub checks: u64,
    /// Steps actually executed (≤ sequence length on failure/interrupt).
    pub executed_steps: usize,
    /// The first failure, if any; execution stops at it.
    pub failure: Option<WalkFailure>,
    /// True when a cancellation/deadline interrupted the walk — the walk
    /// is then neither a pass nor a failure and must not be journaled.
    pub interrupted: bool,
}

/// Executes `seq` against `factory`: construct/invoke per step, then the
/// BIT class invariant of every live object (slot order) and every t-spec
/// invariant clause against the reporter snapshot.
///
/// Component *exceptions* are tolerated and recorded — a random walk
/// legitimately calls `RemoveHead` on an empty list. Panics, invariant
/// violations and false clauses are failures and stop the walk. A fired
/// `cancel` token (or a watchdog's deadline unwind) marks the outcome
/// interrupted instead.
pub fn execute_sequence(
    factory: &dyn ComponentFactory,
    spec: &ClassSpec,
    seq: &WalkSequence,
    ctl: &BitControl,
    cancel: Option<&CancelToken>,
) -> WalkOutcome {
    let slots_needed = seq.steps.iter().map(|s| s.object + 1).max().unwrap_or(0);
    let mut slots: Vec<Option<Box<dyn concat_bit::TestableComponent>>> = Vec::new();
    slots.resize_with(slots_needed, || None);
    let mut lines: Vec<String> = Vec::with_capacity(seq.steps.len());
    let mut checks = 0u64;
    let mut executed_steps = 0usize;
    let mut failure: Option<WalkFailure> = None;
    let mut interrupted = false;

    'steps: for (i, step) in seq.steps.iter().enumerate() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            interrupted = true;
            break;
        }
        let head = format!("s{i} o{} {}", step.object, step.call.render());
        match step.kind {
            StepKind::Construct => {
                let built = catch_unwind(AssertUnwindSafe(|| {
                    factory.construct(&step.call.method, &step.call.args, ctl.clone())
                }));
                match built {
                    Ok(Ok(c)) => {
                        slots[step.object] = Some(c);
                        lines.push(format!("{head} -> ok"));
                    }
                    Ok(Err(exc)) => {
                        slots[step.object] = None;
                        lines.push(format!("{head} -> raised [{}] {exc}", exc.tag()));
                    }
                    Err(panic) => {
                        if is_deadline_payload(panic.as_ref()) {
                            interrupted = true;
                            break;
                        }
                        let message = panic_message(panic);
                        lines.push(format!("{head} -> panicked: {message}"));
                        failure = Some(WalkFailure {
                            step: i,
                            object: step.object,
                            kind: FailureKind::Panic { message },
                        });
                        executed_steps = i + 1;
                        break;
                    }
                }
            }
            StepKind::Invoke => match slots[step.object].as_mut() {
                None => lines.push(format!("{head} -> skipped")),
                Some(component) => {
                    let invoked = catch_unwind(AssertUnwindSafe(|| {
                        component.invoke(&step.call.method, &step.call.args)
                    }));
                    match invoked {
                        Ok(Ok(v)) => lines.push(format!("{head} -> {}", v.to_literal())),
                        Ok(Err(exc)) => {
                            lines.push(format!("{head} -> raised [{}] {exc}", exc.tag()))
                        }
                        Err(panic) => {
                            if is_deadline_payload(panic.as_ref()) {
                                interrupted = true;
                                break 'steps;
                            }
                            let message = panic_message(panic);
                            lines.push(format!("{head} -> panicked: {message}"));
                            failure = Some(WalkFailure {
                                step: i,
                                object: step.object,
                                kind: FailureKind::Panic { message },
                            });
                            executed_steps = i + 1;
                            break 'steps;
                        }
                    }
                    let is_dtor = spec
                        .method(&step.call.method_id)
                        .is_some_and(|m| m.category == MethodCategory::Destructor);
                    if is_dtor {
                        slots[step.object] = None;
                    }
                }
            },
        }
        executed_steps = i + 1;
        // Check every live object after every step: the paper's "invariant
        // around every call", widened to interleaved lifecycles.
        for (oi, slot) in slots.iter().enumerate() {
            let Some(component) = slot else { continue };
            checks += 1;
            if let Err(v) = component.invariant_test() {
                let message = v.to_string();
                lines.push(format!("s{i} o{oi} ! invariant: {message}"));
                failure = Some(WalkFailure {
                    step: i,
                    object: oi,
                    kind: FailureKind::Invariant { message },
                });
                break 'steps;
            }
            if !spec.invariants.is_empty() {
                let report = component.reporter();
                for inv in &spec.invariants {
                    checks += 1;
                    if inv.eval(&|name| report.get(name).cloned()) == Some(false) {
                        lines.push(format!("s{i} o{oi} ! clause {}: {}", inv.id, inv.render()));
                        failure = Some(WalkFailure {
                            step: i,
                            object: oi,
                            kind: FailureKind::SpecClause { id: inv.id.clone() },
                        });
                        break 'steps;
                    }
                }
            }
        }
    }

    let mut transcript = lines.join("\n");
    if !transcript.is_empty() {
        transcript.push('\n');
    }
    WalkOutcome {
        transcript,
        checks,
        executed_steps,
        failure,
        interrupted,
    }
}

/// Bound on shrink fixpoint rounds — each round only keeps a candidate
/// that still fails, so this is a safety valve, not a tuning knob.
const MAX_SHRINK_ROUNDS: usize = 8;

/// Delta-debugs a failing sequence to a (locally) minimal reproducer.
///
/// Pipeline, repeated to a fixpoint: truncate at the failing step → ddmin
/// chunk removal (halving chunk sizes) with orphan-invoke normalization →
/// per-argument shrinking toward domain boundary values. The oracle is
/// "still fails with the same [`FailureKind`]". A passing sequence is
/// returned unchanged, and shrinking a shrunk sequence is the identity
/// (the fixpoint property the test suite asserts).
pub fn shrink_sequence(
    factory: &dyn ComponentFactory,
    spec: &ClassSpec,
    seq: &WalkSequence,
    ctl: &BitControl,
) -> WalkSequence {
    let first = execute_sequence(factory, spec, seq, ctl, None);
    let Some(target) = first.failure else {
        return seq.clone();
    };
    let target_kind = target.kind;
    let still_fails = |steps: &[WalkStep]| -> bool {
        if steps.is_empty() {
            return false;
        }
        let cand = WalkSequence {
            class_name: seq.class_name.clone(),
            seed: seq.seed,
            steps: steps.to_vec(),
        };
        execute_sequence(factory, spec, &cand, ctl, None)
            .failure
            .map(|f| f.kind)
            == Some(target_kind.clone())
    };

    let mut steps = seq.steps.clone();
    steps.truncate(target.step + 1);

    for _ in 0..MAX_SHRINK_ROUNDS {
        let before = steps.clone();

        // ddmin: remove chunks, largest first.
        let mut chunk = (steps.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < steps.len() {
                let mut cand: Vec<WalkStep> = Vec::with_capacity(steps.len());
                cand.extend_from_slice(&steps[..i]);
                cand.extend_from_slice(&steps[(i + chunk).min(steps.len())..]);
                normalize(&mut cand);
                if still_fails(&cand) {
                    steps = cand;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Argument shrinking: replace generated values with domain
        // boundary values where the failure survives.
        for si in 0..steps.len() {
            let Some(m) = spec.method(&steps[si].call.method_id) else {
                continue;
            };
            let params = m.params.clone();
            for (ai, p) in params.iter().enumerate() {
                if ai >= steps[si].call.args.len() {
                    break;
                }
                for b in p.domain.boundary_values() {
                    if b == steps[si].call.args[ai] {
                        continue;
                    }
                    let mut cand = steps.clone();
                    cand[si].call.args[ai] = b;
                    cand[si].call.origins[ai] = ArgOrigin::Boundary;
                    if still_fails(&cand) {
                        steps = cand;
                        break;
                    }
                }
            }
        }

        if steps == before {
            break;
        }
    }

    WalkSequence {
        class_name: seq.class_name.clone(),
        seed: seq.seed,
        steps,
    }
}

/// Drops invoke steps whose object slot cannot be live at that point: no
/// preceding construct, or a destructor already ran. Keeps candidates
/// honest — a "skipped" invoke contributes nothing to a reproducer.
fn normalize(steps: &mut Vec<WalkStep>) {
    let mut live: Vec<bool> = Vec::new();
    steps.retain(|s| {
        if s.object >= live.len() {
            live.resize(s.object + 1, false);
        }
        match s.kind {
            StepKind::Construct => {
                live[s.object] = true;
                true
            }
            StepKind::Invoke => live[s.object],
        }
    });
}

/// Serializes a sequence to the corpus/journal text form.
///
/// ```text
/// walk CSortableObList
/// seed 42
/// step 0 c n1 m1 CSortableObList - []
/// step 0 i n2 m2 AddHead g [3]
/// end
/// ```
pub fn save_sequence(seq: &WalkSequence) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "walk {}", seq.class_name);
    let _ = writeln!(out, "seed {}", seq.seed);
    for s in &seq.steps {
        let kind = match s.kind {
            StepKind::Construct => 'c',
            StepKind::Invoke => 'i',
        };
        let origins: String = if s.call.origins.is_empty() {
            "-".into()
        } else {
            s.call
                .origins
                .iter()
                .map(|o| match o {
                    ArgOrigin::Generated => 'g',
                    ArgOrigin::Boundary => 'b',
                    ArgOrigin::Provided => 'p',
                    ArgOrigin::Manual => 'm',
                })
                .collect()
        };
        let args = Value::List(s.call.args.clone()).to_literal();
        let _ = writeln!(
            out,
            "step {} {kind} {} {} {} {origins} {args}",
            s.object, s.node, s.call.method_id, s.call.method
        );
    }
    let _ = writeln!(out, "end");
    out
}

fn serr(line: usize, message: impl Into<String>) -> PersistError {
    PersistError {
        line,
        message: message.into(),
    }
}

/// Parses the [`save_sequence`] form back; `save_sequence(load_sequence(t))
/// == t` for any saved `t`.
pub fn load_sequence(text: &str) -> Result<WalkSequence, PersistError> {
    let mut class_name: Option<String> = None;
    let mut seed = 0u64;
    let mut steps: Vec<WalkStep> = Vec::new();
    let mut ended = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if ended {
            return Err(serr(line_no, "content after `end`"));
        }
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "walk" => {
                if rest.is_empty() {
                    return Err(serr(line_no, "walk needs a class name"));
                }
                class_name = Some(rest.to_owned());
            }
            "seed" => {
                seed = rest
                    .parse()
                    .map_err(|_| serr(line_no, "seed must be an integer"))?;
            }
            "step" => {
                let mut parts = rest.splitn(7, ' ');
                let object = parts.next();
                let kind = parts.next();
                let node = parts.next();
                let method_id = parts.next();
                let method = parts.next();
                let origins = parts.next();
                let args = parts.next();
                let (
                    Some(object),
                    Some(kind),
                    Some(node),
                    Some(method_id),
                    Some(method),
                    Some(origins),
                    Some(args),
                ) = (object, kind, node, method_id, method, origins, args)
                else {
                    return Err(serr(
                        line_no,
                        "step needs: <obj> <c|i> <node> <id> <name> <origins> <args>",
                    ));
                };
                let object: usize = object
                    .parse()
                    .map_err(|_| serr(line_no, "object must be an integer"))?;
                let kind = match kind {
                    "c" => StepKind::Construct,
                    "i" => StepKind::Invoke,
                    other => return Err(serr(line_no, format!("unknown step kind `{other}`"))),
                };
                let args = match parse_value_literal(args) {
                    Ok(Value::List(items)) => items,
                    Ok(_) => return Err(serr(line_no, "arguments must be a list literal")),
                    Err(e) => return Err(serr(line_no, e.to_string())),
                };
                let origins: Vec<ArgOrigin> = if origins == "-" {
                    Vec::new()
                } else {
                    origins
                        .chars()
                        .map(|c| match c {
                            'g' => Ok(ArgOrigin::Generated),
                            'b' => Ok(ArgOrigin::Boundary),
                            'p' => Ok(ArgOrigin::Provided),
                            'm' => Ok(ArgOrigin::Manual),
                            other => Err(serr(line_no, format!("unknown origin code `{other}`"))),
                        })
                        .collect::<Result<_, _>>()?
                };
                if origins.len() != args.len() {
                    return Err(serr(line_no, "origin count differs from argument count"));
                }
                steps.push(WalkStep {
                    object,
                    kind,
                    node: node.to_owned(),
                    call: MethodCall {
                        method_id: method_id.to_owned(),
                        method: method.to_owned(),
                        args,
                        origins,
                    },
                });
            }
            "end" => ended = true,
            other => return Err(serr(line_no, format!("unknown keyword `{other}`"))),
        }
    }
    let Some(class_name) = class_name else {
        return Err(serr(1, "missing `walk <class>` header"));
    };
    if !ended {
        return Err(serr(text.lines().count().max(1), "missing `end`"));
    }
    Ok(WalkSequence {
        class_name,
        seed,
        steps,
    })
}

/// Aggregate statistics of an invariant campaign, rendered by the report
/// crate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvariantSummary {
    /// Class under test.
    pub class_name: String,
    /// Master seed.
    pub seed: u64,
    /// Walks executed (journal-resumed walks included).
    pub walks: u64,
    /// Steps executed across all walks.
    pub calls: u64,
    /// Invariant + clause evaluations performed.
    pub checks: u64,
    /// Walks that failed.
    pub failures: u64,
    /// Corpus sequences replayed before fuzzing.
    pub replayed: u64,
    /// Replayed sequences that still fail.
    pub replayed_failing: u64,
    /// Total steps of failing walks before shrinking.
    pub original_calls: u64,
    /// Total steps of the shrunk reproducers.
    pub shrunk_calls: u64,
    /// True when budget/deadline stopped the campaign early (resumable
    /// from the journal).
    pub stopped: bool,
}

/// One failing sequence distilled by an invariant campaign: where it came
/// from, why it failed, and its minimized reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantBreaker {
    /// Index of the walk that discovered it; `None` for corpus replays.
    pub walk: Option<usize>,
    /// True when the sequence was replayed from the persistent corpus.
    pub from_corpus: bool,
    /// Why the sequence failed.
    pub failure: FailureKind,
    /// Steps executed by the original failing sequence.
    pub original_calls: usize,
    /// The shrunk reproducer (for corpus replays, the replayed sequence
    /// itself — it was already shrunk when deposited).
    pub shrunk: WalkSequence,
}

fn is_deadline_payload(panic: &(dyn std::any::Any + Send)) -> bool {
    panic.downcast_ref::<&str>() == Some(&DEADLINE_PANIC_PAYLOAD)
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_bit::{BuiltInTest, StateReport, TestableComponent};
    use concat_runtime::{
        args, unknown_method, AssertionViolation, Component, InvokeResult, TestException,
    };
    use concat_tspec::{ClassSpecBuilder, Domain, InvariantOp, InvariantTerm};

    /// A counter whose invariant (`n >= 0`) breaks only after `Sub` drives
    /// it below zero — which random walks will eventually do.
    struct Counter {
        n: i64,
        ctl: BitControl,
    }

    impl Component for Counter {
        fn class_name(&self) -> &'static str {
            "Counter"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Add", "Sub", "Total", "~Counter"]
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            match m {
                "Add" => {
                    self.n += args::int(m, a, 0)?;
                    Ok(Value::Null)
                }
                "Sub" => {
                    self.n -= args::int(m, a, 0)?;
                    Ok(Value::Null)
                }
                "Total" => Ok(Value::Int(self.n)),
                "~Counter" => Ok(Value::Null),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for Counter {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            concat_bit::check(
                &self.ctl,
                concat_runtime::AssertionKind::Invariant,
                "Counter",
                "",
                "n >= 0",
                self.n >= 0,
            )
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            r.set("n", Value::Int(self.n));
            r
        }
    }

    struct CounterFactory;
    impl ComponentFactory for CounterFactory {
        fn class_name(&self) -> &str {
            "Counter"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Counter" => Ok(Box::new(Counter { n: 0, ctl })),
                other => Err(unknown_method("Counter", other)),
            }
        }
    }

    fn counter_spec() -> ClassSpec {
        ClassSpecBuilder::new("Counter")
            .attribute("n", Domain::int_range(-99, 99))
            .constructor("m1", "Counter")
            .method("m2", "Add", concat_tspec::MethodCategory::Update)
            .param("q", Domain::int_range(0, 9))
            .method("m3", "Sub", concat_tspec::MethodCategory::Update)
            .param("q", Domain::int_range(0, 9))
            .method("m4", "Total", concat_tspec::MethodCategory::Access)
            .destructor("m5", "~Counter")
            .invariant(
                "i1",
                "total is capped",
                InvariantTerm::field("n"),
                InvariantOp::Le,
                InvariantTerm::int(99),
            )
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2", "m3"])
            .task_node("n3", ["m4"])
            .death_node("n4", ["m5"])
            .edge("n1", "n2")
            .edge("n2", "n2")
            .edge("n2", "n3")
            .edge("n3", "n2")
            .edge("n2", "n4")
            .edge("n3", "n4")
            .build()
            .unwrap()
    }

    fn find_failing_walk(spec: &ClassSpec, config: &WalkConfig) -> (WalkSequence, WalkOutcome) {
        let ctl = BitControl::new_enabled();
        for w in 0..config.walks {
            let seq = generate_walk(spec, config, config.walk_seed(w));
            let out = execute_sequence(&CounterFactory, spec, &seq, &ctl, None);
            if out.failure.is_some() {
                return (seq, out);
            }
        }
        panic!("no failing walk found — enlarge the config");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = counter_spec();
        let config = WalkConfig::new(7);
        let a = generate_walk(&spec, &config, config.walk_seed(0));
        let b = generate_walk(&spec, &config, config.walk_seed(0));
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.call_count(), config.calls_per_walk);
        let c = generate_walk(&spec, &config, config.walk_seed(1));
        assert_ne!(a.render(), c.render(), "distinct walks differ");
    }

    #[test]
    fn execution_is_deterministic_and_finds_the_bug() {
        let spec = counter_spec();
        let config = WalkConfig::new(11).with_walks(16);
        let (seq, out) = find_failing_walk(&spec, &config);
        let ctl = BitControl::new_enabled();
        let again = execute_sequence(&CounterFactory, &spec, &seq, &ctl, None);
        assert_eq!(out, again, "same sequence, byte-identical outcome");
        assert!(matches!(
            out.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Invariant { .. })
        ));
        assert!(out.transcript.contains("! invariant"));
    }

    #[test]
    fn shrinking_minimizes_and_is_idempotent() {
        let spec = counter_spec();
        let config = WalkConfig::new(11).with_walks(16);
        let (seq, _) = find_failing_walk(&spec, &config);
        let ctl = BitControl::new_enabled();
        let shrunk = shrink_sequence(&CounterFactory, &spec, &seq, &ctl);
        assert!(shrunk.call_count() < seq.call_count());
        // Minimal Counter repro: construct + one Sub. (The invariant fires
        // after any negative excursion; the boundary shrink drives the Sub
        // argument to the domain edge.)
        assert!(shrunk.call_count() <= 3, "{}", shrunk.render());
        let again = shrink_sequence(&CounterFactory, &spec, &shrunk, &ctl);
        assert_eq!(again, shrunk, "shrinking is a fixpoint");
        // Shrunk sequence still fails with the same kind.
        let out = execute_sequence(&CounterFactory, &spec, &shrunk, &ctl, None);
        assert!(matches!(
            out.failure.map(|f| f.kind),
            Some(FailureKind::Invariant { .. })
        ));
    }

    #[test]
    fn passing_sequences_shrink_to_themselves() {
        let spec = counter_spec();
        let seq = WalkSequence {
            class_name: "Counter".into(),
            seed: 0,
            steps: vec![WalkStep {
                object: 0,
                kind: StepKind::Construct,
                node: "n1".into(),
                call: MethodCall::generated("m1", "Counter", vec![]),
            }],
        };
        let ctl = BitControl::new_enabled();
        assert_eq!(shrink_sequence(&CounterFactory, &spec, &seq, &ctl), seq);
    }

    #[test]
    fn save_load_round_trip() {
        let spec = counter_spec();
        let config = WalkConfig::new(3).with_calls_per_walk(20);
        let seq = generate_walk(&spec, &config, config.walk_seed(0));
        let text = save_sequence(&seq);
        let back = load_sequence(&text).unwrap();
        assert_eq!(back, seq);
        assert_eq!(save_sequence(&back), text);
    }

    #[test]
    fn load_rejects_malformed_input() {
        assert!(load_sequence("").is_err());
        assert!(load_sequence("walk C\nseed 1\n").is_err(), "missing end");
        assert!(load_sequence("walk C\nstep 0 x n1 m1 M - []\nend").is_err());
        assert!(load_sequence("walk C\nstep 0 c n1 m1 M g []\nend").is_err());
        let err = load_sequence("walk C\nbogus line\nend").unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn spec_clause_failures_are_detected() {
        // The i1 clause caps n at 99; the BIT invariant only checks n >= 0.
        let spec = counter_spec();
        let mut steps = vec![WalkStep {
            object: 0,
            kind: StepKind::Construct,
            node: "n1".into(),
            call: MethodCall::generated("m1", "Counter", vec![]),
        }];
        for _ in 0..12 {
            steps.push(WalkStep {
                object: 0,
                kind: StepKind::Invoke,
                node: "n2".into(),
                call: MethodCall::generated("m2", "Add", vec![Value::Int(9)]),
            });
        }
        let seq = WalkSequence {
            class_name: "Counter".into(),
            seed: 0,
            steps,
        };
        let ctl = BitControl::new_enabled();
        let out = execute_sequence(&CounterFactory, &spec, &seq, &ctl, None);
        assert_eq!(
            out.failure.map(|f| f.kind),
            Some(FailureKind::SpecClause { id: "i1".into() })
        );
        assert!(out.transcript.contains("! clause i1"));
    }

    #[test]
    fn to_test_cases_groups_lifecycles() {
        let mk = |object, kind, node: &str, id: &str, name: &str| WalkStep {
            object,
            kind,
            node: node.into(),
            call: MethodCall::generated(id, name, vec![]),
        };
        let seq = WalkSequence {
            class_name: "Counter".into(),
            seed: 0,
            steps: vec![
                mk(0, StepKind::Construct, "n1", "m1", "Counter"),
                mk(1, StepKind::Construct, "n1", "m1", "Counter"),
                mk(0, StepKind::Invoke, "n3", "m4", "Total"),
                mk(1, StepKind::Invoke, "n4", "m5", "~Counter"),
                mk(1, StepKind::Construct, "n1", "m1", "Counter"),
            ],
        };
        let cases = seq.to_test_cases();
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].calls.len(), 1);
        assert_eq!(cases[0].calls[0].method, "Total");
        assert_eq!(cases[1].calls[0].method, "~Counter");
        assert_eq!(cases[2].calls.len(), 0);
        assert_eq!(cases[0].node_path, vec!["n1", "n3"]);
    }

    #[test]
    fn cancel_token_interrupts_cleanly() {
        let spec = counter_spec();
        let config = WalkConfig::new(5).with_calls_per_walk(50);
        let seq = generate_walk(&spec, &config, config.walk_seed(0));
        let ctl = BitControl::new_enabled();
        let token = CancelToken::new();
        token.cancel();
        let out = execute_sequence(&CounterFactory, &spec, &seq, &ctl, Some(&token));
        assert!(out.interrupted);
        assert_eq!(out.executed_steps, 0);
        assert!(out.failure.is_none());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let spec = counter_spec();
        let config = WalkConfig::new(9).with_calls_per_walk(10);
        let a = generate_walk(&spec, &config, config.walk_seed(0));
        let b = generate_walk(&spec, &config, config.walk_seed(1));
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn walk_config_derives_distinct_seeds() {
        let c = WalkConfig::new(1);
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| c.walk_seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }
}
