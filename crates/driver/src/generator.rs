//! The Driver Generator (paper §3.4.1).
//!
//! "Test selection is entirely performed by the *Driver Generator* … The
//! Driver Generator creates test cases according to the transaction coverage
//! criterion that requires exercising each individual transaction at least
//! once." Each test case exercises one birth→death path; nodes grouping
//! alternative methods are expanded into one case per alternative; argument
//! values come from the [`crate::InputGenerator`].

use crate::inputs::{InputError, InputGenerator};
use crate::testcase::{ArgOrigin, MethodCall, SuiteStats, TestCase, TestSuite};
use concat_obs::Telemetry;
use concat_runtime::Value;
use concat_tfm::{enumerate_transactions_with, EnumerationConfig};
use concat_tspec::{ClassSpec, MethodCategory, MethodSpec, SpecError};
use std::fmt;

/// How node alternatives are expanded into concrete test cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    /// Full cartesian product over node alternatives, capped per
    /// transaction (flagged, never silent). Exhaustive but explosive.
    Cartesian {
        /// Cap on expansions per transaction.
        max_cases_per_transaction: usize,
    },
    /// Covering expansion: per transaction, `repeats × max_alternatives`
    /// cases, rotating through each node's alternatives (offset by node
    /// position) so every alternative of every node is exercised, with
    /// fresh random argument values per case. This is the default — it
    /// matches the paper's test-set scale (one driver per transaction,
    /// a few hundred cases per class).
    Covering {
        /// Value-resampling rounds per transaction.
        repeats: usize,
    },
}

/// Configuration of the driver generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Seed for the input generator (recorded in the suite).
    pub seed: u64,
    /// Maximum traversals of one TFM edge per transaction.
    pub cycle_bound: usize,
    /// Cap on enumerated transactions (flagged, never silent).
    pub max_transactions: usize,
    /// Alternative-expansion strategy.
    pub expansion: Expansion,
    /// Draw argument values from each domain's boundary set (min/max of
    /// ranges, empty/max-length collections) instead of uniformly. Used
    /// by the test amplifier's boundary strategy; domains without
    /// boundary values fall back to uniform draws.
    pub boundary_inputs: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0xC0C0A7,
            cycle_bound: 1,
            max_transactions: 50_000,
            expansion: Expansion::Covering { repeats: 3 },
            boundary_inputs: false,
        }
    }
}

/// Failures of the generation step.
#[derive(Debug, Clone, PartialEq)]
pub enum GenerateError {
    /// The spec failed validation; fix it before generating.
    InvalidSpec(Vec<SpecError>),
    /// A birth node method is not a constructor (or a death node method is
    /// not a destructor), so the transaction cannot create/destroy the
    /// object.
    BadLifecycleMethod {
        /// The offending method name.
        method: String,
        /// What it was expected to be.
        expected: &'static str,
    },
    /// The model yields no transaction at all.
    NoTransactions,
    /// An argument domain failed (empty domain slipping past validation).
    Input(InputError),
    /// A transaction step references a method id the spec does not
    /// declare — a model/interface mismatch that validation should have
    /// caught; reported instead of panicking mid-generation.
    UnknownMethodId {
        /// The dangling method id.
        method_id: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::InvalidSpec(errs) => {
                write!(
                    f,
                    "specification is invalid ({} problem(s)); first: {}",
                    errs.len(),
                    errs.first().map_or_else(String::new, |e| e.to_string())
                )
            }
            GenerateError::BadLifecycleMethod { method, expected } => {
                write!(f, "method {method} must be a {expected}")
            }
            GenerateError::NoTransactions => f.write_str("model yields no transactions"),
            GenerateError::Input(e) => write!(f, "input generation failed: {e}"),
            GenerateError::UnknownMethodId { method_id } => {
                write!(f, "transaction references undeclared method id {method_id}")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<InputError> for GenerateError {
    fn from(e: InputError) -> Self {
        GenerateError::Input(e)
    }
}

/// The consumer-side test case generator of the Concat tool.
///
/// # Examples
///
/// ```
/// use concat_driver::{DriverGenerator, GeneratorConfig};
/// use concat_tspec::{ClassSpecBuilder, Domain, MethodCategory};
///
/// let spec = ClassSpecBuilder::new("Counter")
///     .constructor("m1", "Counter")
///     .method("m2", "Add", MethodCategory::Update)
///     .param("q", Domain::int_range(0, 9))
///     .destructor("m3", "~Counter")
///     .birth_node("n1", ["m1"])
///     .task_node("n2", ["m2"])
///     .death_node("n3", ["m3"])
///     .edge("n1", "n2")
///     .edge("n2", "n3")
///     .edge("n1", "n3")
///     .build()
///     .unwrap();
///
/// let mut gen = DriverGenerator::new(GeneratorConfig { seed: 7, ..Default::default() });
/// let suite = gen.generate(&spec).unwrap();
/// // two transactions x three covering repeats (default expansion)
/// assert_eq!(suite.len(), 6);
/// ```
pub struct DriverGenerator {
    config: GeneratorConfig,
    inputs: InputGenerator,
    telemetry: Telemetry,
}

impl fmt::Debug for DriverGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DriverGenerator")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DriverGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        DriverGenerator {
            config,
            inputs: InputGenerator::new(config.seed),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each generation run emits a
    /// `generate` span plus `gen.cases` / `gen.domains_sampled` /
    /// `gen.manual_args` counters and a `gen.transactions` gauge.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Creates a generator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    /// Access to the input generator, e.g. to register object providers
    /// before generating.
    pub fn inputs_mut(&mut self) -> &mut InputGenerator {
        &mut self.inputs
    }

    /// Generates the transaction-covering test suite for `spec`.
    ///
    /// # Errors
    ///
    /// See [`GenerateError`]. Object/pointer parameters without a provider
    /// do *not* fail generation: they become `Null` placeholder arguments
    /// with [`ArgOrigin::Manual`], counted in
    /// [`SuiteStats::manual_args`] — the paper's "must be completed
    /// manually by the tester".
    pub fn generate(&mut self, spec: &ClassSpec) -> Result<TestSuite, GenerateError> {
        self.generate_selected(spec, None)
    }

    /// Generates cases only for the transaction indices in `selection`
    /// (used by the incremental-reuse workflow); `None` means all.
    ///
    /// # Errors
    ///
    /// See [`GenerateError`].
    pub fn generate_selected(
        &mut self,
        spec: &ClassSpec,
        selection: Option<&[usize]>,
    ) -> Result<TestSuite, GenerateError> {
        let _span = self.telemetry.span("generate", &spec.class_name);
        let problems = spec.validate();
        if !problems.is_empty() {
            return Err(GenerateError::InvalidSpec(problems));
        }
        let set = enumerate_transactions_with(
            &spec.tfm,
            EnumerationConfig {
                cycle_bound: self.config.cycle_bound,
                max_transactions: self.config.max_transactions,
            },
        );
        if set.is_empty() {
            return Err(GenerateError::NoTransactions);
        }
        let mut cases = Vec::new();
        let mut manual_args = 0usize;
        let mut domains_sampled = 0usize;
        let mut per_txn_truncated = false;
        for (txn_index, txn) in set.iter().enumerate() {
            if let Some(sel) = selection {
                if !sel.contains(&txn_index) {
                    continue;
                }
            }
            let node_path: Vec<String> = txn
                .nodes
                .iter()
                .map(|id| spec.tfm.node(*id).label.clone())
                .collect();
            let sequences = match self.config.expansion {
                Expansion::Cartesian {
                    max_cases_per_transaction,
                } => {
                    let mut seqs = txn.method_sequences(&spec.tfm);
                    if seqs.len() > max_cases_per_transaction {
                        seqs.truncate(max_cases_per_transaction);
                        per_txn_truncated = true;
                    }
                    seqs
                }
                Expansion::Covering { repeats } => covering_sequences(spec, txn, repeats),
            };
            for seq in sequences {
                let mut calls = Vec::with_capacity(seq.len());
                for (pos, method_id) in seq.iter().enumerate() {
                    let m =
                        spec.method(method_id)
                            .ok_or_else(|| GenerateError::UnknownMethodId {
                                method_id: method_id.clone(),
                            })?;
                    let is_first = pos == 0;
                    let is_last = pos == seq.len() - 1;
                    if is_first && m.category != MethodCategory::Constructor {
                        return Err(GenerateError::BadLifecycleMethod {
                            method: m.name.clone(),
                            expected: "constructor",
                        });
                    }
                    if is_last && m.category != MethodCategory::Destructor {
                        return Err(GenerateError::BadLifecycleMethod {
                            method: m.name.clone(),
                            expected: "destructor",
                        });
                    }
                    let call = self.build_call(m, &mut manual_args, &mut domains_sampled)?;
                    calls.push(call);
                }
                let constructor = calls.remove(0);
                cases.push(TestCase {
                    id: cases.len(),
                    transaction_index: txn_index,
                    node_path: node_path.clone(),
                    constructor,
                    calls,
                });
            }
        }
        let stats = SuiteStats {
            transactions: set.len(),
            cases: cases.len(),
            truncated: set.truncated || per_txn_truncated,
            manual_args,
        };
        if self.telemetry.is_enabled() {
            self.telemetry.incr_by("gen.cases", cases.len() as u64);
            self.telemetry
                .incr_by("gen.domains_sampled", domains_sampled as u64);
            self.telemetry
                .incr_by("gen.manual_args", manual_args as u64);
            self.telemetry.gauge("gen.transactions", set.len() as i64);
        }
        Ok(TestSuite {
            class_name: spec.class_name.clone(),
            seed: self.config.seed,
            cases,
            stats,
        })
    }

    fn build_call(
        &mut self,
        m: &MethodSpec,
        manual_args: &mut usize,
        domains_sampled: &mut usize,
    ) -> Result<MethodCall, GenerateError> {
        let mut args = Vec::with_capacity(m.params.len());
        let mut origins = Vec::with_capacity(m.params.len());
        for p in &m.params {
            let drawn = if self.config.boundary_inputs {
                self.inputs.generate_boundary(&p.domain)
            } else {
                self.inputs.generate(&p.domain)
            };
            match drawn {
                Ok((v, origin)) => {
                    *domains_sampled += 1;
                    args.push(v);
                    origins.push(origin);
                }
                Err(InputError::NeedsManualCompletion { .. }) => {
                    *manual_args += 1;
                    args.push(Value::Null);
                    origins.push(ArgOrigin::Manual);
                }
                Err(e @ InputError::EmptyDomain) => return Err(e.into()),
            }
        }
        Ok(MethodCall {
            method_id: m.id.clone(),
            method: m.name.clone(),
            args,
            origins,
        })
    }
}

/// Covering expansion of one transaction.
///
/// Round `k` selects alternative `(k + node_position) % alternatives` at
/// every node, so across `max_alternatives` rounds every alternative of
/// every node appears at least once, and choices at different nodes are
/// decorrelated by the position offset. Each of the `repeats` repeats
/// re-emits all rounds (argument values are resampled per emitted case by
/// the caller's input generator).
fn covering_sequences(
    spec: &ClassSpec,
    txn: &concat_tfm::Transaction,
    repeats: usize,
) -> Vec<Vec<String>> {
    let alts: Vec<&[String]> = txn
        .nodes
        .iter()
        .map(|id| spec.tfm.node(*id).methods.as_slice())
        .collect();
    let max_alts = alts.iter().map(|a| a.len()).max().unwrap_or(1);
    let mut out = Vec::with_capacity(repeats * max_alts);
    for _ in 0..repeats.max(1) {
        for k in 0..max_alts {
            let seq: Vec<String> = alts
                .iter()
                .enumerate()
                .map(|(pos, node_alts)| node_alts[(k + pos) % node_alts.len()].clone())
                .collect();
            out.push(seq);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_tspec::ClassSpecBuilder;
    use concat_tspec::Domain;

    fn counter_spec() -> ClassSpec {
        ClassSpecBuilder::new("Counter")
            .constructor("m1", "Counter")
            .method("m2", "Add", MethodCategory::Update)
            .param("q", Domain::int_range(0, 9))
            .destructor("m3", "~Counter")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .edge("n1", "n3")
            .build()
            .unwrap()
    }

    #[test]
    fn covering_produces_repeats_per_transaction() {
        let mut gen = DriverGenerator::with_seed(11);
        let suite = gen.generate(&counter_spec()).unwrap();
        assert_eq!(suite.stats.transactions, 2);
        // default expansion: 3 repeats x 1 alternative per transaction
        assert_eq!(suite.len(), 6);
        assert!(!suite.stats.truncated);
        assert_eq!(suite.class_name, "Counter");
        // every transaction is covered at least once
        let covered: std::collections::BTreeSet<usize> =
            suite.iter().map(|c| c.transaction_index).collect();
        assert_eq!(covered.len(), 2);
    }

    #[test]
    fn cartesian_yields_one_case_per_sequence() {
        let mut gen = DriverGenerator::new(GeneratorConfig {
            seed: 11,
            expansion: Expansion::Cartesian {
                max_cases_per_transaction: 256,
            },
            ..GeneratorConfig::default()
        });
        let suite = gen.generate(&counter_spec()).unwrap();
        assert_eq!(suite.len(), 2);
    }

    #[test]
    fn arguments_respect_domains() {
        let mut gen = DriverGenerator::with_seed(12);
        let suite = gen.generate(&counter_spec()).unwrap();
        for case in &suite {
            for call in &case.calls {
                if call.method == "Add" {
                    let v = call.args[0].as_int().unwrap();
                    assert!((0..=9).contains(&v));
                }
            }
        }
    }

    #[test]
    fn alternatives_multiply_cases() {
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .constructor("m1b", "C2")
            .method("m2", "W", MethodCategory::Update)
            .destructor("m3", "~C")
            .birth_node("n1", ["m1", "m1b"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::with_seed(13);
        let suite = gen.generate(&spec).unwrap();
        assert_eq!(suite.stats.transactions, 1);
        // covering: 3 repeats x 2 alternatives
        assert_eq!(suite.len(), 6);
        let ctors: Vec<&str> = suite
            .iter()
            .map(|c| c.constructor.method.as_str())
            .collect();
        assert!(ctors.contains(&"C"));
        assert!(ctors.contains(&"C2"));
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = ClassSpecBuilder::new("C").build_unchecked();
        let err = DriverGenerator::with_seed(1).generate(&spec).unwrap_err();
        assert!(matches!(err, GenerateError::InvalidSpec(_)));
    }

    #[test]
    fn non_constructor_birth_method_rejected() {
        let spec = ClassSpecBuilder::new("C")
            .method("m1", "NotACtor", MethodCategory::Update)
            .destructor("m2", "~C")
            .birth_node("n1", ["m1"])
            .death_node("n2", ["m2"])
            .edge("n1", "n2")
            .build()
            .unwrap();
        let err = DriverGenerator::with_seed(1).generate(&spec).unwrap_err();
        assert!(matches!(
            err,
            GenerateError::BadLifecycleMethod {
                expected: "constructor",
                ..
            }
        ));
    }

    #[test]
    fn non_destructor_death_method_rejected() {
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .method("m2", "NotADtor", MethodCategory::Access)
            .birth_node("n1", ["m1"])
            .death_node("n2", ["m2"])
            .edge("n1", "n2")
            .build()
            .unwrap();
        let err = DriverGenerator::with_seed(1).generate(&spec).unwrap_err();
        assert!(matches!(
            err,
            GenerateError::BadLifecycleMethod {
                expected: "destructor",
                ..
            }
        ));
    }

    #[test]
    fn pointer_params_become_manual_placeholders() {
        let spec = ClassSpecBuilder::new("Product")
            .constructor("m1", "Product")
            .method("m2", "UpdateProv", MethodCategory::Update)
            .param(
                "prv",
                Domain::Pointer {
                    class_name: "Provider".into(),
                },
            )
            .destructor("m3", "~Product")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::with_seed(14);
        let suite = gen.generate(&spec).unwrap();
        // one manual argument per generated case (3 covering repeats)
        assert_eq!(suite.stats.manual_args, 3);
        let case = &suite.cases[0];
        assert!(case.needs_manual_completion());
        assert_eq!(case.calls[0].args[0], Value::Null);
    }

    #[test]
    fn provider_removes_manual_completion() {
        let spec = ClassSpecBuilder::new("Product")
            .constructor("m1", "Product")
            .method("m2", "UpdateProv", MethodCategory::Update)
            .param(
                "prv",
                Domain::Pointer {
                    class_name: "Provider".into(),
                },
            )
            .destructor("m3", "~Product")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::with_seed(15);
        gen.inputs_mut().register_provider(
            "Provider",
            Box::new(|_| Value::Obj(concat_runtime::ObjRef::new("Provider", "p1"))),
        );
        let suite = gen.generate(&spec).unwrap();
        assert_eq!(suite.stats.manual_args, 0);
        assert!(!suite.cases[0].needs_manual_completion());
    }

    #[test]
    fn selection_limits_transactions() {
        let mut gen = DriverGenerator::with_seed(16);
        let suite = gen.generate_selected(&counter_spec(), Some(&[0])).unwrap();
        assert_eq!(suite.len(), 3);
        assert!(suite.iter().all(|c| c.transaction_index == 0));
    }

    #[test]
    fn determinism_same_seed_same_suite() {
        let spec = counter_spec();
        let a = DriverGenerator::with_seed(77).generate(&spec).unwrap();
        let b = DriverGenerator::with_seed(77).generate(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_transaction_truncation_flagged() {
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .constructor("m1b", "C2")
            .constructor("m1c", "C3")
            .destructor("m3", "~C")
            .birth_node("n1", ["m1", "m1b", "m1c"])
            .death_node("n3", ["m3"])
            .edge("n1", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::new(GeneratorConfig {
            seed: 1,
            cycle_bound: 1,
            max_transactions: 100,
            expansion: Expansion::Cartesian {
                max_cases_per_transaction: 2,
            },
            boundary_inputs: false,
        });
        let suite = gen.generate(&spec).unwrap();
        assert_eq!(suite.len(), 2);
        assert!(suite.stats.truncated);
    }
}
