//! # concat-driver
//!
//! The consumer-side test infrastructure of a self-testable component:
//! driver generation, execution, oracle and test-history reuse.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). Maps to
//! paper §3.4:
//!
//! * [`DriverGenerator`] — the *transaction coverage* test selection
//!   strategy: one test case per transaction (birth→death TFM path), with
//!   parameter values drawn randomly from t-spec domains by
//!   [`InputGenerator`];
//! * [`TestRunner`] — the generated "specific driver": constructs the
//!   object, checks the class invariant around every call, catches
//!   exceptions and panics, logs to a [`TestLog`] (the paper's
//!   `Result.txt`) and records a [`Transcript`] per case;
//! * [`compare_transcripts`] — the golden-output oracle, complementing the
//!   assertion partial oracle;
//! * [`TestingHistory`] / [`ReusePlan`] — the Harrold-style hierarchical
//!   incremental reuse at transaction granularity (§3.4.2);
//! * [`render_cpp_test_case`] / [`render_cpp_suite`] — regenerate the C++
//!   artefacts of Figures 6 and 7.
//!
//! # Examples
//!
//! Generate and run a suite end to end (component elided; see
//! `concat-components` for real subjects):
//!
//! ```
//! use concat_driver::{DriverGenerator, TestLog, TestRunner};
//! use concat_tspec::{ClassSpecBuilder, Domain, MethodCategory};
//!
//! let spec = ClassSpecBuilder::new("Counter")
//!     .constructor("m1", "Counter")
//!     .method("m2", "Add", MethodCategory::Update)
//!     .param("q", Domain::int_range(0, 9))
//!     .destructor("m3", "~Counter")
//!     .birth_node("n1", ["m1"])
//!     .task_node("n2", ["m2"])
//!     .death_node("n3", ["m3"])
//!     .edge("n1", "n2")
//!     .edge("n2", "n3")
//!     .edge("n1", "n3")
//!     .build()
//!     .unwrap();
//! let suite = DriverGenerator::with_seed(1).generate(&spec).unwrap();
//! assert_eq!(suite.len(), 6); // 2 transactions x 3 covering repeats
//! # let _ = (TestRunner::new(), TestLog::new());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod amplify;
mod coverage;
mod generator;
mod history;
mod inputs;
mod invariant;
mod log;
mod oracle;
mod persist;
mod render;
mod retarget;
mod runner;
mod selection;
mod testcase;

pub use amplify::{corpus_candidates, synthesize_candidates, CandidateSynthesis, CorpusReplay};
pub use coverage::CoverageMatrix;
pub use generator::{DriverGenerator, Expansion, GenerateError, GeneratorConfig};
pub use history::{
    new_method_cases, HistoryEntry, InheritanceMap, MethodStatus, ReuseDecision, ReusePlan,
    TestingHistory,
};
pub use inputs::{InputError, InputGenerator, ObjectProvider};
pub use invariant::{
    execute_sequence, generate_walk, load_sequence, save_sequence, shrink_sequence, FailureKind,
    InvariantBreaker, InvariantSummary, StepKind, WalkConfig, WalkFailure, WalkOutcome,
    WalkSequence, WalkStep,
};
pub use log::{TestLog, LOG_WRITE_OP};
pub use oracle::{compare_transcripts, differing_cases, Divergence, ManualOracle, Verdict};
pub use persist::{
    load_history, load_suite, load_suite_from_path, save_history, save_suite, save_suite_to_path,
    PersistError, SuiteIoError, SUITE_LOAD_OP, SUITE_SAVE_OP,
};
pub use render::{render_cpp_suite, render_cpp_test_case};
pub use retarget::{retarget_suite, RetargetMap};
pub use runner::{
    CallOutcome, CallRecord, CaseResult, CaseStatus, SuiteResult, TestRunner, Transcript,
};
pub use selection::{select_transactions, Selection, SelectionCriterion};
pub use testcase::{ArgOrigin, MethodCall, SuiteStats, TestCase, TestSuite};
