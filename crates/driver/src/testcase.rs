//! Test cases and test suites.
//!
//! A test case (paper Figure 6) exercises one transaction: it creates the
//! object through a constructor, invokes the transaction's methods with
//! generated argument values, checks the class invariant around every call,
//! and destroys the object. A test suite (Figure 7) is an executable
//! sequence of test cases.

use concat_runtime::Value;
use std::fmt;

/// How an argument value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgOrigin {
    /// Drawn randomly from the declared domain (§3.4.1).
    Generated,
    /// A domain boundary value (extension of the random strategy).
    Boundary,
    /// Supplied by a registered object provider.
    Provided,
    /// Completed manually by the tester (structured types).
    Manual,
}

impl fmt::Display for ArgOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgOrigin::Generated => "generated",
            ArgOrigin::Boundary => "boundary",
            ArgOrigin::Provided => "provided",
            ArgOrigin::Manual => "manual",
        };
        f.write_str(s)
    }
}

/// One method invocation within a test case.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Method id from the t-spec (`m3`).
    pub method_id: String,
    /// Runtime method name (`UpdateQty`).
    pub method: String,
    /// Argument values, in parameter order.
    pub args: Vec<Value>,
    /// Provenance of each argument (parallel to `args`).
    pub origins: Vec<ArgOrigin>,
}

impl MethodCall {
    /// Creates a call whose arguments are all generator-produced.
    pub fn generated(
        method_id: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
    ) -> Self {
        let origins = vec![ArgOrigin::Generated; args.len()];
        MethodCall {
            method_id: method_id.into(),
            method: method.into(),
            args,
            origins,
        }
    }

    /// Renders the call the way Figure 6 documents it:
    /// `UpdateQty(321, "Mary")`.
    pub fn render(&self) -> String {
        let args: Vec<String> = self.args.iter().map(Value::to_literal).collect();
        format!("{}({})", self.method, args.join(", "))
    }
}

impl fmt::Display for MethodCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A generated test case: one concrete realization of one transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Sequential id; the paper names drivers `TestCase<id>`.
    pub id: usize,
    /// Index of the transaction (TFM path) this case exercises.
    pub transaction_index: usize,
    /// Node labels along the path, for reports and history.
    pub node_path: Vec<String>,
    /// The constructor call that creates the object (first node).
    pub constructor: MethodCall,
    /// The remaining calls, in order; the final call is the destructor.
    pub calls: Vec<MethodCall>,
}

impl TestCase {
    /// The driver name of this case (`TC0`, `TC1`, … as in Figure 6).
    pub fn name(&self) -> String {
        format!("TC{}", self.id)
    }

    /// All method names exercised, constructor first.
    pub fn method_names(&self) -> Vec<&str> {
        std::iter::once(self.constructor.method.as_str())
            .chain(self.calls.iter().map(|c| c.method.as_str()))
            .collect()
    }

    /// Total number of invocations including the constructor.
    pub fn len(&self) -> usize {
        1 + self.calls.len()
    }

    /// A test case always contains at least the constructor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when any argument still needs manual completion (`Manual`
    /// origin with a `Null` placeholder counts as completed-by-default).
    pub fn needs_manual_completion(&self) -> bool {
        std::iter::once(&self.constructor)
            .chain(self.calls.iter())
            .any(|c| c.origins.contains(&ArgOrigin::Manual))
    }
}

/// Statistics of a generation run, reported alongside the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuiteStats {
    /// Transactions enumerated from the model.
    pub transactions: usize,
    /// Test cases produced (≥ transactions when nodes have alternatives).
    pub cases: usize,
    /// True when path enumeration hit its cap (never silently).
    pub truncated: bool,
    /// Calls whose arguments required manual completion.
    pub manual_args: usize,
}

/// An executable test suite for one component (paper Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct TestSuite {
    /// Class under test.
    pub class_name: String,
    /// The seed the generator used (reproducibility).
    pub seed: u64,
    /// The generated cases, in transaction order.
    pub cases: Vec<TestCase>,
    /// Generation statistics.
    pub stats: SuiteStats,
}

impl TestSuite {
    /// Number of test cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True when generation produced no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Iterates over the cases.
    pub fn iter(&self) -> std::slice::Iter<'_, TestCase> {
        self.cases.iter()
    }

    /// Returns the sub-suite containing only the cases whose ids are in
    /// `ids`, renumbering nothing (ids stay stable for history purposes).
    pub fn filtered(&self, ids: &[usize]) -> TestSuite {
        TestSuite {
            class_name: self.class_name.clone(),
            seed: self.seed,
            cases: self
                .cases
                .iter()
                .filter(|c| ids.contains(&c.id))
                .cloned()
                .collect(),
            stats: SuiteStats {
                transactions: self.stats.transactions,
                cases: self.cases.iter().filter(|c| ids.contains(&c.id)).count(),
                truncated: self.stats.truncated,
                manual_args: self.stats.manual_args,
            },
        }
    }
}

impl<'a> IntoIterator for &'a TestSuite {
    type Item = &'a TestCase;
    type IntoIter = std::slice::Iter<'a, TestCase>;
    fn into_iter(self) -> Self::IntoIter {
        self.cases.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(id: usize) -> TestCase {
        TestCase {
            id,
            transaction_index: id,
            node_path: vec!["n1".into(), "n2".into()],
            constructor: MethodCall::generated("m1", "Product", vec![]),
            calls: vec![MethodCall::generated(
                "m3",
                "UpdateQty",
                vec![Value::Int(5)],
            )],
        }
    }

    #[test]
    fn names_match_figure6_convention() {
        assert_eq!(case(0).name(), "TC0");
        assert_eq!(case(12).name(), "TC12");
    }

    #[test]
    fn method_names_include_constructor_first() {
        assert_eq!(case(0).method_names(), vec!["Product", "UpdateQty"]);
        assert_eq!(case(0).len(), 2);
        assert!(!case(0).is_empty());
    }

    #[test]
    fn call_rendering() {
        let c = MethodCall::generated(
            "m9",
            "Method1",
            vec![Value::Int(321), Value::Int(594), Value::Str("Mary".into())],
        );
        assert_eq!(c.render(), "Method1(321, 594, \"Mary\")");
        assert_eq!(c.to_string(), c.render());
    }

    #[test]
    fn manual_completion_detection() {
        let mut c = case(0);
        assert!(!c.needs_manual_completion());
        c.calls[0].origins[0] = ArgOrigin::Manual;
        assert!(c.needs_manual_completion());
    }

    #[test]
    fn suite_filtering_keeps_ids() {
        let suite = TestSuite {
            class_name: "C".into(),
            seed: 1,
            cases: vec![case(0), case(1), case(2)],
            stats: SuiteStats {
                transactions: 3,
                cases: 3,
                truncated: false,
                manual_args: 0,
            },
        };
        let sub = suite.filtered(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.cases[1].id, 2);
        assert_eq!(sub.stats.cases, 2);
    }

    #[test]
    fn suite_iteration() {
        let suite = TestSuite {
            class_name: "C".into(),
            seed: 1,
            cases: vec![case(0)],
            stats: SuiteStats::default(),
        };
        assert_eq!(suite.iter().count(), 1);
        assert_eq!((&suite).into_iter().count(), 1);
        assert!(!suite.is_empty());
    }

    #[test]
    fn arg_origin_display() {
        assert_eq!(ArgOrigin::Generated.to_string(), "generated");
        assert_eq!(ArgOrigin::Manual.to_string(), "manual");
    }
}
