//! Random test-input generation from t-spec domains.
//!
//! "Values of input parameters for each method are also generated, by
//! randomly selecting a value from the valid subdomain. Currently, this is
//! implemented only for numeric types and strings … Structured type
//! parameters (including objects, arrays, and pointers) must be completed
//! manually by the tester" (paper §3.4.1).
//!
//! [`InputGenerator`] implements exactly that, plus two pragmatic
//! extensions: registered *object providers* that stand in for the manual
//! completion of object/pointer parameters, and a boundary-value mode used
//! by equivalence probing.

use crate::testcase::ArgOrigin;
use concat_runtime::{Rng, Value};
use concat_tspec::Domain;
use std::collections::BTreeMap;
use std::fmt;

/// A callback producing values for `object`/`pointer` domains of one class.
pub type ObjectProvider = Box<dyn Fn(&mut Rng) -> Value>;

/// Failure to produce a value for a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputError {
    /// The domain is an object/pointer kind with no registered provider —
    /// the tester must complete this argument manually.
    NeedsManualCompletion {
        /// Class of the required object.
        class_name: String,
    },
    /// The domain is empty (caught earlier by spec validation, reported
    /// here as defense in depth).
    EmptyDomain,
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::NeedsManualCompletion { class_name } => {
                write!(
                    f,
                    "parameter of class {class_name} must be completed manually"
                )
            }
            InputError::EmptyDomain => f.write_str("domain is empty"),
        }
    }
}

impl std::error::Error for InputError {}

/// Deterministic random input generator over t-spec domains.
///
/// Seeded explicitly so a suite can be regenerated bit-for-bit (the suite
/// records its seed).
///
/// # Examples
///
/// ```
/// use concat_driver::InputGenerator;
/// use concat_tspec::Domain;
///
/// let mut gen = InputGenerator::new(42);
/// let d = Domain::int_range(1, 10);
/// let (v, _) = gen.generate(&d).unwrap();
/// assert!(d.contains(&v));
/// ```
pub struct InputGenerator {
    rng: Rng,
    providers: BTreeMap<String, ObjectProvider>,
}

impl fmt::Debug for InputGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputGenerator")
            .field("providers", &self.providers.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl InputGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        InputGenerator {
            rng: Rng::seed_from_u64(seed),
            providers: BTreeMap::new(),
        }
    }

    /// Registers a provider for `object`/`pointer` parameters of
    /// `class_name`. Replaces any previous provider for the class.
    pub fn register_provider(&mut self, class_name: impl Into<String>, provider: ObjectProvider) {
        self.providers.insert(class_name.into(), provider);
    }

    /// True when a provider is registered for `class_name`.
    pub fn has_provider(&self, class_name: &str) -> bool {
        self.providers.contains_key(class_name)
    }

    /// Draws one value from `domain`.
    ///
    /// # Errors
    ///
    /// [`InputError::NeedsManualCompletion`] for object/pointer domains
    /// without a provider; [`InputError::EmptyDomain`] for degenerate
    /// domains.
    pub fn generate(&mut self, domain: &Domain) -> Result<(Value, ArgOrigin), InputError> {
        if domain.is_empty() {
            return Err(InputError::EmptyDomain);
        }
        match domain {
            Domain::IntRange { lo, hi } => {
                Ok((Value::Int(self.rng.int_in(*lo, *hi)), ArgOrigin::Generated))
            }
            Domain::FloatRange { lo, hi } => Ok((
                Value::Float(self.rng.float_in(*lo, *hi)),
                ArgOrigin::Generated,
            )),
            Domain::Set(values) => {
                let idx = self.rng.index(values.len());
                Ok((values[idx].clone(), ArgOrigin::Generated))
            }
            Domain::String { max_len } => {
                let len = self.rng.int_in(1, *max_len as i64) as usize;
                let s: String = (0..len)
                    .map(|_| {
                        let c = self.rng.index(26) as u8;
                        (b'a' + c) as char
                    })
                    .collect();
                Ok((Value::Str(s), ArgOrigin::Generated))
            }
            Domain::Object { class_name } | Domain::Pointer { class_name } => {
                match self.providers.get(class_name) {
                    Some(p) => Ok((p(&mut self.rng), ArgOrigin::Provided)),
                    None => Err(InputError::NeedsManualCompletion {
                        class_name: class_name.clone(),
                    }),
                }
            }
        }
    }

    /// Draws a boundary value from `domain` when it has one, otherwise a
    /// random value. Used by the equivalence-probing amplifier.
    ///
    /// # Errors
    ///
    /// Same as [`InputGenerator::generate`].
    pub fn generate_boundary(&mut self, domain: &Domain) -> Result<(Value, ArgOrigin), InputError> {
        let bounds = domain.boundary_values();
        if bounds.is_empty() {
            return self.generate(domain);
        }
        let idx = self.rng.index(bounds.len());
        Ok((bounds[idx].clone(), ArgOrigin::Boundary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::ObjRef;

    #[test]
    fn int_range_values_stay_in_domain() {
        let mut g = InputGenerator::new(1);
        let d = Domain::int_range(-3, 3);
        for _ in 0..200 {
            let (v, origin) = g.generate(&d).unwrap();
            assert!(d.contains(&v));
            assert_eq!(origin, ArgOrigin::Generated);
        }
    }

    #[test]
    fn float_range_values_stay_in_domain() {
        let mut g = InputGenerator::new(2);
        let d = Domain::float_range(0.5, 1.5);
        for _ in 0..200 {
            let (v, _) = g.generate(&d).unwrap();
            assert!(d.contains(&v));
        }
    }

    #[test]
    fn set_values_are_members() {
        let mut g = InputGenerator::new(3);
        let d = Domain::Set(vec![Value::Int(1), Value::Str("x".into()), Value::Null]);
        for _ in 0..50 {
            let (v, _) = g.generate(&d).unwrap();
            assert!(d.contains(&v));
        }
    }

    #[test]
    fn strings_are_lowercase_and_bounded() {
        let mut g = InputGenerator::new(4);
        let d = Domain::string(5);
        for _ in 0..100 {
            let (v, _) = g.generate(&d).unwrap();
            let s = v.as_str().unwrap();
            assert!(!s.is_empty() && s.len() <= 5);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let d = Domain::int_range(0, 1_000_000);
        let mut a = InputGenerator::new(99);
        let mut b = InputGenerator::new(99);
        for _ in 0..20 {
            assert_eq!(a.generate(&d).unwrap(), b.generate(&d).unwrap());
        }
    }

    #[test]
    fn pointer_without_provider_needs_manual_completion() {
        let mut g = InputGenerator::new(5);
        let d = Domain::Pointer {
            class_name: "Provider".into(),
        };
        assert_eq!(
            g.generate(&d).unwrap_err(),
            InputError::NeedsManualCompletion {
                class_name: "Provider".into()
            }
        );
    }

    #[test]
    fn provider_fills_pointer_domains() {
        let mut g = InputGenerator::new(6);
        g.register_provider(
            "Provider",
            Box::new(|rng| {
                let id = rng.int_in(1, 3);
                Value::Obj(ObjRef::new("Provider", format!("p{id}")))
            }),
        );
        assert!(g.has_provider("Provider"));
        let d = Domain::Pointer {
            class_name: "Provider".into(),
        };
        let (v, origin) = g.generate(&d).unwrap();
        assert_eq!(origin, ArgOrigin::Provided);
        assert!(d.contains(&v));
    }

    #[test]
    fn empty_domain_rejected() {
        let mut g = InputGenerator::new(7);
        assert_eq!(
            g.generate(&Domain::Set(vec![])).unwrap_err(),
            InputError::EmptyDomain
        );
        assert_eq!(
            g.generate(&Domain::int_range(4, 2)).unwrap_err(),
            InputError::EmptyDomain
        );
    }

    #[test]
    fn boundary_values_come_from_boundary_set() {
        let mut g = InputGenerator::new(8);
        let d = Domain::int_range(-10, 10);
        for _ in 0..50 {
            let (v, origin) = g.generate_boundary(&d).unwrap();
            assert_eq!(origin, ArgOrigin::Boundary);
            assert!(matches!(
                v,
                Value::Int(-10) | Value::Int(0) | Value::Int(10)
            ));
        }
    }

    #[test]
    fn boundary_falls_back_to_random_for_objects() {
        let mut g = InputGenerator::new(9);
        g.register_provider("P", Box::new(|_| Value::Obj(ObjRef::new("P", "only"))));
        let d = Domain::Object {
            class_name: "P".into(),
        };
        let (v, origin) = g.generate_boundary(&d).unwrap();
        assert_eq!(origin, ArgOrigin::Provided);
        assert_eq!(v, Value::Obj(ObjRef::new("P", "only")));
    }

    #[test]
    fn error_display() {
        assert!(InputError::EmptyDomain.to_string().contains("empty"));
        assert!(InputError::NeedsManualCompletion {
            class_name: "P".into()
        }
        .to_string()
        .contains("manually"));
    }
}
