//! Alternative test-selection criteria.
//!
//! The paper uses *transaction coverage* — every birth→death path at least
//! once — and notes it is "the weakest criterion among the ones presented
//! in [Beizer 95, c.6.4.2]" (§3.4.1). This module implements the
//! neighbouring rungs of that ladder so the strength/cost trade-off can be
//! measured (see the `criteria` bench):
//!
//! * [`SelectionCriterion::AllNodes`] — every TFM node exercised at least
//!   once (weaker: a small subset of transactions suffices);
//! * [`SelectionCriterion::AllEdges`] — every TFM link exercised at least
//!   once (between node and transaction coverage);
//! * [`SelectionCriterion::AllTransactions`] — the paper's criterion.
//!
//! Selection is over *transactions* (then expanded to cases by the
//! generator): [`select_transactions`] returns the indices of a greedy
//! minimal covering subset.

use concat_tfm::{enumerate_transactions_with, EnumerationConfig, Tfm};
use std::collections::BTreeSet;
use std::fmt;

/// A test-selection criterion over a transaction flow model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionCriterion {
    /// Cover every node (public feature) at least once.
    AllNodes,
    /// Cover every edge (link) at least once.
    AllEdges,
    /// Cover every transaction at least once — the paper's criterion.
    AllTransactions,
}

impl SelectionCriterion {
    /// All criteria, weakest first.
    pub const LADDER: [SelectionCriterion; 3] = [
        SelectionCriterion::AllNodes,
        SelectionCriterion::AllEdges,
        SelectionCriterion::AllTransactions,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SelectionCriterion::AllNodes => "all-nodes",
            SelectionCriterion::AllEdges => "all-edges",
            SelectionCriterion::AllTransactions => "all-transactions",
        }
    }
}

impl fmt::Display for SelectionCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of a selection: which transactions to generate cases for,
/// and whether the criterion is actually achievable on this model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Indices into the model's transaction enumeration.
    pub transaction_indices: Vec<usize>,
    /// Requirement units the criterion demands (nodes, edges or
    /// transactions).
    pub required: usize,
    /// Requirement units covered by the selection (== `required` unless
    /// the model has uncoverable elements, which validation would flag).
    pub covered: usize,
}

impl Selection {
    /// True when every requirement unit is covered.
    pub fn is_complete(&self) -> bool {
        self.covered == self.required
    }
}

/// Selects a transaction subset satisfying `criterion` on `tfm`.
///
/// Uses greedy set cover for `AllNodes`/`AllEdges` (small, near-minimal
/// subsets — deterministic: ties break on lower transaction index);
/// `AllTransactions` selects everything. The transaction enumeration uses
/// `config` (typically the same configuration the driver generator will
/// use, so indices agree).
///
/// # Examples
///
/// ```
/// use concat_driver::{select_transactions, SelectionCriterion};
/// use concat_tfm::{EnumerationConfig, NodeKind, Tfm};
///
/// let mut t = Tfm::new("C");
/// let a = t.add_node("a", NodeKind::Birth, ["New"]);
/// let b = t.add_node("b", NodeKind::Task, ["Work"]);
/// let d = t.add_node("d", NodeKind::Death, ["Drop"]);
/// t.add_edge(a, b);
/// t.add_edge(b, d);
/// t.add_edge(a, d);
/// let sel = select_transactions(&t, SelectionCriterion::AllNodes, EnumerationConfig::default());
/// assert!(sel.is_complete());
/// assert_eq!(sel.transaction_indices.len(), 1); // a->b->d covers all 3 nodes
/// ```
pub fn select_transactions(
    tfm: &Tfm,
    criterion: SelectionCriterion,
    config: EnumerationConfig,
) -> Selection {
    let set = enumerate_transactions_with(tfm, config);
    match criterion {
        SelectionCriterion::AllTransactions => Selection {
            transaction_indices: (0..set.len()).collect(),
            required: set.len(),
            covered: set.len(),
        },
        SelectionCriterion::AllNodes => {
            let universe: BTreeSet<usize> = tfm.nodes().map(|(id, _)| id.index()).collect();
            let items: Vec<BTreeSet<usize>> = set
                .iter()
                .map(|t| t.nodes.iter().map(|n| n.index()).collect())
                .collect();
            greedy_cover(&universe, &items)
        }
        SelectionCriterion::AllEdges => {
            let universe: BTreeSet<usize> = (0..tfm.edge_count()).collect();
            // A step not matching any model edge would mean the
            // transaction set and the TFM disagree; skip it (weakening
            // coverage accounting) rather than panicking mid-selection.
            let edge_index = |from: usize, to: usize| {
                tfm.edges()
                    .iter()
                    .position(|e| e.from.index() == from && e.to.index() == to)
            };
            let items: Vec<BTreeSet<usize>> = set
                .iter()
                .map(|t| {
                    t.nodes
                        .windows(2)
                        .filter_map(|w| edge_index(w[0].index(), w[1].index()))
                        .collect()
                })
                .collect();
            greedy_cover(&universe, &items)
        }
    }
}

fn greedy_cover(universe: &BTreeSet<usize>, items: &[BTreeSet<usize>]) -> Selection {
    let mut uncovered = universe.clone();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let best = items
            .iter()
            .enumerate()
            .filter(|(i, _)| !chosen.contains(i))
            .max_by_key(|(i, item)| (item.intersection(&uncovered).count(), std::cmp::Reverse(*i)));
        match best {
            Some((i, item)) if item.intersection(&uncovered).count() > 0 => {
                for u in item {
                    uncovered.remove(u);
                }
                chosen.push(i);
            }
            _ => break, // remaining units are uncoverable
        }
    }
    chosen.sort_unstable();
    Selection {
        transaction_indices: chosen,
        required: universe.len(),
        covered: universe.len() - uncovered.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_tfm::NodeKind;

    fn model() -> Tfm {
        // birth -> {x, y} -> death, plus a birth->death shortcut.
        let mut t = Tfm::new("C");
        let b = t.add_node("b", NodeKind::Birth, ["New"]);
        let x = t.add_node("x", NodeKind::Task, ["X"]);
        let y = t.add_node("y", NodeKind::Task, ["Y"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(b, x);
        t.add_edge(b, y);
        t.add_edge(x, d);
        t.add_edge(y, d);
        t.add_edge(b, d);
        t
    }

    fn cfg() -> EnumerationConfig {
        EnumerationConfig::default()
    }

    #[test]
    fn all_transactions_selects_everything() {
        let t = model();
        let sel = select_transactions(&t, SelectionCriterion::AllTransactions, cfg());
        assert_eq!(sel.transaction_indices, vec![0, 1, 2]);
        assert!(sel.is_complete());
    }

    #[test]
    fn all_nodes_needs_two_paths_here() {
        let t = model();
        let sel = select_transactions(&t, SelectionCriterion::AllNodes, cfg());
        assert!(sel.is_complete());
        assert_eq!(sel.transaction_indices.len(), 2, "x-path and y-path");
    }

    #[test]
    fn all_edges_skips_nothing_but_may_need_more_paths() {
        let t = model();
        let sel = select_transactions(&t, SelectionCriterion::AllEdges, cfg());
        assert!(sel.is_complete());
        // 5 edges need all three paths (shortcut edge only on path 3).
        assert_eq!(sel.transaction_indices.len(), 3);
    }

    #[test]
    fn ladder_is_monotone_in_selection_size() {
        let t = model();
        let sizes: Vec<usize> = SelectionCriterion::LADDER
            .iter()
            .map(|c| select_transactions(&t, *c, cfg()).transaction_indices.len())
            .collect();
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
    }

    #[test]
    fn selection_is_deterministic() {
        let t = model();
        let a = select_transactions(&t, SelectionCriterion::AllNodes, cfg());
        let b = select_transactions(&t, SelectionCriterion::AllNodes, cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn chain_model_needs_single_path() {
        let mut t = Tfm::new("C");
        let b = t.add_node("b", NodeKind::Birth, ["New"]);
        let x = t.add_node("x", NodeKind::Task, ["X"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(b, x);
        t.add_edge(x, d);
        for c in SelectionCriterion::LADDER {
            let sel = select_transactions(&t, c, cfg());
            assert!(sel.is_complete(), "{c}");
            assert_eq!(sel.transaction_indices, vec![0], "{c}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(SelectionCriterion::AllNodes.to_string(), "all-nodes");
        assert_eq!(SelectionCriterion::AllEdges.name(), "all-edges");
        assert_eq!(
            SelectionCriterion::AllTransactions.name(),
            "all-transactions"
        );
    }

    #[test]
    fn real_subject_selections_cover() {
        // On the shipped CObList-shaped model via tspec is unavailable in
        // this crate (circular dep), so use a richer synthetic model.
        let mut t = Tfm::new("R");
        let b = t.add_node("b", NodeKind::Birth, ["New"]);
        let mut prev = b;
        for i in 0..5 {
            let n = t.add_node(format!("t{i}"), NodeKind::Task, [format!("M{i}")]);
            t.add_edge(prev, n);
            if i >= 1 {
                t.add_edge(b, n); // skip edges
            }
            prev = n;
        }
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(prev, d);
        for c in SelectionCriterion::LADDER {
            let sel = select_transactions(&t, c, cfg());
            assert!(sel.is_complete(), "{c} incomplete");
        }
        let nodes = select_transactions(&t, SelectionCriterion::AllNodes, cfg());
        let all = select_transactions(&t, SelectionCriterion::AllTransactions, cfg());
        assert!(nodes.transaction_indices.len() < all.transaction_indices.len());
    }
}
