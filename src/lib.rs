//! # concat
//!
//! Facade crate for `concat-rs`, a Rust reproduction of *"Constructing
//! Self-Testable Software Components"* (Martins, Toyota & Yanagawa,
//! DSN 2001).
//!
//! A *self-testable component* ships with its own test specification
//! (a transaction flow model plus interface/domain descriptions), built-in
//! test capabilities (contract assertions, a reporter, a test-mode switch),
//! and enough metadata for a consumer-side driver generator to produce and
//! execute a transaction-covering test suite — and for an interface-mutation
//! harness to measure how good that suite is.
//!
//! This crate re-exports the whole workspace under stable module names:
//!
//! * [`runtime`] — dynamic values and name-based method dispatch;
//! * [`tfm`] — transaction flow models;
//! * [`tspec`] — the t-spec model and its Figure-3 text format;
//! * [`bit`] — built-in test capabilities;
//! * [`driver`] — driver generation, execution, oracle, test history;
//! * [`mutation`] — interface mutation analysis;
//! * [`components`] — the instrumented subject components;
//! * [`core`] — producer/consumer workflows over self-testable bundles;
//! * [`report`] — tables and experiment records;
//! * [`obs`] — the telemetry spine (spans, counters, histograms, sinks).

#![forbid(unsafe_code)]

pub use concat_bit as bit;
pub use concat_components as components;
pub use concat_core as core;
pub use concat_driver as driver;
pub use concat_mutation as mutation;
pub use concat_obs as obs;
pub use concat_report as report;
pub use concat_runtime as runtime;
pub use concat_tfm as tfm;
pub use concat_tspec as tspec;
